"""Determinism rules: all entropy and time must flow through the seams.

The measurement study (Figure 1 / Table 1) and every attack benchmark are
only comparable across runs because each stochastic component draws from a
seeded, label-derived :class:`numpy.random.Generator` (``repro.util.rng``)
and observes simulated time (``repro.util.clock``).  A single stray
``random.random()`` or ``time.time()`` silently breaks replayability, so
these rules forbid the ambient sources outside the two sanctioned modules:

* ``det-random-module`` — the stdlib :mod:`random` module (global,
  process-wide state; ``random.seed`` calls in one component perturb
  another's stream);
* ``det-wall-clock`` — ``time.time``/``monotonic``/``perf_counter`` and
  ``datetime.now``/``utcnow``/``today`` (runs would depend on when they
  were launched);
* ``det-numpy-random`` — any direct ``numpy.random`` call, including
  ``default_rng``: generators must be built by ``repro.util.rng`` so that
  streams are derived by *label*, not call order.
* ``det-dirty-iteration`` — service-layer loops over dirty-entity sets
  must go through ``sorted()``: the incremental-maintenance caches feed
  float reductions, and Python sets iterate in hash order, so a bare
  iteration would make results depend on insertion history.
* ``det-read-path`` — the serving layer's candidate generation must not
  iterate raw store-view sets (``review_entities()``,
  ``entities_with_histories()``) or unsorted candidate/posting
  collections: hash order would leak shard layout into ranked output.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.lint.engine import LintConfig, ParsedModule, Rule, Violation

#: Call targets that read the wall clock, by fully resolved dotted path.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@dataclass
class ImportMap:
    """Local-name → dotted-origin bindings created by import statements."""

    #: ``import numpy as np`` → ``{"np": "numpy"}``
    modules: dict[str, str] = field(default_factory=dict)
    #: ``from time import time as now`` → ``{"now": "time.time"}``
    members: dict[str, str] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.Module) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds a.b.
                    imports.modules[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports.members[local] = f"{node.module}.{alias.name}"
        return imports

    def resolve_call_path(self, func: ast.expr) -> str | None:
        """Dotted origin of a call target, e.g. ``np.random.seed`` →
        ``numpy.random.seed``; None when the root is not an import."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.members.get(node.id) or self.modules.get(node.id)
        if root is None:
            return None
        return ".".join([root, *reversed(parts)]) if parts else root


def _matches(path: str, prefix: str) -> bool:
    return path == prefix or path.startswith(prefix + ".")


class _ImportScanningRule(Rule):
    """Shared machinery: walk imports and resolved calls once per module."""

    def allowed_in(self, config: LintConfig) -> frozenset[str]:
        raise NotImplementedError

    def check(self, module: ParsedModule, config: LintConfig) -> Iterator[Violation]:
        if module.module in self.allowed_in(config):
            return
        imports = ImportMap.of(module.tree)
        for node in ast.walk(module.tree):
            yield from self.check_node(module, node, imports)

    def check_node(
        self, module: ParsedModule, node: ast.AST, imports: ImportMap
    ) -> Iterator[Violation]:
        raise NotImplementedError


class RandomModuleRule(_ImportScanningRule):
    rule_id = "det-random-module"
    description = "stdlib `random` used outside repro.util.rng"
    rationale = (
        "stdlib random is process-global state; seeded numpy Generators from "
        "repro.util.rng keep every simulation stream label-derived and replayable"
    )

    def allowed_in(self, config: LintConfig) -> frozenset[str]:
        return config.rng_modules

    def check_node(
        self, module: ParsedModule, node: ast.AST, imports: ImportMap
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _matches(alias.name, "random"):
                    yield self.violation(
                        module,
                        node,
                        f"import of stdlib `{alias.name}`; draw from a seeded "
                        "Generator via repro.util.rng.make_rng instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and _matches(node.module, "random"):
                yield self.violation(
                    module,
                    node,
                    f"import from stdlib `{node.module}`; use repro.util.rng instead",
                )
        elif isinstance(node, ast.Call):
            path = imports.resolve_call_path(node.func)
            if path is not None and _matches(path, "random"):
                yield self.violation(
                    module,
                    node,
                    f"call to `{path}` uses the global stdlib RNG; thread a seeded "
                    "Generator from repro.util.rng through instead",
                )


class WallClockRule(_ImportScanningRule):
    rule_id = "det-wall-clock"
    description = "wall-clock time read outside repro.util.clock"
    rationale = (
        "all timestamps are simulated seconds on a SimClock; reading real time "
        "makes runs depend on when they were launched and breaks the timing-"
        "attack benchmarks"
    )

    def allowed_in(self, config: LintConfig) -> frozenset[str]:
        return config.clock_modules

    def check_node(
        self, module: ParsedModule, node: ast.AST, imports: ImportMap
    ) -> Iterator[Violation]:
        if not isinstance(node, ast.Call):
            return
        path = imports.resolve_call_path(node.func)
        if path in _WALL_CLOCK_CALLS:
            yield self.violation(
                module,
                node,
                f"call to `{path}` reads the wall clock; use the shared SimClock "
                "from repro.util.clock instead",
            )


class NumpyRandomRule(_ImportScanningRule):
    rule_id = "det-numpy-random"
    description = "direct numpy.random usage outside repro.util.rng"
    rationale = (
        "generators must be derived by label via repro.util.rng so adding a new "
        "consumer of randomness never perturbs existing streams"
    )

    def allowed_in(self, config: LintConfig) -> frozenset[str]:
        return config.rng_modules

    def check_node(
        self, module: ParsedModule, node: ast.AST, imports: ImportMap
    ) -> Iterator[Violation]:
        if isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module:
                if _matches(node.module, "numpy.random"):
                    yield self.violation(
                        module,
                        node,
                        "import from numpy.random; build generators with "
                        "repro.util.rng.make_rng instead",
                    )
                elif node.module == "numpy" and any(
                    alias.name == "random" for alias in node.names
                ):
                    yield self.violation(
                        module,
                        node,
                        "import of numpy.random; build generators with "
                        "repro.util.rng.make_rng instead",
                    )
        elif isinstance(node, ast.Call):
            path = imports.resolve_call_path(node.func)
            if path is not None and _matches(path, "numpy.random"):
                yield self.violation(
                    module,
                    node,
                    f"call to `{path}`; route all randomness through "
                    "repro.util.rng (make_rng/derive_seed/children)",
                )


def _terminal_name(expression: ast.expr) -> str | None:
    """The last identifier of a bare name or attribute chain, else None."""
    if isinstance(expression, ast.Name):
        return expression.id
    if isinstance(expression, ast.Attribute):
        return expression.attr
    return None


class DirtyIterationRule(Rule):
    """Service-layer iteration over a dirty set must be ``sorted()``."""

    rule_id = "det-dirty-iteration"
    description = "dirty-entity set iterated in hash order in service code"
    rationale = (
        "incremental maintenance drains dirty sets into float reductions; "
        "Python sets iterate in hash order, so an unsorted loop would make "
        "summaries depend on intake interleaving and break the byte-identity "
        "contract between incremental and full recompute"
    )

    def check(self, module: ParsedModule, config: LintConfig) -> Iterator[Violation]:
        if not module.in_package(config.service_packages):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                yield from self._check_iterable(module, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield from self._check_iterable(module, generator.iter)

    def _check_iterable(
        self, module: ParsedModule, iterable: ast.expr
    ) -> Iterator[Violation]:
        # A call wrapping the set (``sorted(...)`` in well-behaved code)
        # establishes an explicit order; a bare name or attribute whose
        # identifier says "dirty" iterates the raw set in hash order.
        name = _terminal_name(iterable)
        if name is not None and "dirty" in name.lower():
            yield self.violation(
                module,
                iterable,
                f"iteration over `{name}` follows set hash order; wrap it in "
                "sorted() before any order-sensitive work",
            )


#: Store-view accessors that return raw (hash-ordered) entity-id sets.
_READ_SET_ACCESSORS = frozenset({"review_entities", "entities_with_histories"})


class ReadPathIterationRule(Rule):
    """Read-path iteration over an unordered collection must be ``sorted()``.

    Two shapes reach ranked output in hash order if left bare:

    * direct iteration over the store views' raw-set accessors
      (``review_entities()`` / ``entities_with_histories()``) — both
      return plain ``set`` unions over shards, so the shard layout leaks
      into iteration order;
    * bare iteration over a ``candidate_ids``/``posting`` collection —
      the serving layer's contract is that these are materialized in
      entity-id order, and a bare loop over an unsorted rebuild would
      silently break render byte-identity between deployments.

    A call expression as the iterable (``sorted(...)``, an index method
    returning an ordered list) establishes explicit order and passes.
    """

    rule_id = "det-read-path"
    description = "read-path set iterated in hash order in service code"
    rationale = (
        "the serving layer renders ranked output byte-identically across "
        "monolith and shards; store-view set accessors and candidate/posting "
        "collections iterate in hash order unless sorted, which would leak "
        "shard layout and insertion history into what users see"
    )

    def check(self, module: ParsedModule, config: LintConfig) -> Iterator[Violation]:
        if not module.in_package(config.service_packages):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                yield from self._check_iterable(module, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield from self._check_iterable(module, generator.iter)

    def _check_iterable(
        self, module: ParsedModule, iterable: ast.expr
    ) -> Iterator[Violation]:
        if isinstance(iterable, ast.Call):
            name = _terminal_name(iterable.func)
            if name in _READ_SET_ACCESSORS:
                yield self.violation(
                    module,
                    iterable,
                    f"iteration over raw `{name}()` set follows hash order; "
                    "wrap the call in sorted() before any order-sensitive work",
                )
            return
        name = _terminal_name(iterable)
        if name is None:
            return
        lowered = name.lower()
        if "candidate_ids" in lowered or "posting" in lowered:
            yield self.violation(
                module,
                iterable,
                f"bare iteration over `{name}` may follow hash order; "
                "iterate a sorted() materialization instead",
            )
