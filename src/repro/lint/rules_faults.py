"""Fault-injection containment: chaos stays in the harness.

The robustness work of :mod:`repro.faults` scripts network loss, server
outages, and client crashes.  Production layers must stay *subjects* of
those experiments, never *participants*: a client or server that imports
the fault plan could special-case injected failures (or, worse, consult
the plan to "know" a message was dropped — information a real deployment
never has, since the anonymous upload channel is ack-free by design).
The production hooks are therefore duck-typed ``fault_hook`` attributes,
set from the outside by the experiment drivers.

* ``faults-only-in-harness`` — only the harness packages
  (``repro.faults`` itself, ``repro.orchestration``, ``repro.cli``) may
  import ``repro.faults``.  Everything else under the guarded root gets
  flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import LintConfig, ParsedModule, Rule, Violation
from repro.lint.rules_layering import _hits, _imported_targets


class FaultsOnlyInHarnessRule(Rule):
    rule_id = "faults-only-in-harness"
    description = "production code imports the fault-injection subsystem"
    rationale = (
        "fault realism: production layers must not observe or special-case "
        "injected faults; only the experiment harness wires fault_hook"
    )
    message = (
        "module `{module}` imports `{target}`; fault injection is wired from "
        "the harness (repro.orchestration / repro.cli) via duck-typed "
        "fault_hook attributes — production code must not import repro.faults"
    )

    def check(self, module: ParsedModule, config: LintConfig) -> Iterator[Violation]:
        if not module.in_package(config.fault_guarded_packages):
            return
        if module.in_package(config.fault_harness_packages):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            flagged: set[str] = set()
            for target in _imported_targets(module, node):
                hit = _hits(target, config.fault_packages)
                if hit is not None and hit not in flagged:
                    flagged.add(hit)
                    yield self.violation(
                        module,
                        node,
                        self.message.format(module=module.module, target=target),
                    )
