"""Layering rules: the Figure 2 boundary between device and service.

Section 3's premise is that raw sensed data stays on the device — the
client senses, resolves, and infers locally, then ships only sanitized
records.  The code enforces the same split the paper draws:

* ``layer-client-service`` — device-side packages (``repro.client``,
  ``repro.sensing``) must not import the service layer.  A client that
  reaches into ``repro.service.server`` can short-circuit the upload
  protocol and leak raw observations.
* ``layer-service-client`` — the service layer must not import client or
  sensing modules.  A server that touches device internals could observe
  pre-sanitization data; only :mod:`repro.orchestration` (the experiment
  drivers) may see both sides.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import LintConfig, ParsedModule, Rule, Violation


def _imported_targets(module: ParsedModule, node: ast.stmt) -> Iterator[str]:
    """Absolute dotted targets named by one import statement.

    ``from repro.service import server`` yields both ``repro.service`` and
    ``repro.service.server`` so prefix checks see the submodule; relative
    imports are resolved against the importing module's package.
    """
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.name
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            base = node.module or ""
        else:
            parts = module.module.split(".")
            if not module.path.endswith("__init__.py"):
                parts = parts[:-1]  # the package containing this module
            cut = len(parts) - (node.level - 1)
            if cut < 0:
                return
            base = ".".join(parts[:cut])
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        if base:
            yield base
            for alias in node.names:
                if alias.name != "*":
                    yield f"{base}.{alias.name}"


def _hits(target: str, prefixes: tuple[str, ...]) -> str | None:
    for prefix in prefixes:
        if target == prefix or target.startswith(prefix + "."):
            return prefix
    return None


class _LayerRule(Rule):
    """One direction of the device/service boundary."""

    def source_packages(self, config: LintConfig) -> tuple[str, ...]:
        raise NotImplementedError

    def forbidden_packages(self, config: LintConfig) -> tuple[str, ...]:
        raise NotImplementedError

    message: str = ""

    def check(self, module: ParsedModule, config: LintConfig) -> Iterator[Violation]:
        if not module.in_package(self.source_packages(config)):
            return
        forbidden = self.forbidden_packages(config)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            flagged: set[str] = set()
            for target in _imported_targets(module, node):
                hit = _hits(target, forbidden)
                if hit is not None and hit not in flagged:
                    flagged.add(hit)
                    yield self.violation(
                        module,
                        node,
                        self.message.format(module=module.module, target=target),
                    )


class ClientImportsServiceRule(_LayerRule):
    rule_id = "layer-client-service"
    description = "device-side code imports the service layer"
    rationale = (
        "raw sensed data stays on the device (Section 3); a client importing "
        "server internals can bypass the sanitized upload protocol"
    )
    message = (
        "device-side module `{module}` imports `{target}`; clients talk to the "
        "service only through the wire protocol (repro.core.protocol)"
    )

    def source_packages(self, config: LintConfig) -> tuple[str, ...]:
        return config.client_packages

    def forbidden_packages(self, config: LintConfig) -> tuple[str, ...]:
        return config.service_packages


class ServiceImportsClientRule(_LayerRule):
    rule_id = "layer-service-client"
    description = "service layer imports device-side code"
    rationale = (
        "the server must be unable to observe pre-sanitization data; only "
        "repro.orchestration may wire both sides together"
    )
    message = (
        "service-layer module `{module}` imports `{target}`; move cross-layer "
        "orchestration into repro.orchestration"
    )

    def source_packages(self, config: LintConfig) -> tuple[str, ...]:
        return config.service_packages

    def forbidden_packages(self, config: LintConfig) -> tuple[str, ...]:
        return config.client_packages
