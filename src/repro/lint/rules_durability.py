"""Durability ordering: journal before you acknowledge.

The WAL's crash guarantee (``docs/DURABILITY.md``) is a *protocol*, not a
property of the log file: every accepted intake mutation must reach the
journal before the server commits the acceptance (bumps
``accepted_envelopes``, burns the nonce).  Invert the order and a crash
between the two steps acknowledges state that recovery cannot reproduce —
the precise failure WAL-before-ack exists to rule out.  The same goes for
the journal's own writes: a buffered ``write`` that is never flushed sits
in user-space when the process dies, so the "logged" record was never
durable at all.

* ``durability-fsync-before-ack`` — two checks behind one rule id:

  1. in service-layer code (``repro.service``, ``repro.scale``), any
     function that both appends to a WAL (``journal.log_*``) and performs
     an acceptance commit (``accepted_envelopes += 1``, a nonce-set
     ``.add``, or ``self._mark_accepted(...)``) must append first;
  2. in ``repro.durability`` itself, any function that calls ``write`` on
     a WAL file handle (``self._file`` / ``self._fh``) must also call
     ``flush``/``fsync``/``sync`` before returning.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import LintConfig, ParsedModule, Rule, Violation


def _receiver_name(node: ast.expr) -> str | None:
    """The last attribute/name segment of a call receiver.

    ``self.journal.log_x`` → ``journal``; ``journal.log_x`` → ``journal``;
    anything without a recognizable base yields ``None``.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _target_name(node: ast.expr) -> str | None:
    """The name an assignment target ultimately binds (``self.x`` → ``x``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _position(node: ast.AST) -> tuple[int, int]:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


class FsyncBeforeAckRule(Rule):
    rule_id = "durability-fsync-before-ack"
    description = "acceptance commit precedes (or lacks) the durable WAL append"
    rationale = (
        "crash safety: an envelope acknowledged before its mutation is "
        "journaled-and-flushed is lost by a crash between the two steps, "
        "violating the recovery == uninterrupted-run differential"
    )
    ordering_message = (
        "acceptance commit (`{commit}`) precedes the WAL append "
        "(`{append}` on line {append_line}); journal the mutation first — "
        "WAL-before-ack is the crash-recovery contract"
    )
    flush_message = (
        "function `{function}` writes to `{receiver}` without a "
        "flush/fsync/sync call; a buffered WAL write is not durable"
    )

    def check(self, module: ParsedModule, config: LintConfig) -> Iterator[Violation]:
        if module.in_package(config.service_packages):
            yield from self._check_ordering(module, config)
        if module.in_package(config.durability_packages):
            yield from self._check_flush(module, config)

    # ------------------------------------------------- WAL-before-ack order

    def _check_ordering(
        self, module: ParsedModule, config: LintConfig
    ) -> Iterator[Violation]:
        for function in _functions(module.tree):
            appends: list[tuple[tuple[int, int], str, ast.AST]] = []
            commits: list[tuple[tuple[int, int], str, ast.AST]] = []
            for node in ast.walk(function):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    method = node.func.attr
                    receiver = _receiver_name(node.func.value)
                    if (
                        method in config.wal_append_methods
                        and receiver in config.wal_receivers
                    ):
                        appends.append((_position(node), method, node))
                    elif method == "add" and receiver in config.accept_commit_sets:
                        commits.append((_position(node), f"{receiver}.add", node))
                    elif method in config.accept_commit_calls:
                        commits.append((_position(node), method, node))
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    if node.func.id in config.accept_commit_calls:
                        commits.append((_position(node), node.func.id, node))
                elif isinstance(node, ast.AugAssign):
                    name = _target_name(node.target)
                    if name in config.accept_commit_counters:
                        commits.append((_position(node), f"{name} += ...", node))
            if not appends or not commits:
                continue
            first_append = min(appends)
            first_commit = min(commits)
            if first_commit[0] < first_append[0]:
                yield self.violation(
                    module,
                    first_commit[2],
                    self.ordering_message.format(
                        commit=first_commit[1],
                        append=first_append[1],
                        append_line=first_append[0][0],
                    ),
                )

    # -------------------------------------------------- buffered-write check

    def _check_flush(
        self, module: ParsedModule, config: LintConfig
    ) -> Iterator[Violation]:
        for function in _functions(module.tree):
            writes: list[tuple[str, ast.AST]] = []
            flushed = False
            for node in ast.walk(function):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                receiver = _receiver_name(node.func.value)
                if node.func.attr == "write" and receiver in config.wal_file_receivers:
                    writes.append((receiver, node))
                elif node.func.attr in {"flush", "fsync", "sync"}:
                    flushed = True
            if writes and not flushed:
                receiver, node = writes[0]
                yield self.violation(
                    module,
                    node,
                    self.flush_message.format(
                        function=function.name, receiver=receiver
                    ),
                )
