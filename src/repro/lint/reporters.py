"""Reporters: render a :class:`~repro.lint.engine.LintResult` for humans or CI.

* text — one ``path:line:col: rule-id message`` line per violation plus a
  summary, the format editors and CI log scrapers already understand;
* json — a stable machine-readable document (violations, suppressions,
  counts) for dashboards and the test suite.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """Human-readable report; one line per violation, then a summary."""
    lines = [violation.render() for violation in result.sorted_violations()]
    if show_suppressed:
        lines.extend(violation.render() for violation in result.sorted_suppressed())
    n_violations = len(result.violations)
    n_suppressed = len(result.suppressed)
    if result.ok:
        summary = f"OK: checked {result.n_files} file(s), no violations"
    else:
        summary = (
            f"FAIL: {n_violations} violation(s) in {result.n_files} file(s) checked"
        )
    if n_suppressed:
        summary += f" ({n_suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult, show_suppressed: bool = True) -> str:
    """Machine-readable report with stable key names."""
    document = {
        "ok": result.ok,
        "files_checked": result.n_files,
        "violation_count": len(result.violations),
        "suppressed_count": len(result.suppressed),
        "violations": [v.to_dict() for v in result.sorted_violations()],
    }
    if show_suppressed:
        document["suppressed"] = [v.to_dict() for v in result.sorted_suppressed()]
    return json.dumps(document, indent=2, sort_keys=True)
