"""The RSP's service: the server half of Figure 2.

Holds the four stores (explicit reviews, anonymous interaction histories,
anonymous inferred opinions, spent tokens), runs the maintenance cycle
(fraud profiles → history filtering → opinion summaries), and answers
search queries with explicit reviews, inferred summaries, and comparative
visualizations side by side.

Token checking happens here, once per envelope, before dispatching the
record to its store — forged, replayed, or missing tokens bounce the whole
envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.aggregation import EntityOpinionSummary, OpinionUpload
from repro.core.discovery import DiscoveryService, Query, SearchResponse
from repro.core.visualization import ComparativeVisualization, compare_entities
from repro.fraud.attestation import AttestationQuote, AttestationVerifier
from repro.fraud.detector import DetectorConfig, HistoryVerdict
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import HistoryStore, InteractionHistory, InteractionUpload
from repro.privacy.tokens import TokenIssuer, TokenRedeemer
from repro.core.protocol import Envelope
from repro.service.incremental import CycleStats, MaintenanceEngine, MonolithStoreView
from repro.telemetry import DEPLOYMENT, NULL, Telemetry
from repro.telemetry.catalog import (
    DIRTY_SET_BUCKETS,
    INGEST_LAG_BUCKETS,
    INTAKE_BATCH_BUCKETS,
)
from repro.world.entities import Entity

if TYPE_CHECKING:
    from repro.serve.engine import ServeQuery, ServeResponse
    from repro.serve.facade import ServingLayer


@dataclass(frozen=True)
class ExplicitReview:
    """A review posted under a user account, like on today's services."""

    # The legacy path is attributed *by design*: users post these under
    # their account exactly as on today's services (Section 2 baseline).
    user_id: str  # repro: allow[priv-server-identity]
    entity_id: str
    rating: int
    time: float

    def __post_init__(self) -> None:
        if not 1 <= self.rating <= 5:
            raise ValueError("rating must lie in 1..5")


@dataclass
class MaintenanceReport:
    """Outcome of one maintenance cycle."""

    n_histories: int = 0
    n_rejected_histories: int = 0
    n_opinions_received: int = 0
    n_opinions_kept: int = 0
    rejected: list[HistoryVerdict] = field(default_factory=list)


def emit_maintenance_telemetry(
    telemetry: Telemetry,
    report: MaintenanceReport,
    stats: CycleStats,
    now: float | None,
    mode: str,
) -> None:
    """Record one maintenance cycle — shared by both deployments.

    Every aggregate value here derives from the report and the *tracked*
    cycle stats, which are identical across incremental and full modes
    and across shard/worker counts — so the AGGREGATE export stays
    byte-identical whatever actually executed.  The mode-dependent span
    lives under DEPLOYMENT scope, outside the invariant digest.
    """
    telemetry.inc("rsp.maintenance.cycles")
    telemetry.set_gauge("rsp.maintenance.histories", report.n_histories)
    telemetry.set_gauge(
        "rsp.maintenance.rejected_histories", report.n_rejected_histories
    )
    telemetry.set_gauge("rsp.maintenance.opinions_kept", report.n_opinions_kept)
    telemetry.set_gauge("rsp.maintenance.dirty_entities", stats.n_dirty)
    telemetry.set_gauge("rsp.maintenance.cached_entities", stats.n_judge_cached)
    telemetry.inc("rsp.maintenance.cache_hits", stats.n_judge_cached, phase="judge")
    telemetry.inc("rsp.maintenance.cache_skips", stats.n_judge_tracked, phase="judge")
    telemetry.inc(
        "rsp.maintenance.cache_hits", stats.n_summarize_cached, phase="summarize"
    )
    telemetry.inc(
        "rsp.maintenance.cache_skips", stats.n_summarize_tracked, phase="summarize"
    )
    telemetry.inc("rsp.maintenance.redirtied", stats.n_redirtied)
    telemetry.observe(
        "rsp.maintenance.dirty_set", stats.n_judge_tracked, buckets=DIRTY_SET_BUCKETS
    )
    if now is not None:
        telemetry.span("maintenance", now, now)
        telemetry.span("maintenance.incremental", now, now, scope=DEPLOYMENT, mode=mode)


class RSPServer:
    """The re-architected recommendation service."""

    def __init__(
        self,
        catalog: list[Entity],
        quota_per_day: int = 48,
        key_seed: int = 0,
        key_bits: int = 512,
        require_tokens: bool = True,
        detector_config: DetectorConfig | None = None,
        attestation: AttestationVerifier | None = None,
        incremental: bool = True,
    ) -> None:
        if not catalog:
            raise ValueError("catalog must be non-empty")
        self.catalog = {entity.entity_id: entity for entity in catalog}
        self.entity_kinds = {e.entity_id: e.kind.label for e in catalog}
        self.issuer = TokenIssuer(
            quota_per_day=quota_per_day, key_seed=key_seed, key_bits=key_bits
        )
        self.require_tokens = require_tokens
        self.attestation = attestation
        self.rejected_attestations = 0
        self._redeemer = TokenRedeemer(self.issuer.public_key)
        self.history_store = HistoryStore()
        # Latest inferred opinion per anonymous history (latest-wins: the
        # client re-uploads when its inference for an entity changes).
        self._opinions: dict[str, OpinionUpload] = {}
        self._reviews: dict[str, list[ExplicitReview]] = {}
        self._discovery = DiscoveryService(catalog)
        self._detector_config = detector_config
        #: ``False`` forces every maintenance cycle to recompute from
        #: scratch — the contractual baseline the incremental path must
        #: match byte for byte (``tests/scale/test_incremental.py``).
        self.incremental = incremental
        self._engine = MaintenanceEngine(
            MonolithStoreView(self.history_store, self._opinions, self._reviews),
            self.entity_kinds,
            detector_config,
        )
        # Aliases into the engine's caches: the engine mutates these in
        # place only, so search/summary always see the latest cycle.
        self._summaries: dict[str, EntityOpinionSummary] = self._engine.summaries
        self._accepted_histories: dict[str, list[InteractionHistory]] = (
            self._engine.accepted
        )
        self.rejected_envelopes = 0
        #: Stale opinion re-uploads dropped by ``seq`` ordering (the
        #: envelope still counts as accepted; only the slot write is
        #: skipped — see docs/RELIABILITY.md).
        self.opinions_stale = 0
        #: Interaction uploads bounced because their history identifier
        #: is bound to a different entity (client bug or corruption
        #: attempt; split from generic ``unstored`` storage failures).
        self.history_mismatches = 0
        #: Nonces of accepted envelopes — the idempotent-dedup table that
        #: makes client retransmission over the ack-free channel safe.
        #: Keyed on the envelope's random nonce, never on a payload or
        #: identity digest (see docs/RELIABILITY.md for why).
        self._seen_nonces: set[bytes] = set()
        self.duplicates_suppressed = 0
        self.accepted_envelopes = 0
        #: Envelopes that arrived while the endpoint was down (harness
        #: hook); the fire-and-forget sender never learns about these.
        self.dropped_by_outage = 0
        #: Optional harness hook with ``server_down(now) -> bool``.
        self.fault_hook = None
        #: Optional durability hook (duck-typed like ``fault_hook``): a
        #: :class:`repro.durability.journal.DurableJournal` installed by
        #: the deployment driver.  Accepted mutations are journaled
        #: *before* the acceptance commit; a journal failure propagates —
        #: the process must die rather than acknowledge unlogged state.
        self.journal = None
        #: Aggregate-only observability sink (no-op until a harness
        #: installs a real :class:`~repro.telemetry.Telemetry`).
        self.telemetry: Telemetry = NULL
        #: Lazily constructed read path (see :attr:`serving`).
        self._serving = None

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Install a shared telemetry sink on the server and its issuer."""
        self.telemetry = telemetry
        self.issuer.telemetry = telemetry

    # --------------------------------------------------------------- serving

    def attach_serving(self, **kwargs) -> "ServingLayer":
        """Build the indexed serving layer (see :mod:`repro.serve`).

        Keyword arguments are forwarded to
        :class:`~repro.serve.facade.ServingLayer` (``grid``, ``ranking``,
        ``max_cache_entries``).  Idempotent only in the trivial sense:
        attaching again replaces the layer and cold-starts its cache.
        """
        from repro.serve.facade import ServingLayer

        self._serving = ServingLayer(self, **kwargs)
        return self._serving

    @property
    def serving(self) -> "ServingLayer":
        """The read path, constructed on first use.

        Lazy on purpose: a deployment that never queries never subscribes
        to maintenance notifications and never emits ``rsp.serve.*``
        metrics, keeping query-free telemetry exports bit-stable.
        """
        if self._serving is None:
            self.attach_serving()
        return self._serving

    def query(self, query: "ServeQuery") -> "ServeResponse":
        """Answer a read-path query through the cached serving layer."""
        return self.serving.query(query)

    # ------------------------------------------------------------- intake

    def issue_tokens(
        self,
        # Issuance-side identity only: the signature is blind, so the token
        # redeemed later cannot be linked back to this device_id (Section 4.2).
        device_id: str,  # repro: allow[priv-server-identity]
        blinded_values: list[int],
        now: float,
        quote: AttestationQuote | None = None,
    ) -> list[int]:
        """Blind-sign upload tokens for an attested device.

        When the server was built with an attestation verifier (Section
        4.3's remote-attestation defense), a valid fresh quote from a
        genuine client build is required — modified clients are cut off
        from uploading *anything* because they can never obtain tokens.
        """
        if self.attestation is not None:
            if quote is None or not self.attestation.verify(quote):
                self.rejected_attestations += 1
                raise PermissionError(
                    f"device {device_id} failed attestation; no tokens issued"
                )
        return self.issuer.issue(device_id, blinded_values, now=now)

    def post_review(
        self,
        # Explicit reviews are the attributed legacy path (Section 2 baseline);
        # they never mix with the anonymous hash(Ru, e) stores.
        user_id: str,  # repro: allow[priv-server-identity]
        entity_id: str,
        rating: int,
        time: float,
    ) -> None:
        """Accept an explicit, attributed review (the legacy path)."""
        if entity_id not in self.catalog:
            raise KeyError(f"unknown entity {entity_id!r}")
        # Constructing first validates the rating, so an invalid review
        # can never reach the WAL; journaling precedes the store append.
        review = ExplicitReview(
            user_id=user_id, entity_id=entity_id, rating=rating, time=time
        )
        if self.journal is not None:
            self.journal.log_review(user_id, entity_id, rating, time)
        self._reviews.setdefault(entity_id, []).append(review)
        self._engine.mark_dirty(entity_id)
        self.telemetry.inc("rsp.reviews.posted")

    def receive(self, delivery: Delivery[Envelope], now: float | None = None) -> bool:
        """Process one anonymous envelope off the network.

        Intake order is deliberate: outage check first (a down endpoint
        processes nothing, so neither the token nor the nonce of a lost
        envelope is consumed and a retransmitted copy can still land);
        then the token trust boundary (only token-valid envelopes may
        *write* dedup state, so an unauthenticated sender can never squat
        a nonce and suppress someone's legitimate record); then idempotent
        nonce dedup; then record validation.  A nonce is marked seen only
        when its record is accepted, so a rejected upload can be repaired
        and retransmitted under the same nonce.  One classification
        nuance: a token failure whose nonce is already accepted is counted
        as a suppressed duplicate rather than a rejection — an identical
        network-replayed copy carries its original's spent token.

        Acceptance is transactional with store dispatch: the accept
        counter and the nonce table are touched only after the record is
        durably in its store, so a poisoned record that raises mid-append
        neither inflates the counters nor burns its nonce — the sender may
        repair and retransmit under the same nonce.

        ``now`` overrides the time the outage check sees: a catch-up
        batch job processing a backlog held through an outage passes its
        own (post-outage) processing time, because the endpoint being
        down when an envelope *queued* must not drop it once it is
        processed later (see :func:`repro.orchestration.epochs.run_epochs`).
        """
        envelope = delivery.payload
        if self.fault_hook is not None and self.fault_hook.server_down(
            delivery.arrival_time if now is None else now
        ):
            self.dropped_by_outage += 1
            self.telemetry.inc("rsp.envelopes.outage_dropped")
            return False
        nonce = getattr(envelope, "nonce", None)
        if self.require_tokens:
            if envelope.token is None or not self._redeemer.redeem(envelope.token):
                # A token failure on an already-accepted nonce is, with
                # overwhelming probability, a network-level duplicate of
                # the accepted envelope (its token was spent when the
                # first copy landed) — classify it as a suppressed
                # duplicate, not a fraud bounce.
                if nonce is not None and nonce in self._seen_nonces:
                    self.duplicates_suppressed += 1
                    self.telemetry.inc("rsp.envelopes.duplicate")
                else:
                    self.rejected_envelopes += 1
                    self.telemetry.inc("rsp.envelopes.rejected", reason="token")
                return False
        if nonce is not None and nonce in self._seen_nonces:
            self.duplicates_suppressed += 1
            self.telemetry.inc("rsp.envelopes.duplicate")
            return False
        token_id = (
            envelope.token.token_id
            if self.require_tokens and envelope.token is not None
            else None
        )
        record = envelope.record
        record_kind = None
        try:
            if isinstance(record, InteractionUpload):
                if record.entity_id not in self.catalog:
                    self.rejected_envelopes += 1
                    self.telemetry.inc("rsp.envelopes.rejected", reason="unknown-entity")
                    return False
                bound = self.history_store.bound_entity(record.history_id)
                if bound is not None and bound != record.entity_id:
                    # The identifier is bound to another entity: a client
                    # bug or a corruption attempt, not a storage failure —
                    # keep it out of the generic "unstored" bucket so
                    # fraud-facing dashboards see it.
                    self.history_mismatches += 1
                    self.rejected_envelopes += 1
                    self.telemetry.inc(
                        "rsp.envelopes.rejected", reason="history-mismatch"
                    )
                    return False
                stored = self.history_store.append(
                    record, arrival_time=delivery.arrival_time
                )
                if stored:
                    self._engine.mark_dirty(record.entity_id)
                record_kind = "interaction"
            elif isinstance(record, OpinionUpload):
                if record.entity_id not in self.catalog:
                    self.rejected_envelopes += 1
                    self.telemetry.inc("rsp.envelopes.rejected", reason="unknown-entity")
                    return False
                existing = self._opinions.get(record.history_id)
                if existing is None or record.seq > existing.seq:
                    self._opinions[record.history_id] = record
                    self._engine.note_opinion(
                        existing,
                        record,
                        owner=self.history_store.bound_entity(record.history_id),
                    )
                else:
                    # A delayed/reordered re-upload older than (or tying)
                    # the slot: drop the write, but accept the envelope —
                    # the sender behaved correctly and must not retransmit.
                    self.opinions_stale += 1
                    self.telemetry.inc("rsp.opinions.stale")
                stored = True
                record_kind = "opinion"
            else:
                self.rejected_envelopes += 1
                self.telemetry.inc("rsp.envelopes.rejected", reason="malformed")
                return False
        except Exception:
            # Store dispatch blew up: nothing was durably written, so
            # nothing may be marked accepted.
            self.rejected_envelopes += 1
            self.telemetry.inc("rsp.envelopes.rejected", reason="store-error")
            return False
        if stored:
            # WAL-before-ack: the mutation is journaled (and flushed)
            # before the accept counter and nonce burn commit, so a
            # crash on either side of this line is recoverable — see
            # docs/DURABILITY.md.
            if self.journal is not None:
                if record_kind == "interaction":
                    self.journal.log_interaction(
                        record, delivery.arrival_time, nonce, token_id
                    )
                else:
                    self.journal.log_opinion(record, nonce, token_id)
            self._mark_accepted(nonce)
            self.telemetry.inc("rsp.envelopes.accepted", record=record_kind)
            if record_kind == "interaction":
                self.telemetry.observe(
                    "rsp.ingest_lag",
                    delivery.arrival_time - record.event_time,
                    buckets=INGEST_LAG_BUCKETS,
                )
        else:
            self.rejected_envelopes += 1
            self.telemetry.inc("rsp.envelopes.rejected", reason="unstored")
        return stored

    def _mark_accepted(self, nonce: bytes | None) -> None:
        self.accepted_envelopes += 1
        if nonce is not None:
            self._seen_nonces.add(nonce)

    def receive_all(
        self, deliveries: list[Delivery[Envelope]], now: float | None = None
    ) -> int:
        self.telemetry.observe(
            "rsp.intake.batch", len(deliveries), buckets=INTAKE_BATCH_BUCKETS
        )
        accepted = sum(1 for delivery in deliveries if self.receive(delivery, now=now))
        if self.journal is not None:
            # Group commit: each accepted envelope's WAL frame was already
            # flushed before its ack; the batch boundary is where the
            # journal fsyncs for power-loss durability.
            self.journal.sync_to_disk()
        return accepted

    # -------------------------------------------------------- maintenance

    def run_maintenance(self, now: float | None = None) -> MaintenanceReport:
        """Rebuild fraud profiles, filter histories, recompute summaries.

        ``now`` is the simulated time of the cycle; when given, the cycle
        is recorded as a ``maintenance`` span on the telemetry timeline.

        Aggregation inputs are put into *canonical order* (histories and
        opinions sorted by ``history_id``, entities visited in sorted
        order, verdicts sorted by ``history_id``) before any float math
        runs.  Floating-point reductions are order-dependent, so this is
        what makes the cycle's output a pure function of store *content*
        rather than arrival interleaving — and what lets the sharded
        maintenance path of :mod:`repro.scale` reproduce it bit for bit
        from any partitioning (see docs/SCALING.md).

        That same purity makes the cycle incremental: by default only
        entities dirtied since the last cycle (plus the profile-digest
        and verdict-flip cascades) are re-filtered and re-summarized;
        with ``incremental=False`` everything recomputes from scratch.
        The two modes are byte-identical in every report, summary, and
        aggregate telemetry value (``tests/scale/test_incremental.py``).
        """
        report = MaintenanceReport(
            n_histories=self.history_store.n_histories,
            n_opinions_received=len(self._opinions),
        )
        full = not self.incremental
        plan = self._engine.plan(full=full)
        stats = self._engine.execute(plan, full=full)
        report.rejected = self._engine.rejected_verdicts()
        report.n_rejected_histories = len(report.rejected)
        report.n_opinions_kept = self._engine.n_opinions_kept
        emit_maintenance_telemetry(
            self.telemetry,
            report,
            stats,
            now,
            mode="incremental" if self.incremental else "full",
        )
        return report

    # -------------------------------------------------------------- query

    def summary(self, entity_id: str) -> EntityOpinionSummary | None:
        return self._summaries.get(entity_id)

    def reviews_for(self, entity_id: str) -> list[ExplicitReview]:
        return list(self._reviews.get(entity_id, []))

    def search(self, query: Query, compare_top: int = 3) -> SearchResponse:
        """Answer a query with ranked results plus comparative visualizations
        of the top candidates (Figure 3 as a product feature)."""
        response = self._discovery.search(query, self._summaries)
        visualization: ComparativeVisualization | None = None
        top = [r.entity.entity_id for r in response.results[:compare_top]]
        if top:
            visualization = compare_entities(
                {
                    entity_id: self._accepted_histories.get(entity_id, [])
                    for entity_id in top
                }
            )
        return SearchResponse(
            query=response.query, results=response.results, visualization=visualization
        )

    def all_summaries(self) -> dict[str, EntityOpinionSummary]:
        """Every entity summary from the latest maintenance cycle.

        Canonical (entity-id) order: the engine's cache is insertion-
        ordered by recompute history, which differs between incremental
        and full cycles — sorting keeps every reader order-independent.
        """
        return {
            entity_id: self._summaries[entity_id]
            for entity_id in sorted(self._summaries)
        }

    @property
    def n_records(self) -> int:
        """Total interactions stored (shard-agnostic store-size accessor)."""
        return self.history_store.n_records

    @property
    def n_histories(self) -> int:
        return self.history_store.n_histories

    @property
    def n_unique_nonces(self) -> int:
        """Distinct envelope nonces accepted — duplicates never inflate this."""
        return len(self._seen_nonces)

    @property
    def n_explicit_reviews(self) -> int:
        return sum(len(reviews) for reviews in self._reviews.values())

    @property
    def n_opinions(self) -> int:
        return len(self._opinions)
