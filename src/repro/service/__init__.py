"""The RSP server: the service half of Figure 2.

Only server-side code lives here.  The end-to-end experiment drivers that
wire the world, the clients, and this server together moved to
:mod:`repro.orchestration` — the service layer itself never imports client
or sensing code (``repro lint`` rule ``layer-service-client``).
"""

from repro.core.protocol import AnonymousRecord, Envelope
from repro.service.server import ExplicitReview, MaintenanceReport, RSPServer

__all__ = [
    "AnonymousRecord",
    "Envelope",
    "ExplicitReview",
    "MaintenanceReport",
    "RSPServer",
]
