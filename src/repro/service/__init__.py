"""The RSP server and the end-to-end Figure 2 pipeline."""

from repro.service.epochs import EpochReport, EpochsOutcome, run_epochs
from repro.service.evaluation import (
    CalibrationBin,
    CoverageDiagnostics,
    KindAccuracy,
    abstention_calibration,
    accuracy_by_kind,
    coverage_diagnostics,
)
from repro.service.pipeline import (
    PipelineConfig,
    PipelineOutcome,
    collect_training_data,
    run_full_pipeline,
    train_classifier,
)
from repro.core.protocol import AnonymousRecord, Envelope
from repro.service.server import ExplicitReview, MaintenanceReport, RSPServer

__all__ = [
    "AnonymousRecord",
    "CalibrationBin",
    "CoverageDiagnostics",
    "EpochReport",
    "EpochsOutcome",
    "KindAccuracy",
    "abstention_calibration",
    "accuracy_by_kind",
    "coverage_diagnostics",
    "run_epochs",
    "Envelope",
    "ExplicitReview",
    "MaintenanceReport",
    "PipelineConfig",
    "PipelineOutcome",
    "RSPServer",
    "collect_training_data",
    "run_full_pipeline",
    "train_classifier",
]
