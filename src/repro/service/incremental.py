"""Incremental maintenance: dirty-entity tracking with exact recompute.

The maintenance cycle (fraud profiles → history filtering → opinion
summaries) is a pure function of store *content* — the canonical-order
discipline of :meth:`repro.service.server.RSPServer.run_maintenance`
makes it so.  That purity is what licenses incrementality: an entity
whose inputs did not change since the last cycle would recompute the
same accepted partition, the same verdicts, and the same summary, so the
cycle may skip it and keep the cached values — *byte-identical* output,
less work.  This module owns that bookkeeping for both deployments.

The invalidation contract (see docs/SCALING.md "Incremental
maintenance"):

* **Intake dirtying** — every accepted interaction, opinion, or review
  marks its entity dirty.  An opinion additionally dirties the *owner*
  entity of its history slot (a new slot changes the owner's kept-opinion
  count) and, on a cross-entity overwrite, the previously claimed entity.
* **Profile-digest guard** — fraud profiles are rebuilt every cycle
  (per-kind pools are cached and rebuilt only for kinds with dirty
  entities, which is exact because store content changes only at dirty
  entities).  If the digest of a kind's profile — or of the
  :class:`~repro.fraud.detector.DetectorConfig` folded into every
  digest — changed since the previous cycle, every entity of that kind
  is conservatively re-dirtied, so verdicts can never go stale against a
  moved baseline.
* **Verdict-flip cascade** — re-judging a dirty entity may flip which of
  its histories survive.  A flipped history invalidates the summary of
  the entity its opinion slot *claims* (which need not be the owner), so
  the summarize set is ``dirty ∪ flipped-owners ∪ claimed(flipped)``.
* **Eviction** — an entity is re-summarized from its current parts; when
  every part is empty (e.g. its last history was rejected) the cached
  summary is deleted, exactly matching the key set a full recompute
  would produce.

Dirty sets are Python ``set``s and therefore iterate in hash order;
every loop below goes through ``sorted()`` before touching float math,
and the ``det-dirty-iteration`` lint rule holds the line.

This module must not import from :mod:`repro.scale` —
``repro.scale.server`` imports :mod:`repro.service.server`, which
imports this module, so a scale import here would be a cycle.  The
sharded facade instead passes its pooled profiles into :meth:`plan` and
hands kernel results to :meth:`adopt_full`.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Protocol

from repro.core.aggregation import EntityOpinionSummary, OpinionUpload, summarize_entity
from repro.fraud.detector import DetectorConfig, FraudDetector, HistoryVerdict
from repro.fraud.profiles import (
    ProfilePools,
    TypicalProfile,
    collect_profile_pools,
    profiles_from_pools,
)
from repro.privacy.history_store import InteractionHistory


class StoreView(Protocol):
    """The deployment-agnostic read surface the engine computes from."""

    def histories_for_entity(self, entity_id: str) -> list[InteractionHistory]: ...

    def opinion(self, history_id: str) -> OpinionUpload | None: ...

    def has_opinion(self, history_id: str) -> bool: ...

    def explicit_ratings(self, entity_id: str) -> list[float]: ...

    def review_entities(self) -> set[str]: ...

    def entities_with_histories(self) -> set[str]: ...


class MonolithStoreView:
    """:class:`StoreView` over the monolithic server's stores."""

    def __init__(self, history_store, opinions: dict, reviews: dict) -> None:
        self._store = history_store
        self._opinions = opinions
        self._reviews = reviews

    def histories_for_entity(self, entity_id: str) -> list[InteractionHistory]:
        return self._store.histories_for_entity(entity_id)

    def opinion(self, history_id: str) -> OpinionUpload | None:
        return self._opinions.get(history_id)

    def has_opinion(self, history_id: str) -> bool:
        return history_id in self._opinions

    def explicit_ratings(self, entity_id: str) -> list[float]:
        return [float(r.rating) for r in self._reviews.get(entity_id, [])]

    def review_entities(self) -> set[str]:
        return set(self._reviews)

    def entities_with_histories(self) -> set[str]:
        return set(self._store.entity_ids())


def profile_digest(profile: TypicalProfile, config: DetectorConfig) -> str:
    """Digest of everything a verdict depends on besides the history itself.

    ``repr`` of the frozen dataclasses round-trips floats exactly, so two
    digests are equal iff the detector would judge identically.
    """
    payload = f"{profile!r}|{config!r}".encode()
    return hashlib.sha256(payload).hexdigest()


@dataclass
class CyclePlan:
    """What one maintenance cycle must (at minimum) recompute."""

    dirty: set[str]
    profiles: dict[str, TypicalProfile]
    changed_kinds: set[str]
    redirtied: set[str]
    judge_tracked: set[str]
    n_entities: int
    prev_summary_keys: set[str]


@dataclass
class CycleStats:
    """Tracked work accounting for one cycle — identical across modes.

    All fields derive from *tracked* sets (what incrementality says must
    be recomputed), never from what a given mode actually executed, so
    the aggregate telemetry built from them is byte-identical between
    incremental and full recompute, monolithic and sharded.
    """

    n_dirty: int = 0
    n_redirtied: int = 0
    n_judge_tracked: int = 0
    n_judge_cached: int = 0
    n_summarize_tracked: int = 0
    n_summarize_cached: int = 0


class MaintenanceEngine:
    """Caches maintenance state across cycles and recomputes only dirt.

    The engine owns the authoritative post-filter state: the accepted
    history partitions, the suspicious verdicts, the surviving-history
    set, per-owner kept-opinion counts, and the entity summaries.  The
    servers alias ``accepted`` and ``summaries`` directly (search reads
    them), so every update here mutates in place and never rebinds.
    """

    def __init__(
        self,
        view: StoreView,
        entity_kinds: dict[str, str],
        detector_config: DetectorConfig | None = None,
    ) -> None:
        self.view = view
        self.entity_kinds = entity_kinds
        self.config = detector_config or DetectorConfig()
        #: Entities touched by intake since the last cycle.
        self._dirty: set[str] = set()
        #: entity_id -> history ids whose opinion slot currently claims it
        #: (an opinion normally claims its owner entity, but the engine
        #: never assumes it).
        self._claims: dict[str, set[str]] = {}
        #: Post-filter state, keyed by entity (aliased by the servers).
        self.accepted: dict[str, list[InteractionHistory]] = {}
        self.summaries: dict[str, EntityOpinionSummary] = {}
        self.verdicts: dict[str, list[HistoryVerdict]] = {}
        self.kept: dict[str, int] = {}
        self._accepted_ids: dict[str, frozenset[str]] = {}
        self._surviving: set[str] = set()
        #: Per-entity feature-value fragments and the per-kind caches they
        #: roll up into (monolith profile path only; the sharded facade
        #: pools per shard and passes profiles into :meth:`plan`).
        self._fragments: dict[str, ProfilePools] = {}
        self._kind_profiles: dict[str, TypicalProfile | None] = {}
        self._profile_digests: dict[str, str] = {}
        #: Cycle listeners (the serving layer's cache-invalidation hook).
        self._listeners: list[Callable[[frozenset[str]], None]] = []

    def subscribe(self, listener: Callable[[frozenset[str]], None]) -> None:
        """Register a listener called after every cycle with the tracked
        summary-change set (``summarize_tracked`` — every entity whose
        summary *could* have changed, identically in incremental, full,
        and adopted-kernel modes).  This is the cache-coherence feed of
        :class:`repro.serve.cache.SummaryVersionCache`."""
        self._listeners.append(listener)

    def _notify(self, summarize_tracked: set[str]) -> None:
        changed = frozenset(summarize_tracked)
        for listener in self._listeners:
            listener(changed)

    # ------------------------------------------------------------- intake

    def mark_dirty(self, entity_id: str) -> None:
        self._dirty.add(entity_id)

    def note_opinion(
        self,
        existing: OpinionUpload | None,
        record: OpinionUpload,
        owner: str | None,
    ) -> None:
        """Track a slot write (call after the opinion dict was updated).

        ``owner`` is the entity the history is bound to (``None`` if the
        history is not stored yet).  A brand-new slot changes the owner's
        kept-opinion count, so the owner is dirtied too; a cross-entity
        overwrite moves the claim and dirties the abandoned entity.
        """
        self._dirty.add(record.entity_id)
        if existing is None:
            self._claims.setdefault(record.entity_id, set()).add(record.history_id)
            if owner is not None:
                self._dirty.add(owner)
        elif existing.entity_id != record.entity_id:
            old = self._claims.get(existing.entity_id)
            if old is not None:
                old.discard(record.history_id)
            self._claims.setdefault(record.entity_id, set()).add(record.history_id)
            self._dirty.add(existing.entity_id)

    # ----------------------------------------------------------- planning

    def plan(
        self,
        profiles: dict[str, TypicalProfile] | None = None,
        full: bool = False,
    ) -> CyclePlan:
        """Drain the dirty set and decide what this cycle must recompute.

        ``profiles`` lets the sharded facade supply its pooled (and
        bitwise-equivalent) profiles; when ``None``, the monolith path
        builds them from per-entity fragments, rebuilding only the kinds
        that contain a dirty entity (``full`` bypasses the fragment cache
        and recollects everything, the honest from-scratch baseline).
        """
        dirty = set(self._dirty)
        self._dirty.clear()
        for entity_id in sorted(dirty):
            self._fragments.pop(entity_id, None)
        entities = self.view.entities_with_histories()
        if profiles is None:
            profiles = self._build_profiles(dirty, entities, full=full)
        digests = {
            kind: profile_digest(profile, self.config)
            for kind, profile in sorted(profiles.items())
        }
        changed_kinds = {
            kind
            for kind in set(digests) | set(self._profile_digests)
            if digests.get(kind) != self._profile_digests.get(kind)
        }
        self._profile_digests = digests
        redirtied = {
            entity_id
            for entity_id in sorted(entities - dirty)
            if self.entity_kinds.get(entity_id) in changed_kinds
        }
        judge_tracked = (dirty | redirtied) & entities
        return CyclePlan(
            dirty=dirty,
            profiles=profiles,
            changed_kinds=changed_kinds,
            redirtied=redirtied,
            judge_tracked=judge_tracked,
            n_entities=len(entities),
            prev_summary_keys=set(self.summaries),
        )

    def _build_profiles(
        self, dirty: set[str], entities: set[str], full: bool
    ) -> dict[str, TypicalProfile]:
        """Per-kind profiles from cached per-entity feature fragments.

        Exactness: a kind's pooled values change only when one of its
        entities' histories changed, and every such entity is dirty — so
        a kind with no dirty entity reuses its cached profile, and the
        result is the same multiset of values :func:`build_profiles`
        would pool (``np.percentile`` sorts, so collection order never
        matters).
        """
        by_kind: dict[str, list[str]] = {}
        for entity_id in sorted(entities):
            kind = self.entity_kinds.get(entity_id)
            if kind is not None:
                by_kind.setdefault(kind, []).append(entity_id)
        dirty_kinds = {
            self.entity_kinds.get(entity_id) for entity_id in sorted(dirty)
        }
        for kind in sorted(by_kind):
            if not full and kind in self._kind_profiles and kind not in dirty_kinds:
                continue
            pool = ProfilePools()
            for entity_id in by_kind[kind]:
                fragment = self._fragments.get(entity_id)
                if fragment is None:
                    fragment = collect_profile_pools(
                        self.view.histories_for_entity(entity_id), self.entity_kinds
                    )
                    if not full:
                        self._fragments[entity_id] = fragment
                _extend_pool(pool, fragment, kind)
            built = profiles_from_pools(pool)
            self._kind_profiles[kind] = built.get(kind)
        # Kinds that lost their last entity keep a stale cache entry only
        # if they can never come back dirty; drop them for hygiene.
        for kind in sorted(set(self._kind_profiles) - set(by_kind)):
            del self._kind_profiles[kind]
        return {
            kind: profile
            for kind, profile in sorted(self._kind_profiles.items())
            if profile is not None
        }

    # ---------------------------------------------------------- execution

    def execute(self, plan: CyclePlan, full: bool = False) -> CycleStats:
        """Re-judge and re-summarize; incremental sets or everything.

        ``full`` widens the *executed* sets to every entity (the honest
        recompute baseline) — the tracked accounting in the returned
        :class:`CycleStats` is computed from the plan's sets either way,
        and recomputing a clean entity lands on the identical values, so
        the two modes cannot diverge.
        """
        detector = FraudDetector(plan.profiles, self.entity_kinds, self.config)
        if full:
            judge_set = self.view.entities_with_histories()
        else:
            judge_set = plan.judge_tracked
        flipped_owners: set[str] = set()
        flipped_ids: set[str] = set()
        for entity_id in sorted(judge_set):
            histories = sorted(
                self.view.histories_for_entity(entity_id),
                key=lambda history: history.history_id,
            )
            new_accepted: list[InteractionHistory] = []
            new_verdicts: list[HistoryVerdict] = []
            for history in histories:
                verdict = detector.judge(history)
                if verdict.suspicious:
                    new_verdicts.append(verdict)
                else:
                    new_accepted.append(history)
            new_ids = frozenset(history.history_id for history in new_accepted)
            old_ids = self._accepted_ids.get(entity_id, frozenset())
            if new_ids != old_ids:
                flipped_owners.add(entity_id)
                flipped_ids |= new_ids ^ old_ids
            self._surviving.difference_update(old_ids)
            self._surviving.update(new_ids)
            _set_or_pop(self.accepted, entity_id, new_accepted)
            _set_or_pop(self._accepted_ids, entity_id, new_ids)
            _set_or_pop(self.verdicts, entity_id, new_verdicts)
            _set_or_pop(
                self.kept,
                entity_id,
                sum(1 for history_id in new_ids if self.view.has_opinion(history_id)),
            )

        summarize_tracked = plan.dirty | flipped_owners | self._claimed_by(flipped_ids)
        if full:
            summarize_set = (
                set(self.accepted)
                | self._claimed_surviving()
                | self.view.review_entities()
            )
            self.summaries.clear()
        else:
            summarize_set = summarize_tracked
        for entity_id in sorted(summarize_set):
            self._resummarize(entity_id)
        self._notify(summarize_tracked)
        return self._stats(plan, summarize_tracked)

    def _resummarize(self, entity_id: str) -> None:
        """Recompute one entity's summary from current parts; evict if bare."""
        histories = self.accepted.get(entity_id, [])
        inferred = [
            self.view.opinion(history_id)
            for history_id in sorted(self._claims.get(entity_id, ()))
            if history_id in self._surviving
        ]
        explicit = self.view.explicit_ratings(entity_id)
        if histories or inferred or explicit:
            self.summaries[entity_id] = summarize_entity(
                entity_id=entity_id,
                histories=histories,
                inferred=inferred,
                explicit_ratings=explicit,
            )
        else:
            self.summaries.pop(entity_id, None)

    def _claimed_by(self, history_ids: set[str]) -> set[str]:
        """Entities whose summaries depend on these (flipped) histories."""
        claimed: set[str] = set()
        for history_id in sorted(history_ids):
            opinion = self.view.opinion(history_id)
            if opinion is not None:
                claimed.add(opinion.entity_id)
        return claimed

    def _claimed_surviving(self) -> set[str]:
        """Entities claimed by at least one surviving opinion slot."""
        return self._claimed_by(self._surviving)

    def adopt_full(
        self,
        plan: CyclePlan,
        accepted_by_entity: dict[str, list[InteractionHistory]],
        verdicts_by_entity: dict[str, list[HistoryVerdict]],
        kept_by_entity: dict[str, int],
        summaries: list[EntityOpinionSummary],
    ) -> CycleStats:
        """Adopt a full recompute produced elsewhere (the sharded kernel).

        The flip/cascade accounting is still computed — against the
        pre-adoption caches, over the plan's tracked judge set — so the
        stats (and the telemetry built from them) are identical to what
        the incremental path would have reported.
        """
        flipped_owners: set[str] = set()
        flipped_ids: set[str] = set()
        for entity_id in sorted(plan.judge_tracked):
            new_ids = frozenset(
                history.history_id
                for history in accepted_by_entity.get(entity_id, [])
            )
            old_ids = self._accepted_ids.get(entity_id, frozenset())
            if new_ids != old_ids:
                flipped_owners.add(entity_id)
                flipped_ids |= new_ids ^ old_ids
        summarize_tracked = plan.dirty | flipped_owners | self._claimed_by(flipped_ids)

        self.accepted.clear()
        self.accepted.update(accepted_by_entity)
        self._accepted_ids = {
            entity_id: frozenset(history.history_id for history in histories)
            for entity_id, histories in accepted_by_entity.items()
        }
        self._surviving = set()
        for ids in self._accepted_ids.values():
            self._surviving.update(ids)
        self.verdicts.clear()
        self.verdicts.update(verdicts_by_entity)
        self.kept.clear()
        self.kept.update(kept_by_entity)
        self.summaries.clear()
        self.summaries.update({summary.entity_id: summary for summary in summaries})
        self._notify(summarize_tracked)
        return self._stats(plan, summarize_tracked)

    def _stats(self, plan: CyclePlan, summarize_tracked: set[str]) -> CycleStats:
        return CycleStats(
            n_dirty=len(plan.dirty),
            n_redirtied=len(plan.redirtied),
            n_judge_tracked=len(plan.judge_tracked),
            n_judge_cached=plan.n_entities - len(plan.judge_tracked),
            n_summarize_tracked=len(summarize_tracked),
            n_summarize_cached=len(plan.prev_summary_keys - summarize_tracked),
        )

    # ------------------------------------------------------------ reading

    def rejected_verdicts(self) -> list[HistoryVerdict]:
        """All suspicious verdicts, in canonical (history-id) order."""
        return sorted(
            (
                verdict
                for verdicts in self.verdicts.values()
                for verdict in verdicts
            ),
            key=lambda verdict: verdict.history_id,
        )

    @property
    def n_opinions_kept(self) -> int:
        return sum(self.kept.values())


def _extend_pool(pool: ProfilePools, fragment: ProfilePools, kind: str) -> None:
    """Concatenate one entity's fragment into a kind pool (multiset union)."""
    n = fragment.n_histories.get(kind)
    if not n:
        return
    pool.n_histories[kind] = pool.n_histories.get(kind, 0) + n
    for name in ("gaps", "durations", "counts"):
        values = getattr(fragment, name).get(kind)
        if values:
            getattr(pool, name).setdefault(kind, []).extend(values)


def _set_or_pop(mapping: dict, key: str, value) -> None:
    """Keep ``mapping`` sparse: empty/zero values delete the entry."""
    if value:
        mapping[key] = value
    else:
        mapping.pop(key, None)
