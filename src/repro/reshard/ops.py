"""Reshard operations: journal-before-migrate around the server's moves.

:func:`perform` is the only sanctioned way to reshard a *live* server.
The order of its steps is the crash-safety argument:

1. **journal** the operation (kind ``reshard``, with the full resulting
   prefix table) and fsync — once this record is durable, recovery will
   deterministically re-run the migration, so a crash at *any* later
   point lands in the post-reshard topology with every key exactly once;
2. **migrate** via :meth:`~repro.scale.server.ShardedRSPServer.split_shard`
   / :meth:`~repro.scale.server.ShardedRSPServer.merge_shards` (which
   also remaps the journal's WAL lanes to the new routing);
3. **ledger**: append the entry to ``server.reshard_history`` and rewrite
   ``topology.json`` (:mod:`repro.reshard.topology`) so the operation
   survives WAL truncation;
4. **telemetry**, all DEPLOYMENT-scoped — resharding must never touch
   the aggregate digest a static deployment is compared against.

A crash between 1 and 3 leaves the WAL record without a ledger entry;
recovery replays the record and re-saves the ledger, closing the window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reshard.topology import save_topology, spec_to_json
from repro.telemetry import DEPLOYMENT
from repro.telemetry.catalog import RESHARD_MOVED_BUCKETS


@dataclass(frozen=True)
class ReshardOp:
    """One topology change: ``split(shard)`` or ``merge(a, b)``."""

    kind: str
    shard: int = 0
    a: int = 0
    b: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("split", "merge"):
            raise ValueError(f"unknown reshard op kind {self.kind!r}")
        if self.kind == "merge" and self.a == self.b:
            raise ValueError("cannot merge a shard with itself")

    @classmethod
    def split(cls, shard: int) -> "ReshardOp":
        return cls(kind="split", shard=int(shard))

    @classmethod
    def merge(cls, a: int, b: int) -> "ReshardOp":
        return cls(kind="merge", a=int(a), b=int(b))

    def describe(self) -> str:
        if self.kind == "split":
            return f"split:{self.shard}"
        return f"merge:{self.a}:{self.b}"


def perform(server, op: ReshardOp) -> dict[str, int]:
    """Apply ``op`` to a live sharded server; returns per-kind moved counts.

    See the module docstring for the step ordering and why it is safe.
    ``server`` is duck-typed (the same pattern as ``journal`` and
    ``telemetry`` everywhere else): anything with ``router``,
    ``split_shard``/``merge_shards``, ``reshard_history`` and optionally
    a ``journal`` qualifies — which is how recovery and the replica
    apply the identical records without importing this module.
    """
    if op.kind == "split":
        resulting = server.router.split(op.shard).spec()
        entry = {"op": "split", "shard": op.shard}
    else:
        resulting = server.router.merge(op.a, op.b).spec()
        entry = {"op": "merge", "a": op.a, "b": op.b}
    entry["resulting"] = spec_to_json(resulting)
    if server.journal is not None:
        entry["seq"] = server.journal.log_reshard(entry)
        # Journal-before-migrate: the record must be durable before any
        # state moves, or a crash mid-migration could lose the topology.
        server.journal.sync_to_disk()
    else:
        entry["seq"] = 0
    if op.kind == "split":
        moved = server.split_shard(op.shard)
    else:
        moved = server.merge_shards(op.a, op.b)
    server.reshard_seq += 1
    server.reshard_history.append(entry)
    if server.journal is not None:
        save_topology(server.journal.directory, server.reshard_history)
    telemetry = server.telemetry
    telemetry.inc(
        "rsp.reshard.splits" if op.kind == "split" else "rsp.reshard.merges",
        scope=DEPLOYMENT,
    )
    for state_kind in sorted(moved):
        if moved[state_kind]:
            telemetry.inc(
                "rsp.reshard.keys_moved",
                moved[state_kind],
                scope=DEPLOYMENT,
                kind=state_kind,
            )
    telemetry.observe(
        "rsp.reshard.moved",
        sum(moved.values()),
        buckets=RESHARD_MOVED_BUCKETS,
        scope=DEPLOYMENT,
    )
    telemetry.set_gauge(
        "rsp.reshard.shards", server.router.n_shards, scope=DEPLOYMENT
    )
    return moved
