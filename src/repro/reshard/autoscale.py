"""Telemetry-driven autoscaling: shard-load histograms → split/merge.

The observe→remediate control loop: each evaluation reads the per-shard
``rsp.shard.histories`` gauges the maintenance cycle just set (falling
back to the stores themselves when no telemetry sink is attached),
records the load distribution into the ``rsp.reshard.load`` histogram,
and applies at most one :class:`~repro.reshard.ops.ReshardOp` per call:

* the hottest shard splits when its load exceeds ``split_above`` (ties
  break to the lowest index, so decisions are deterministic);
* otherwise the two coldest shards merge when their *combined* load
  stays under ``merge_below``.

``merge_below <= split_above`` is required: a merged shard whose load
already exceeded the split threshold would split right back, and the
deployment would oscillate.  One op per evaluation bounds migration work
per epoch and lets the next cycle's fresh gauges drive the next step.

Everything here is DEPLOYMENT-scoped observation plus deterministic
arithmetic — an autoscaled run must stay byte-identical, in reports and
AGGREGATE telemetry, to a static deployment
(``tests/reshard/test_differential.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reshard.ops import ReshardOp, perform
from repro.telemetry import DEPLOYMENT
from repro.telemetry.catalog import RESHARD_LOAD_BUCKETS


@dataclass(frozen=True)
class AutoscalePolicy:
    """Thresholds (in histories per shard) with hysteresis."""

    split_above: int
    merge_below: int
    min_shards: int = 1
    max_shards: int = 64

    def __post_init__(self) -> None:
        if self.split_above <= 0:
            raise ValueError("split_above must be positive")
        if self.merge_below > self.split_above:
            raise ValueError(
                "merge_below must not exceed split_above (hysteresis band)"
            )
        if self.min_shards < 1:
            raise ValueError("min_shards must be >= 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")


class Autoscaler:
    """Evaluates a policy against a live server, one op at a time."""

    def __init__(self, policy: AutoscalePolicy) -> None:
        self.policy = policy
        #: Every op this autoscaler has applied, in order (for reports).
        self.applied: list[ReshardOp] = []

    def loads(self, server) -> list[int]:
        """Per-shard history counts, preferring the telemetry gauges."""
        observed: list[int] = []
        for shard in server.shards:
            value = server.telemetry.value("rsp.shard.histories", shard=shard.index)
            observed.append(
                shard.store.n_histories if value is None else int(value)
            )
        return observed

    def decide(self, server) -> ReshardOp | None:
        """The next op the policy calls for, or ``None`` when balanced."""
        loads = self.loads(server)
        for load in loads:
            server.telemetry.observe(
                "rsp.reshard.load",
                load,
                buckets=RESHARD_LOAD_BUCKETS,
                scope=DEPLOYMENT,
            )
        policy = self.policy
        n_shards = len(loads)
        if n_shards < policy.max_shards:
            hottest = max(range(n_shards), key=lambda index: (loads[index], -index))
            if loads[hottest] > policy.split_above:
                return ReshardOp.split(hottest)
        if n_shards > policy.min_shards:
            coldest = sorted(range(n_shards), key=lambda index: (loads[index], index))
            first, second = sorted(coldest[:2])
            if loads[first] + loads[second] < policy.merge_below:
                return ReshardOp.merge(first, second)
        return None

    def evaluate(self, server) -> ReshardOp | None:
        """Decide and, when warranted, perform one op.  Returns it."""
        op = self.decide(server)
        if op is not None:
            perform(server, op)
            self.applied.append(op)
        return op
