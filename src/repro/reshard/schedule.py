"""Scripted reshard schedules for the epochs driver and the CLI.

A schedule maps epoch index → the ops to apply at that epoch's start,
written as compact specs (the CLI's ``--reshard`` flag takes one per
occurrence)::

    1:split:0        # at the start of epoch 1, split shard 0
    2:merge:0:3      # at the start of epoch 2, merge shard 3 into 0

Epochs are 1-based, matching the ``epoch`` field of
:class:`repro.orchestration.epochs.EpochReport`.
Ops within one epoch apply in the order given; shard indices refer to
the topology *at apply time* (so a split at epoch 1 makes shard
``n_shards`` addressable from epoch 2 on — or immediately, for a later
op in the same epoch's list).
"""

from __future__ import annotations

from repro.reshard.ops import ReshardOp


def parse_op(spec: str) -> tuple[int, ReshardOp]:
    """One ``EPOCH:split:SHARD`` / ``EPOCH:merge:A:B`` spec."""
    parts = spec.strip().split(":")
    try:
        if len(parts) == 3 and parts[1] == "split":
            return int(parts[0]), ReshardOp.split(int(parts[2]))
        if len(parts) == 4 and parts[1] == "merge":
            return int(parts[0]), ReshardOp.merge(int(parts[2]), int(parts[3]))
    except ValueError as exc:
        raise ValueError(f"bad reshard spec {spec!r}: {exc}") from exc
    raise ValueError(
        f"bad reshard spec {spec!r}; expected EPOCH:split:SHARD or EPOCH:merge:A:B"
    )


def parse_schedule(specs: list[str]) -> dict[int, list[ReshardOp]]:
    """All specs grouped by epoch, preserving per-epoch order."""
    schedule: dict[int, list[ReshardOp]] = {}
    for spec in specs:
        epoch, op = parse_op(spec)
        if epoch < 1:
            raise ValueError(f"bad reshard spec {spec!r}: epochs are 1-based")
        schedule.setdefault(epoch, []).append(op)
    return schedule
