"""Elastic resharding: live shard split/merge for the sharded RSP.

The package is pure orchestration around state the rest of the system
already owns:

* :mod:`repro.reshard.ops` — :class:`ReshardOp` and :func:`perform`,
  the journal-before-migrate wrapper around
  :meth:`~repro.scale.server.ShardedRSPServer.split_shard` /
  :meth:`~repro.scale.server.ShardedRSPServer.merge_shards`;
* :mod:`repro.reshard.topology` — the durable operation history
  (``topology.json``) that outlives WAL truncation;
* :mod:`repro.reshard.autoscale` — the telemetry-driven policy that
  turns per-shard load gauges into split/merge decisions;
* :mod:`repro.reshard.schedule` — parsing of scripted
  ``EPOCH:split:SHARD`` / ``EPOCH:merge:A:B`` schedules for the epochs
  driver and the CLI.

Every metric emitted here is DEPLOYMENT-scoped: a static deployment
reshards zero times, and resharding must stay invisible to the
aggregate-telemetry byte-identity contract (docs/SCALING.md).
"""

from repro.reshard.autoscale import Autoscaler, AutoscalePolicy
from repro.reshard.ops import ReshardOp, perform
from repro.reshard.schedule import parse_schedule
from repro.reshard.topology import load_topology, save_topology

__all__ = [
    "Autoscaler",
    "AutoscalePolicy",
    "ReshardOp",
    "load_topology",
    "parse_schedule",
    "perform",
    "save_topology",
]
