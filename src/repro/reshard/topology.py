"""Durable topology history: the reshard ops a deployment has applied.

WAL segments are truncated once a snapshot covers them, but a reshard
operation must outlive its segment — recovery has to rebuild the prefix
table a snapshot's state was captured under before it can replay the
records that follow.  ``topology.json`` is that ledger: the full ordered
list of applied operations, each entry carrying its WAL sequence number
and the *resulting* prefix table, rewritten atomically after every
topology change (fsync the tmp file, rename, fsync the directory — the
same protocol as :mod:`repro.durability.snapshot`).

Each entry is a plain dict::

    {"seq": 17, "op": "split", "shard": 1, "resulting": [[[0, 1]], ...]}
    {"seq": 90, "op": "merge", "a": 0, "b": 3, "resulting": [...]}

``resulting`` is the per-shard prefix table as nested lists (JSON has no
tuples); :func:`spec_from_json` restores the hashable tuple form that
:meth:`repro.scale.router.ShardRouter.spec` produces.  The file carries
a digest over its canonical serialization, so a half-written or damaged
ledger is detected rather than silently replayed.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

TOPOLOGY_FORMAT = "rsp-topology/1"
TOPOLOGY_FILE = "topology.json"


class CorruptTopologyError(RuntimeError):
    """The topology ledger failed its integrity check."""


def spec_to_json(spec) -> list:
    """A router spec (tuples of ``(value, depth)``) as nested lists."""
    return [[[int(v), int(d)] for v, d in prefixes] for prefixes in spec]


def spec_from_json(raw) -> tuple:
    """The inverse of :func:`spec_to_json`: hashable nested tuples."""
    return tuple(
        tuple((int(v), int(d)) for v, d in prefixes) for prefixes in raw
    )


def _digest(entries: list[dict]) -> str:
    canonical = json.dumps(entries, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_topology(directory: Path, entries: list[dict]) -> Path:
    """Atomically (re)write the full operation ledger."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": TOPOLOGY_FORMAT,
        "entries": entries,
        "digest": _digest(entries),
    }
    final = directory / TOPOLOGY_FILE
    tmp = directory / (TOPOLOGY_FILE + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.rename(tmp, final)
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    return final


def load_topology(directory: Path) -> list[dict]:
    """The ordered operation ledger, or ``[]`` when none was ever saved."""
    path = Path(directory) / TOPOLOGY_FILE
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CorruptTopologyError(f"unreadable topology ledger: {exc}") from exc
    entries = payload.get("entries")
    if (
        payload.get("format") != TOPOLOGY_FORMAT
        or not isinstance(entries, list)
        or payload.get("digest") != _digest(entries)
    ):
        raise CorruptTopologyError(
            f"topology ledger {path} failed its integrity check"
        )
    return entries
