"""Process-parallel execution of the sharded maintenance phases.

The pool model is fork-and-forget: a :class:`MaintenancePool` registers
the server in a module global, then creates a ``fork``-context
``ProcessPoolExecutor`` whose workers inherit the whole server — stores
included — as copy-on-write memory.  Task functions receive only a shard
or partition index (plus small value arguments such as the global
profiles) and read the heavy state from the inherited snapshot, so no
store is ever pickled.  Stores are never mutated during a maintenance
cycle, so the snapshot is exact.

Every task function is a pure function of the registered server's state
and its arguments, and results are consumed in task-index order — which
is what makes serial execution, pooled execution, and pooled execution
with a broken pool (the serial fallback) produce identical results.

Platforms without ``fork`` (or a pool that dies mid-cycle) degrade to
in-process serial execution of the very same task functions; the
``pool_fallbacks`` counter on the server records that it happened.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.core.aggregation import EntityOpinionSummary
from repro.fraud.detector import DetectorConfig, HistoryVerdict
from repro.fraud.profiles import ProfilePools, TypicalProfile
from repro.scale.kernel import judge_frame, summarize_partition_frame
from repro.telemetry import DEPLOYMENT
from repro.telemetry.catalog import POOL_CHUNK_BUCKETS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.scale.server import ShardedRSPServer

#: The server whose maintenance cycle is currently executing.  Set by
#: :class:`MaintenancePool` before any worker forks, read by the task
#: functions in whichever process runs them.
_ACTIVE: "ShardedRSPServer | None" = None


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class MaintenancePool:
    """Runs maintenance task batches serially or across forked workers."""

    def __init__(self, server: "ShardedRSPServer", workers: int) -> None:
        self.server = server
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None

    def __enter__(self) -> "MaintenancePool":
        global _ACTIVE
        _ACTIVE = self.server
        if self.workers >= 1 and _fork_available():
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        self._close_executor()
        _ACTIVE = None

    def _close_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def map(
        self, fn: Callable[..., Any], argument_tuples: list[tuple]
    ) -> list[Any]:
        """Run ``fn`` over ``argument_tuples``, results in argument order.

        Pooled execution submits one *chunk* of consecutive argument
        tuples per worker rather than one task per tuple.  Contiguous
        chunking makes worker ``w`` the only process that walks shards
        ``w``'s object graphs, which matters under fork: every object a
        child touches dirties its refcount page, and page-level
        copy-on-write would otherwise duplicate the whole store in every
        worker.
        """
        if self._executor is not None:
            chunks = _split_chunks(argument_tuples, self.workers)
            for chunk in chunks:
                self.server.telemetry.observe(
                    "rsp.pool.chunk",
                    len(chunk),
                    buckets=POOL_CHUNK_BUCKETS,
                    scope=DEPLOYMENT,
                )
            try:
                futures = [
                    self._executor.submit(_run_chunk, fn, chunk) for chunk in chunks
                ]
                return [result for future in futures for result in future.result()]
            except (BrokenProcessPool, OSError):
                # Task functions are pure, so recomputing everything
                # serially is safe and lands on the identical result.
                self.server.pool_fallbacks += 1
                self.server.telemetry.inc("rsp.pool.fallbacks", scope=DEPLOYMENT)
                self._close_executor()
        return [fn(*arguments) for arguments in argument_tuples]


def _split_chunks(items: list[tuple], n_chunks: int) -> list[list[tuple]]:
    """Split ``items`` into up to ``n_chunks`` contiguous, ordered chunks."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks: list[list[tuple]] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _run_chunk(fn: Callable[..., Any], chunk: list[tuple]) -> list[Any]:
    """Worker-side chunk runner; preserves per-tuple result order."""
    return [fn(*arguments) for arguments in chunk]


# ---------------------------------------------------------------- tasks
#
# Module-level so the fork pickler can pass them by qualified name.  Each
# reads shard state from the registered server snapshot.


def collect_shard_pools(shard_index: int) -> ProfilePools:
    """Phase A: pool one shard's per-kind fraud-profile feature values.

    The pools are cached on the shard by store version, so the facade
    now runs this phase in the parent (where the cache persists across
    cycles); the task function remains for serial callers and tests.
    """
    server = _ACTIVE
    shard = server.shards[shard_index]
    return shard.pools(server.entity_kinds)


@dataclass
class ShardJudgement:
    """Phase-B result for one shard."""

    verdicts: list[HistoryVerdict] = field(default_factory=list)
    n_kept_opinions: int = 0


def judge_shard(
    shard_index: int,
    profiles: dict[str, TypicalProfile],
    config: DetectorConfig | None,
) -> ShardJudgement:
    """Phase B: judge one shard's histories against the global profiles."""
    server = _ACTIVE
    shard = server.shards[shard_index]
    frame = shard.frame(server.entity_kinds)
    judgement = judge_frame(frame, profiles, config)
    rejected_ids = {verdict.history_id for verdict in judgement.verdicts}
    accepted_ids = {
        history_id
        for history_id in frame.hist_ids
        if history_id not in rejected_ids
    }
    # An opinion survives iff its history exists and survived; opinions
    # and histories share the record key, so both live on this shard.
    kept = sum(
        1 for history_id in shard.opinions if history_id in accepted_ids
    )
    return ShardJudgement(verdicts=judgement.verdicts, n_kept_opinions=kept)


def summarize_partition(
    partition_index: int, rejected_ids: frozenset[str]
) -> list[EntityOpinionSummary]:
    """Phase C: summarize the entities routed to one partition.

    Histories and opinions are partitioned by *record* key, so one
    entity's surviving records are scattered across shards; the cached
    :class:`~repro.scale.kernel.GatherFrame` (built in the parent before
    any worker forked) regroups them columnarly, and
    :func:`~repro.scale.kernel.summarize_partition_frame` replays the
    monolithic per-entity loop in canonical order — same sorted inputs,
    same float reductions, bit-identical summaries.
    """
    server = _ACTIVE
    return summarize_partition_frame(
        server.gather_frame(),
        partition_index,
        rejected_ids,
        server.shards[partition_index].reviews,
    )
