"""The sharded RSP service: N store partitions behind one intake facade.

:class:`ShardedRSPServer` exposes the same surface as the monolithic
:class:`~repro.service.server.RSPServer` — intake, maintenance, search,
counters, ``fault_hook`` — but keys every piece of durable state to one
of N shards:

* interaction histories and inferred opinions route by their unlinkable
  ``hash(Ru, e)`` record identifier (so a record, its re-uploads, and its
  opinion all live together);
* explicit reviews and entity summaries route by entity identifier;
* the seen-nonce and spent-token tables are partitioned by their own key
  bytes, which keeps duplicate suppression and double-spend rejection
  *globally* exact: identical nonces (or token ids) always meet in the
  same bucket, whatever record they arrive with.

Every behaviour here is contractually bit-identical to the monolithic
server: same accepted/rejected/duplicate classification for every intake
sequence, same maintenance reports, verdicts, and summaries for every
shard and worker count.  ``tests/scale`` holds the proof obligations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.aggregation import EntityOpinionSummary, OpinionUpload
from repro.core.discovery import DiscoveryService, Query, SearchResponse
from repro.core.protocol import Envelope
from repro.core.visualization import ComparativeVisualization, compare_entities
from repro.fraud.attestation import AttestationQuote, AttestationVerifier
from repro.fraud.detector import DetectorConfig
from repro.fraud.profiles import profiles_from_pools
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionHistory, InteractionUpload
from repro.privacy.tokens import TokenIssuer, UploadToken
from repro.scale import parallel
from repro.scale.kernel import GatherFrame, build_gather, kept_counts
from repro.scale.merge import group_verdicts_by_entity, merge_pools
from repro.scale.router import ShardRouter
from repro.scale.shard import ShardState
from repro.service.incremental import MaintenanceEngine
from repro.service.server import (
    ExplicitReview,
    MaintenanceReport,
    emit_maintenance_telemetry,
)
from repro.telemetry import DEPLOYMENT, NULL, Telemetry
from repro.telemetry.catalog import (
    INGEST_LAG_BUCKETS,
    INTAKE_BATCH_BUCKETS,
    SHARD_BATCH_BUCKETS,
)
from repro.world.entities import Entity

if TYPE_CHECKING:
    from repro.serve.engine import ServeQuery, ServeResponse
    from repro.serve.facade import ServingLayer


class ShardedTokenRedeemer:
    """Double-spend protection with the spent set partitioned by token id.

    Buckets are chosen by the token's own identifier bytes, so the two
    copies of a replayed token always contend in the same bucket — the
    partition is invisible to the double-spend semantics.
    """

    def __init__(self, public_key, router: ShardRouter) -> None:
        self._public_key = public_key
        self._router = router
        self._spent: list[set[int]] = [set() for _ in range(router.n_shards)]

    def redeem(self, token: UploadToken) -> bool:
        bucket = self._spent[self._router.shard_of_bytes(token.token_id)]
        if token.token_id in bucket:
            return False
        if not self._public_key.verify(token.token_id, token.signature):
            return False
        bucket.add(token.token_id)
        return True

    @property
    def n_redeemed(self) -> int:
        return sum(len(bucket) for bucket in self._spent)


class ShardedStoreView:
    """:class:`~repro.service.incremental.StoreView` over the shards.

    Histories are concatenated in shard-index order — the engine sorts
    every per-entity list by history id before judging or summarizing,
    so the concatenation order is unobservable.
    """

    def __init__(self, server: "ShardedRSPServer") -> None:
        self._server = server

    def histories_for_entity(self, entity_id: str) -> list[InteractionHistory]:
        histories: list[InteractionHistory] = []
        for shard in self._server.shards:
            histories.extend(shard.store.histories_for_entity(entity_id))
        return histories

    def opinion(self, history_id: str):
        shard = self._server.shards[self._server.router.shard_of(history_id)]
        return shard.opinions.get(history_id)

    def has_opinion(self, history_id: str) -> bool:
        return self.opinion(history_id) is not None

    def explicit_ratings(self, entity_id: str) -> list[float]:
        shard = self._server.shards[self._server.router.shard_of(entity_id)]
        return [float(review.rating) for review in shard.reviews.get(entity_id, [])]

    def review_entities(self) -> set[str]:
        entities: set[str] = set()
        for shard in self._server.shards:
            entities.update(shard.reviews)
        return entities

    def entities_with_histories(self) -> set[str]:
        entities: set[str] = set()
        for shard in self._server.shards:
            entities.update(shard.store.entity_ids())
        return entities


class ShardedRSPServer:
    """The re-architected service, partitioned for horizontal scale."""

    def __init__(
        self,
        catalog: list[Entity],
        quota_per_day: int = 48,
        key_seed: int = 0,
        key_bits: int = 512,
        require_tokens: bool = True,
        detector_config: DetectorConfig | None = None,
        attestation: AttestationVerifier | None = None,
        n_shards: int = 8,
        workers: int = 0,
        incremental: bool = True,
    ) -> None:
        if not catalog:
            raise ValueError("catalog must be non-empty")
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = serial)")
        self.catalog = {entity.entity_id: entity for entity in catalog}
        self.entity_kinds = {e.entity_id: e.kind.label for e in catalog}
        self.issuer = TokenIssuer(
            quota_per_day=quota_per_day, key_seed=key_seed, key_bits=key_bits
        )
        self.require_tokens = require_tokens
        self.attestation = attestation
        self.rejected_attestations = 0
        self.router = ShardRouter(n_shards)
        #: Worker processes for maintenance (0 = in-process serial).
        self.workers = workers
        #: Kept for resharding: split/merge derive new shard seeds from it.
        self._key_seed = key_seed
        #: Monotone count of applied reshard operations, and the ops
        #: themselves — recovery replays these to rebuild the topology.
        self.reshard_seq = 0
        self.reshard_history: list[dict] = []
        self.shards = [ShardState(index, key_seed) for index in range(n_shards)]
        self._redeemer = ShardedTokenRedeemer(self.issuer.public_key, self.router)
        self._nonce_buckets: list[set[bytes]] = [set() for _ in range(n_shards)]
        self._discovery = DiscoveryService(catalog)
        self._detector_config = detector_config
        #: ``False`` forces full kernel recompute every cycle; ``True``
        #: re-filters/re-summarizes only dirty entities serially when the
        #: dirty set is small, falling back to the pooled kernel when
        #: most of the deployment is dirty anyway (the hybrid keeps both
        #: paths byte-identical — ``tests/scale/test_incremental.py``).
        self.incremental = incremental
        self._engine = MaintenanceEngine(
            ShardedStoreView(self), self.entity_kinds, detector_config
        )
        # Aliases into the engine's caches (mutated in place only).
        self._summaries: dict[str, EntityOpinionSummary] = self._engine.summaries
        self._accepted_histories: dict[str, list[InteractionHistory]] = (
            self._engine.accepted
        )
        self._gather: GatherFrame | None = None
        self._gather_versions: tuple[int, ...] | None = None
        self.rejected_envelopes = 0
        self.duplicates_suppressed = 0
        self.accepted_envelopes = 0
        self.dropped_by_outage = 0
        #: Stale opinion re-uploads dropped by ``seq`` ordering (mirrors
        #: :class:`~repro.service.server.RSPServer`).
        self.opinions_stale = 0
        #: Interaction uploads whose identifier is bound to another
        #: entity (split from generic ``unstored`` storage failures).
        self.history_mismatches = 0
        #: Times the worker pool died and maintenance re-ran serially.
        self.pool_fallbacks = 0
        #: Optional harness hook with ``server_down(now) -> bool``.
        self.fault_hook = None
        #: Optional durability hook (duck-typed like ``fault_hook``); the
        #: driver installs a per-shard-lane
        #: :class:`repro.durability.journal.DurableJournal` built with
        #: ``lane_of=self.router.shard_of`` so each shard's mutations
        #: land in their own WAL file.
        self.journal = None
        #: Aggregate metrics here are emitted with the *same* names and
        #: values as the monolith's (integer arithmetic makes them
        #: grouping-order independent); per-shard detail is emitted under
        #: DEPLOYMENT scope and excluded from the invariant digest.
        self.telemetry: Telemetry = NULL
        #: Lazily constructed read path (see :attr:`serving`).
        self._serving = None

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Install a shared telemetry sink on the facade and its issuer."""
        self.telemetry = telemetry
        self.issuer.telemetry = telemetry

    # --------------------------------------------------------------- serving

    def attach_serving(self, **kwargs) -> "ServingLayer":
        """Build the indexed serving layer (see :mod:`repro.serve`).

        The layer duck-types the server, so this is the identical call
        surface (and the identical behaviour, byte for byte) as
        :meth:`repro.service.server.RSPServer.attach_serving`.
        """
        from repro.serve.facade import ServingLayer

        self._serving = ServingLayer(self, **kwargs)
        return self._serving

    @property
    def serving(self) -> "ServingLayer":
        """The read path, constructed on first use (lazy for the same
        telemetry-stability reason as the monolith's)."""
        if self._serving is None:
            self.attach_serving()
        return self._serving

    def query(self, query: "ServeQuery") -> "ServeResponse":
        """Answer a read-path query through the cached serving layer."""
        return self.serving.query(query)

    # ------------------------------------------------------------- intake

    def issue_tokens(
        self,
        # Issuance-side identity only; the blind signature unlinks the
        # redeemed token from this device (Section 4.2).
        device_id: str,  # repro: allow[priv-server-identity]
        blinded_values: list[int],
        now: float,
        quote: AttestationQuote | None = None,
    ) -> list[int]:
        """Blind-sign upload tokens for an attested device.

        Issuance is a single-endpoint concern (quota windows are per
        device), so it is not sharded; only redemption state is.
        """
        if self.attestation is not None:
            if quote is None or not self.attestation.verify(quote):
                self.rejected_attestations += 1
                raise PermissionError(
                    f"device {device_id} failed attestation; no tokens issued"
                )
        return self.issuer.issue(device_id, blinded_values, now=now)

    def post_review(
        self,
        # Explicit reviews are the attributed legacy path (Section 2
        # baseline); they never mix with the anonymous hash(Ru, e) stores.
        user_id: str,  # repro: allow[priv-server-identity]
        entity_id: str,
        rating: int,
        time: float,
    ) -> None:
        """Accept an explicit, attributed review (the legacy path)."""
        if entity_id not in self.catalog:
            raise KeyError(f"unknown entity {entity_id!r}")
        shard = self.shards[self.router.shard_of(entity_id)]
        # Construct-then-journal mirrors the monolith: validation runs
        # before the WAL sees the review, the WAL before the store does.
        review = ExplicitReview(
            user_id=user_id, entity_id=entity_id, rating=rating, time=time
        )
        if self.journal is not None:
            self.journal.log_review(user_id, entity_id, rating, time)
        shard.reviews.setdefault(entity_id, []).append(review)
        shard.dirty_entities.add(entity_id)
        self.telemetry.inc("rsp.reviews.posted")

    def receive(self, delivery: Delivery[Envelope], now: float | None = None) -> bool:
        """Process one anonymous envelope off the network.

        Same check order, classification nuances, transactional accept
        semantics, and ``now`` override as :meth:`RSPServer.receive` —
        only the tables are partitioned.
        """
        return self._receive_one(delivery, now=now)

    def receive_all(
        self, deliveries: list[Delivery[Envelope]], now: float | None = None
    ) -> int:
        return self.receive_batch(deliveries, now=now)

    def receive_batch(
        self, deliveries: list[Delivery[Envelope]], now: float | None = None
    ) -> int:
        """Batched intake: route once per envelope, group per shard, process.

        Grouping amortizes per-shard dispatch and keeps each shard's
        writes contiguous.  Relative order *within* a shard follows the
        delivery order, and all state an envelope touches (its history,
        its opinion slot, its nonce bucket, its token bucket) is keyed by
        values the envelope itself carries — so regrouping across shards
        cannot change any accept/reject/duplicate outcome.

        Each envelope's route is derived exactly once here and handed to
        :meth:`_receive_one` as a hint (it used to be re-derived inside
        the store dispatch, doubling the SHA-256 routing work per record).
        A ``None`` route marks a record without a string ``history_id``:
        it sorts into shard 0 like before, but the hint stays unset so the
        store dispatch re-derives — and classifies — exactly as a direct
        :meth:`receive` would.  When every envelope routes to the same
        shard (the common case for a client's sync burst and for replayed
        backlogs), the fast path skips the per-shard group allocation
        entirely and walks the batch in place.
        """
        self.telemetry.observe(
            "rsp.intake.batch", len(deliveries), buckets=INTAKE_BATCH_BUCKETS
        )
        shard_of = self.router.shard_of
        routes: list[int | None] = []
        single: int | None = None
        mixed = False
        for delivery in deliveries:
            key = getattr(delivery.payload.record, "history_id", None)
            route = shard_of(key) if isinstance(key, str) else None
            routes.append(route)
            group_index = 0 if route is None else route
            if single is None:
                single = group_index
            elif group_index != single:
                mixed = True
        accepted = 0
        if not mixed:
            if deliveries:
                self.telemetry.observe(
                    "rsp.shard.batch",
                    len(deliveries),
                    buckets=SHARD_BATCH_BUCKETS,
                    scope=DEPLOYMENT,
                    shard=single,
                )
            for delivery, route in zip(deliveries, routes):
                if self._receive_one(delivery, now=now, shard_hint=route):
                    accepted += 1
        else:
            groups: list[list[tuple[Delivery[Envelope], int | None]]] = [
                [] for _ in range(self.router.n_shards)
            ]
            for delivery, route in zip(deliveries, routes):
                groups[0 if route is None else route].append((delivery, route))
            for shard_index, group in enumerate(groups):
                if group:
                    self.telemetry.observe(
                        "rsp.shard.batch",
                        len(group),
                        buckets=SHARD_BATCH_BUCKETS,
                        scope=DEPLOYMENT,
                        shard=shard_index,
                    )
                for delivery, route in group:
                    if self._receive_one(delivery, now=now, shard_hint=route):
                        accepted += 1
        if self.journal is not None:
            # Group commit across all lanes (see RSPServer.receive_all).
            self.journal.sync_to_disk()
        return accepted

    def _receive_one(
        self,
        delivery: Delivery[Envelope],
        now: float | None = None,
        shard_hint: int | None = None,
    ) -> bool:
        envelope = delivery.payload
        if self.fault_hook is not None and self.fault_hook.server_down(
            delivery.arrival_time if now is None else now
        ):
            self.dropped_by_outage += 1
            self.telemetry.inc("rsp.envelopes.outage_dropped")
            return False
        nonce = getattr(envelope, "nonce", None)
        nonce_bucket = (
            None
            if nonce is None
            else self._nonce_buckets[self.router.shard_of_bytes(nonce)]
        )
        if self.require_tokens:
            if envelope.token is None or not self._redeemer.redeem(envelope.token):
                if nonce_bucket is not None and nonce in nonce_bucket:
                    self.duplicates_suppressed += 1
                    self.telemetry.inc("rsp.envelopes.duplicate")
                else:
                    self.rejected_envelopes += 1
                    self.telemetry.inc("rsp.envelopes.rejected", reason="token")
                return False
        if nonce_bucket is not None and nonce in nonce_bucket:
            self.duplicates_suppressed += 1
            self.telemetry.inc("rsp.envelopes.duplicate")
            return False
        token_id = (
            envelope.token.token_id
            if self.require_tokens and envelope.token is not None
            else None
        )
        record = envelope.record
        record_kind = None
        try:
            if isinstance(record, InteractionUpload):
                if record.entity_id not in self.catalog:
                    self.rejected_envelopes += 1
                    self.telemetry.inc("rsp.envelopes.rejected", reason="unknown-entity")
                    return False
                shard = self.shards[
                    self.router.shard_of(record.history_id)
                    if shard_hint is None
                    else shard_hint
                ]
                bound = shard.store.bound_entity(record.history_id)
                if bound is not None and bound != record.entity_id:
                    # Same split as the monolith: an identifier bound to
                    # another entity is not a storage failure.
                    self.history_mismatches += 1
                    self.rejected_envelopes += 1
                    self.telemetry.inc(
                        "rsp.envelopes.rejected", reason="history-mismatch"
                    )
                    return False
                stored = shard.store.append(
                    record, arrival_time=delivery.arrival_time
                )
                if stored:
                    shard.store_version += 1
                    shard.version += 1
                    shard.dirty_entities.add(record.entity_id)
                record_kind = "interaction"
            elif isinstance(record, OpinionUpload):
                if record.entity_id not in self.catalog:
                    self.rejected_envelopes += 1
                    self.telemetry.inc("rsp.envelopes.rejected", reason="unknown-entity")
                    return False
                shard = self.shards[
                    self.router.shard_of(record.history_id)
                    if shard_hint is None
                    else shard_hint
                ]
                existing = shard.opinions.get(record.history_id)
                if existing is None or record.seq > existing.seq:
                    shard.opinions[record.history_id] = record
                    shard.version += 1
                    self._engine.note_opinion(
                        existing,
                        record,
                        owner=shard.store.bound_entity(record.history_id),
                    )
                else:
                    # Stale re-upload (delayed/reordered): accept the
                    # envelope, skip the slot write — mirrors RSPServer.
                    self.opinions_stale += 1
                    self.telemetry.inc("rsp.opinions.stale")
                stored = True
                record_kind = "opinion"
            else:
                self.rejected_envelopes += 1
                self.telemetry.inc("rsp.envelopes.rejected", reason="malformed")
                return False
        except Exception:
            # Transactional accept: nothing durably written, so neither
            # the counter nor the nonce may burn (mirrors RSPServer).
            self.rejected_envelopes += 1
            self.telemetry.inc("rsp.envelopes.rejected", reason="store-error")
            return False
        if stored:
            # WAL-before-ack, mirroring the monolith: journal (and flush)
            # before the accept counter and the nonce burn commit.
            if self.journal is not None:
                if record_kind == "interaction":
                    self.journal.log_interaction(
                        record, delivery.arrival_time, nonce, token_id
                    )
                else:
                    self.journal.log_opinion(record, nonce, token_id)
            self.accepted_envelopes += 1
            if nonce_bucket is not None:
                nonce_bucket.add(nonce)
            self.telemetry.inc("rsp.envelopes.accepted", record=record_kind)
            if record_kind == "interaction":
                self.telemetry.observe(
                    "rsp.ingest_lag",
                    delivery.arrival_time - record.event_time,
                    buckets=INGEST_LAG_BUCKETS,
                )
        else:
            self.rejected_envelopes += 1
            self.telemetry.inc("rsp.envelopes.rejected", reason="unstored")
        return stored

    # -------------------------------------------------------- maintenance

    def gather_frame(self) -> GatherFrame:
        """The cross-shard summarization view, cached by store version."""
        versions = tuple(shard.version for shard in self.shards)
        if self._gather is None or self._gather_versions != versions:
            frames = [shard.frame(self.entity_kinds) for shard in self.shards]
            self._gather = build_gather(
                frames,
                [shard.opinions for shard in self.shards],
                self.router.shard_of,
                self.catalog,
            )
            self._gather_versions = versions
        return self._gather

    def run_maintenance(self, now: float | None = None) -> MaintenanceReport:
        """Shard-parallel maintenance with a deterministic global merge.

        The cycle plans with the shared incremental engine (per-shard
        dirty sets drained in, pooled profiles passed in) and then picks
        one of two byte-identical executions: when few entities are
        tracked, the engine re-judges and re-summarizes just those
        serially in the parent; when at least half the deployment is
        tracked — or ``incremental=False`` — the pooled kernel recompute
        is cheaper, fanned across the shards (serially when
        ``workers == 0``): **A** pools per-kind feature values per shard
        (cached by store version, merged in the parent so the caches
        survive the fork); **B** judges every shard's histories against
        the global profiles; **C** rebuilds entity summaries per entity
        partition.  All merges are order-independent (sums, sorted
        concatenations), so the report is bit-identical to the monolithic
        cycle for any shard and worker count, in either mode.

        Telemetry is recorded in the parent process only — increments in
        forked pool workers would die with the worker, and parent-side
        recording is also what keeps the aggregate export invariant
        across worker counts.  ``now`` timestamps the cycle's spans.
        """
        report = MaintenanceReport(
            n_histories=self.n_histories,
            n_opinions_received=self.n_opinions,
        )
        shard_indices = range(self.router.n_shards)
        # Drain the per-shard dirty sets into the engine (sorted — dirty
        # sets iterate in hash order, and `repro lint` holds the line).
        for shard in self.shards:
            for entity_id in sorted(shard.dirty_entities):
                self._engine.mark_dirty(entity_id)
            shard.dirty_entities.clear()
        # Warm the per-shard frames in the parent, *before* any pool
        # forks: workers then inherit read-only columnar caches and never
        # walk the store object graphs, which keeps fork-time
        # copy-on-write from duplicating the stores.
        for shard in self.shards:
            shard.frame(self.entity_kinds)
        # Phase A runs in the parent so the per-shard pool caches persist
        # across cycles; a worker-side cache write would die with the fork.
        profiles = profiles_from_pools(
            merge_pools([shard.pools(self.entity_kinds) for shard in self.shards])
        )
        full = not self.incremental
        plan = self._engine.plan(profiles=profiles, full=full)
        # Hybrid execution: the serial engine wins while the tracked set
        # is small; once half the deployment must recompute anyway, the
        # pooled kernel is cheaper.  Both sides are byte-identical, so
        # the threshold only moves work, never results.
        use_kernel = full or 2 * len(plan.judge_tracked) >= max(1, plan.n_entities)
        if use_kernel:
            self.gather_frame()
            with parallel.MaintenancePool(self, self.workers) as pool:
                judgements = pool.map(
                    parallel.judge_shard,
                    [
                        (index, plan.profiles, self._detector_config)
                        for index in shard_indices
                    ],
                )
                rejected = sorted(
                    (
                        verdict
                        for result in judgements
                        for verdict in result.verdicts
                    ),
                    key=lambda verdict: verdict.history_id,
                )
                rejected_ids = frozenset(verdict.history_id for verdict in rejected)
                partitions = pool.map(
                    parallel.summarize_partition,
                    [(index, rejected_ids) for index in shard_indices],
                )
            accepted_histories: dict[str, list[InteractionHistory]] = {}
            for shard in self.shards:
                for history in shard.store.all_histories():
                    if history.history_id in rejected_ids:
                        continue
                    accepted_histories.setdefault(history.entity_id, []).append(
                        history
                    )
            for histories in accepted_histories.values():
                histories.sort(key=lambda history: history.history_id)
            stats = self._engine.adopt_full(
                plan,
                accepted_histories,
                group_verdicts_by_entity(rejected),
                kept_counts(self.gather_frame(), rejected_ids),
                [summary for partition in partitions for summary in partition],
            )
        else:
            stats = self._engine.execute(plan)
        report.rejected = self._engine.rejected_verdicts()
        report.n_rejected_histories = len(report.rejected)
        report.n_opinions_kept = self._engine.n_opinions_kept
        emit_maintenance_telemetry(
            self.telemetry,
            report,
            stats,
            now,
            mode="incremental" if self.incremental else "full",
        )
        for shard in self.shards:
            self.telemetry.set_gauge(
                "rsp.shard.histories",
                shard.store.n_histories,
                scope=DEPLOYMENT,
                shard=shard.index,
            )
        if now is not None:
            for shard in self.shards:
                self.telemetry.span(
                    "shard.maintenance", now, now, scope=DEPLOYMENT, shard=shard.index
                )
        return report

    # -------------------------------------------------------- resharding
    #
    # Live topology changes.  These two methods are pure state migration:
    # no journaling, no telemetry — :func:`repro.reshard.ops.perform`
    # wraps them with the WAL record (journal-before-migrate) and the
    # ``rsp.reshard.*`` DEPLOYMENT metrics, and recovery calls them
    # directly when replaying a reshard record.  Both run between intake
    # batches (single-threaded deployment loop), so the router swap at
    # the end is atomic as far as any caller can observe.

    def split_shard(self, index: int) -> dict[str, int]:
        """Split shard ``index``: extend its prefix, move only its keys.

        The new shard takes the next free slot (``n_shards``) and adopts
        exactly the state whose keys route to it under the post-split
        table: whole histories (records and folded stats ride along),
        opinion slots (their ``seq`` ordering moves with them), explicit
        reviews, seen nonces, and spent tokens.  Dirty-entity marks move
        with the state *only for entities already marked* — marking a
        clean entity would change the incremental engine's tracked set
        and break AGGREGATE-telemetry identity with a static deployment.
        Returns per-kind moved counts.
        """
        router = self.router.split(index)
        new_index = self.n_shards_live
        source = self.shards[index]
        dest = ShardState(new_index, self._key_seed)
        moved_entities: set[str] = set()
        moved = {"histories": 0, "opinions": 0, "reviews": 0, "nonces": 0, "tokens": 0}
        for history in source.store.all_histories():
            if router.shard_of(history.history_id) == new_index:
                dest.store.adopt(source.store.release(history.history_id))
                moved_entities.add(history.entity_id)
                moved["histories"] += 1
        for history_id in sorted(source.opinions):
            if router.shard_of(history_id) == new_index:
                dest.opinions[history_id] = source.opinions.pop(history_id)
                moved["opinions"] += 1
        for entity_id in sorted(source.reviews):
            if router.shard_of(entity_id) == new_index:
                dest.reviews[entity_id] = source.reviews.pop(entity_id)
                moved_entities.add(entity_id)
                moved["reviews"] += len(dest.reviews[entity_id])
        dest.dirty_entities.update(
            entity_id
            for entity_id in moved_entities
            if entity_id in source.dirty_entities
        )
        source_nonces = self._nonce_buckets[index]
        moved_nonces = {
            nonce
            for nonce in source_nonces
            if router.shard_of_bytes(nonce) == new_index
        }
        source_nonces -= moved_nonces
        self._nonce_buckets.append(moved_nonces)
        moved["nonces"] = len(moved_nonces)
        source_tokens = self._redeemer._spent[index]
        moved_tokens = {
            token_id
            for token_id in source_tokens
            if router.shard_of_bytes(token_id) == new_index
        }
        source_tokens -= moved_tokens
        self._redeemer._spent.append(moved_tokens)
        moved["tokens"] = len(moved_tokens)
        self.shards.append(dest)
        self._finish_reshard(source, dest, router)
        return moved

    def merge_shards(self, a: int, b: int) -> dict[str, int]:
        """Merge shard ``b`` into shard ``a``; shards above ``b`` renumber.

        All of ``b``'s state lands on ``a`` through the commutative merge
        algebra: routing keeps the key spaces disjoint, so histories
        adopt into fresh slots, opinion slots and review lists transplant
        whole (review order within an entity is preserved — ``b`` owned
        the only list), nonce/token buckets union, and dirty marks union.
        Returns per-kind moved counts.
        """
        router = self.router.merge(a, b)
        source, dest = self.shards[b], self.shards[a]
        moved = {
            "histories": source.store.n_histories,
            "opinions": len(source.opinions),
            "reviews": sum(len(reviews) for reviews in source.reviews.values()),
            "nonces": len(self._nonce_buckets[b]),
            "tokens": len(self._redeemer._spent[b]),
        }
        for history in source.store.all_histories():
            dest.store.adopt(history)
        dest.opinions.update(source.opinions)
        for entity_id in sorted(source.reviews):
            dest.reviews.setdefault(entity_id, []).extend(source.reviews[entity_id])
        dest.dirty_entities |= source.dirty_entities
        self._nonce_buckets[a] |= self._nonce_buckets[b]
        del self._nonce_buckets[b]
        self._redeemer._spent[a] |= self._redeemer._spent[b]
        del self._redeemer._spent[b]
        del self.shards[b]
        for shard in self.shards[b:]:
            shard.renumber(shard.index - 1, self._key_seed)
        self._finish_reshard(source, dest, router)
        return moved

    def _finish_reshard(
        self, source: ShardState, dest: ShardState, router: ShardRouter
    ) -> None:
        """Swap the routing table in and invalidate every cached view."""
        source.store_version += 1
        source.version += 1
        dest.store_version += 1
        dest.version += 1
        self.router = router
        self._redeemer._router = router
        self._gather = None
        self._gather_versions = None
        if self.journal is not None:
            self.journal.remap_lanes(router.n_shards, router.shard_of)

    @property
    def n_shards_live(self) -> int:
        """The current shard count (changes across split/merge)."""
        return len(self.shards)

    # -------------------------------------------------------------- query

    def summary(self, entity_id: str) -> EntityOpinionSummary | None:
        return self._summaries.get(entity_id)

    def all_summaries(self) -> dict[str, EntityOpinionSummary]:
        """Every entity summary from the latest maintenance cycle.

        Canonical (entity-id) order, like the monolith's: the engine's
        cache is insertion-ordered by recompute history — and after an
        :meth:`~repro.service.incremental.MaintenanceEngine.adopt_full`
        it reflects the kernel's partition order, which differs from the
        monolith for the same content.  Sorting keeps the two facades'
        read surfaces indistinguishable even to order-sensitive readers.
        """
        return {
            entity_id: self._summaries[entity_id]
            for entity_id in sorted(self._summaries)
        }

    def reviews_for(self, entity_id: str) -> list[ExplicitReview]:
        shard = self.shards[self.router.shard_of(entity_id)]
        return list(shard.reviews.get(entity_id, []))

    def search(self, query: Query, compare_top: int = 3) -> SearchResponse:
        """Answer a query with ranked results plus comparative visualizations
        of the top candidates — same semantics as the monolithic server."""
        response = self._discovery.search(query, self._summaries)
        visualization: ComparativeVisualization | None = None
        top = [r.entity.entity_id for r in response.results[:compare_top]]
        if top:
            visualization = compare_entities(
                {
                    entity_id: self._accepted_histories.get(entity_id, [])
                    for entity_id in top
                }
            )
        return SearchResponse(
            query=response.query, results=response.results, visualization=visualization
        )

    # ----------------------------------------------------------- counters

    @property
    def n_records(self) -> int:
        return sum(shard.store.n_records for shard in self.shards)

    @property
    def n_histories(self) -> int:
        return sum(shard.store.n_histories for shard in self.shards)

    @property
    def n_opinions(self) -> int:
        return sum(len(shard.opinions) for shard in self.shards)

    @property
    def n_explicit_reviews(self) -> int:
        return sum(
            len(reviews)
            for shard in self.shards
            for reviews in shard.reviews.values()
        )

    @property
    def n_unique_nonces(self) -> int:
        """Distinct envelope nonces accepted — duplicates never inflate this."""
        return sum(len(bucket) for bucket in self._nonce_buckets)
