"""The sharded RSP service: N store partitions behind one intake facade.

:class:`ShardedRSPServer` exposes the same surface as the monolithic
:class:`~repro.service.server.RSPServer` — intake, maintenance, search,
counters, ``fault_hook`` — but keys every piece of durable state to one
of N shards:

* interaction histories and inferred opinions route by their unlinkable
  ``hash(Ru, e)`` record identifier (so a record, its re-uploads, and its
  opinion all live together);
* explicit reviews and entity summaries route by entity identifier;
* the seen-nonce and spent-token tables are partitioned by their own key
  bytes, which keeps duplicate suppression and double-spend rejection
  *globally* exact: identical nonces (or token ids) always meet in the
  same bucket, whatever record they arrive with.

Every behaviour here is contractually bit-identical to the monolithic
server: same accepted/rejected/duplicate classification for every intake
sequence, same maintenance reports, verdicts, and summaries for every
shard and worker count.  ``tests/scale`` holds the proof obligations.
"""

from __future__ import annotations

from repro.core.aggregation import EntityOpinionSummary, OpinionUpload
from repro.core.discovery import DiscoveryService, Query, SearchResponse
from repro.core.protocol import Envelope
from repro.core.visualization import ComparativeVisualization, compare_entities
from repro.fraud.attestation import AttestationQuote, AttestationVerifier
from repro.fraud.detector import DetectorConfig
from repro.fraud.profiles import profiles_from_pools
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionHistory, InteractionUpload
from repro.privacy.tokens import TokenIssuer, UploadToken
from repro.scale import parallel
from repro.scale.kernel import GatherFrame, build_gather
from repro.scale.merge import merge_pools
from repro.scale.router import ShardRouter
from repro.scale.shard import ShardState
from repro.service.server import ExplicitReview, MaintenanceReport
from repro.telemetry import DEPLOYMENT, NULL, Telemetry
from repro.telemetry.catalog import (
    INGEST_LAG_BUCKETS,
    INTAKE_BATCH_BUCKETS,
    SHARD_BATCH_BUCKETS,
)
from repro.world.entities import Entity


class ShardedTokenRedeemer:
    """Double-spend protection with the spent set partitioned by token id.

    Buckets are chosen by the token's own identifier bytes, so the two
    copies of a replayed token always contend in the same bucket — the
    partition is invisible to the double-spend semantics.
    """

    def __init__(self, public_key, router: ShardRouter) -> None:
        self._public_key = public_key
        self._router = router
        self._spent: list[set[int]] = [set() for _ in range(router.n_shards)]

    def redeem(self, token: UploadToken) -> bool:
        bucket = self._spent[self._router.shard_of_bytes(token.token_id)]
        if token.token_id in bucket:
            return False
        if not self._public_key.verify(token.token_id, token.signature):
            return False
        bucket.add(token.token_id)
        return True

    @property
    def n_redeemed(self) -> int:
        return sum(len(bucket) for bucket in self._spent)


class ShardedRSPServer:
    """The re-architected service, partitioned for horizontal scale."""

    def __init__(
        self,
        catalog: list[Entity],
        quota_per_day: int = 48,
        key_seed: int = 0,
        key_bits: int = 512,
        require_tokens: bool = True,
        detector_config: DetectorConfig | None = None,
        attestation: AttestationVerifier | None = None,
        n_shards: int = 8,
        workers: int = 0,
    ) -> None:
        if not catalog:
            raise ValueError("catalog must be non-empty")
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = serial)")
        self.catalog = {entity.entity_id: entity for entity in catalog}
        self.entity_kinds = {e.entity_id: e.kind.label for e in catalog}
        self.issuer = TokenIssuer(
            quota_per_day=quota_per_day, key_seed=key_seed, key_bits=key_bits
        )
        self.require_tokens = require_tokens
        self.attestation = attestation
        self.rejected_attestations = 0
        self.router = ShardRouter(n_shards)
        #: Worker processes for maintenance (0 = in-process serial).
        self.workers = workers
        self.shards = [ShardState(index, key_seed) for index in range(n_shards)]
        self._redeemer = ShardedTokenRedeemer(self.issuer.public_key, self.router)
        self._nonce_buckets: list[set[bytes]] = [set() for _ in range(n_shards)]
        self._discovery = DiscoveryService(catalog)
        self._detector_config = detector_config
        self._summaries: dict[str, EntityOpinionSummary] = {}
        self._accepted_histories: dict[str, list[InteractionHistory]] = {}
        self._gather: GatherFrame | None = None
        self._gather_versions: tuple[int, ...] | None = None
        self.rejected_envelopes = 0
        self.duplicates_suppressed = 0
        self.accepted_envelopes = 0
        self.dropped_by_outage = 0
        #: Times the worker pool died and maintenance re-ran serially.
        self.pool_fallbacks = 0
        #: Optional harness hook with ``server_down(now) -> bool``.
        self.fault_hook = None
        #: Aggregate metrics here are emitted with the *same* names and
        #: values as the monolith's (integer arithmetic makes them
        #: grouping-order independent); per-shard detail is emitted under
        #: DEPLOYMENT scope and excluded from the invariant digest.
        self.telemetry: Telemetry = NULL

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Install a shared telemetry sink on the facade and its issuer."""
        self.telemetry = telemetry
        self.issuer.telemetry = telemetry

    # ------------------------------------------------------------- intake

    def issue_tokens(
        self,
        # Issuance-side identity only; the blind signature unlinks the
        # redeemed token from this device (Section 4.2).
        device_id: str,  # repro: allow[priv-server-identity]
        blinded_values: list[int],
        now: float,
        quote: AttestationQuote | None = None,
    ) -> list[int]:
        """Blind-sign upload tokens for an attested device.

        Issuance is a single-endpoint concern (quota windows are per
        device), so it is not sharded; only redemption state is.
        """
        if self.attestation is not None:
            if quote is None or not self.attestation.verify(quote):
                self.rejected_attestations += 1
                raise PermissionError(
                    f"device {device_id} failed attestation; no tokens issued"
                )
        return self.issuer.issue(device_id, blinded_values, now=now)

    def post_review(
        self,
        # Explicit reviews are the attributed legacy path (Section 2
        # baseline); they never mix with the anonymous hash(Ru, e) stores.
        user_id: str,  # repro: allow[priv-server-identity]
        entity_id: str,
        rating: int,
        time: float,
    ) -> None:
        """Accept an explicit, attributed review (the legacy path)."""
        if entity_id not in self.catalog:
            raise KeyError(f"unknown entity {entity_id!r}")
        shard = self.shards[self.router.shard_of(entity_id)]
        shard.reviews.setdefault(entity_id, []).append(
            ExplicitReview(
                user_id=user_id, entity_id=entity_id, rating=rating, time=time
            )
        )
        self.telemetry.inc("rsp.reviews.posted")

    def receive(self, delivery: Delivery[Envelope], now: float | None = None) -> bool:
        """Process one anonymous envelope off the network.

        Same check order, classification nuances, transactional accept
        semantics, and ``now`` override as :meth:`RSPServer.receive` —
        only the tables are partitioned.
        """
        return self._receive_one(delivery, now=now)

    def receive_all(
        self, deliveries: list[Delivery[Envelope]], now: float | None = None
    ) -> int:
        return self.receive_batch(deliveries, now=now)

    def receive_batch(
        self, deliveries: list[Delivery[Envelope]], now: float | None = None
    ) -> int:
        """Batched intake: group envelopes per shard, then process.

        Grouping amortizes per-shard dispatch and keeps each shard's
        writes contiguous.  Relative order *within* a shard follows the
        delivery order, and all state an envelope touches (its history,
        its opinion slot, its nonce bucket, its token bucket) is keyed by
        values the envelope itself carries — so regrouping across shards
        cannot change any accept/reject/duplicate outcome.
        """
        self.telemetry.observe(
            "rsp.intake.batch", len(deliveries), buckets=INTAKE_BATCH_BUCKETS
        )
        groups: list[list[Delivery[Envelope]]] = [
            [] for _ in range(self.router.n_shards)
        ]
        for delivery in deliveries:
            groups[self._route(delivery)].append(delivery)
        accepted = 0
        for shard_index, group in enumerate(groups):
            if group:
                self.telemetry.observe(
                    "rsp.shard.batch",
                    len(group),
                    buckets=SHARD_BATCH_BUCKETS,
                    scope=DEPLOYMENT,
                    shard=shard_index,
                )
            for delivery in group:
                if self._receive_one(delivery, now=now):
                    accepted += 1
        return accepted

    def _route(self, delivery: Delivery[Envelope]) -> int:
        record = delivery.payload.record
        key = getattr(record, "history_id", None)
        if isinstance(key, str):
            return self.router.shard_of(key)
        return 0

    def _receive_one(
        self, delivery: Delivery[Envelope], now: float | None = None
    ) -> bool:
        envelope = delivery.payload
        if self.fault_hook is not None and self.fault_hook.server_down(
            delivery.arrival_time if now is None else now
        ):
            self.dropped_by_outage += 1
            self.telemetry.inc("rsp.envelopes.outage_dropped")
            return False
        nonce = getattr(envelope, "nonce", None)
        nonce_bucket = (
            None
            if nonce is None
            else self._nonce_buckets[self.router.shard_of_bytes(nonce)]
        )
        if self.require_tokens:
            if envelope.token is None or not self._redeemer.redeem(envelope.token):
                if nonce_bucket is not None and nonce in nonce_bucket:
                    self.duplicates_suppressed += 1
                    self.telemetry.inc("rsp.envelopes.duplicate")
                else:
                    self.rejected_envelopes += 1
                    self.telemetry.inc("rsp.envelopes.rejected", reason="token")
                return False
        if nonce_bucket is not None and nonce in nonce_bucket:
            self.duplicates_suppressed += 1
            self.telemetry.inc("rsp.envelopes.duplicate")
            return False
        record = envelope.record
        record_kind = None
        try:
            if isinstance(record, InteractionUpload):
                if record.entity_id not in self.catalog:
                    self.rejected_envelopes += 1
                    self.telemetry.inc("rsp.envelopes.rejected", reason="unknown-entity")
                    return False
                shard = self.shards[self.router.shard_of(record.history_id)]
                stored = shard.store.append(
                    record, arrival_time=delivery.arrival_time
                )
                if stored:
                    shard.version += 1
                record_kind = "interaction"
            elif isinstance(record, OpinionUpload):
                if record.entity_id not in self.catalog:
                    self.rejected_envelopes += 1
                    self.telemetry.inc("rsp.envelopes.rejected", reason="unknown-entity")
                    return False
                shard = self.shards[self.router.shard_of(record.history_id)]
                shard.opinions[record.history_id] = record
                shard.version += 1
                stored = True
                record_kind = "opinion"
            else:
                self.rejected_envelopes += 1
                self.telemetry.inc("rsp.envelopes.rejected", reason="malformed")
                return False
        except Exception:
            # Transactional accept: nothing durably written, so neither
            # the counter nor the nonce may burn (mirrors RSPServer).
            self.rejected_envelopes += 1
            self.telemetry.inc("rsp.envelopes.rejected", reason="store-error")
            return False
        if stored:
            self.accepted_envelopes += 1
            if nonce_bucket is not None:
                nonce_bucket.add(nonce)
            self.telemetry.inc("rsp.envelopes.accepted", record=record_kind)
            if record_kind == "interaction":
                self.telemetry.observe(
                    "rsp.ingest_lag",
                    delivery.arrival_time - record.event_time,
                    buckets=INGEST_LAG_BUCKETS,
                )
        else:
            self.rejected_envelopes += 1
            self.telemetry.inc("rsp.envelopes.rejected", reason="unstored")
        return stored

    # -------------------------------------------------------- maintenance

    def gather_frame(self) -> GatherFrame:
        """The cross-shard summarization view, cached by store version."""
        versions = tuple(shard.version for shard in self.shards)
        if self._gather is None or self._gather_versions != versions:
            frames = [shard.frame(self.entity_kinds) for shard in self.shards]
            self._gather = build_gather(
                frames,
                [shard.opinions for shard in self.shards],
                self.router.shard_of,
                self.catalog,
            )
            self._gather_versions = versions
        return self._gather

    def run_maintenance(self, now: float | None = None) -> MaintenanceReport:
        """Shard-parallel maintenance with a deterministic global merge.

        Three phases, each fanned across the shards (serially when
        ``workers == 0``): **A** pools per-kind feature values per shard
        and merges them into the global typical profiles; **B** judges
        every shard's histories against those global profiles; **C**
        rebuilds entity summaries per entity partition.  All merges are
        order-independent (sums, sorted concatenations), so the report is
        bit-identical to the monolithic cycle for any shard/worker count.

        Telemetry is recorded in the parent process only — increments in
        forked pool workers would die with the worker, and parent-side
        recording is also what keeps the aggregate export invariant
        across worker counts.  ``now`` timestamps the cycle's spans.
        """
        report = MaintenanceReport(
            n_histories=self.n_histories,
            n_opinions_received=self.n_opinions,
        )
        shard_indices = range(self.router.n_shards)
        # Warm the per-shard frames and the cross-shard gather view in the
        # parent, *before* the pool forks: workers then inherit read-only
        # columnar caches and never walk the store object graphs, which
        # keeps fork-time copy-on-write from duplicating the stores.
        for shard in self.shards:
            shard.frame(self.entity_kinds)
        self.gather_frame()
        with parallel.MaintenancePool(self, self.workers) as pool:
            pools = pool.map(
                parallel.collect_shard_pools, [(index,) for index in shard_indices]
            )
            profiles = profiles_from_pools(merge_pools(pools))
            judgements = pool.map(
                parallel.judge_shard,
                [(index, profiles, self._detector_config) for index in shard_indices],
            )
            rejected = sorted(
                (verdict for result in judgements for verdict in result.verdicts),
                key=lambda verdict: verdict.history_id,
            )
            rejected_ids = frozenset(verdict.history_id for verdict in rejected)
            report.n_rejected_histories = len(rejected)
            report.rejected = rejected
            report.n_opinions_kept = sum(
                result.n_kept_opinions for result in judgements
            )
            partitions = pool.map(
                parallel.summarize_partition,
                [(index, rejected_ids) for index in shard_indices],
            )
        self._summaries = {
            summary.entity_id: summary
            for partition in partitions
            for summary in partition
        }
        accepted_histories: dict[str, list[InteractionHistory]] = {}
        for shard in self.shards:
            for history in shard.store.all_histories():
                if history.history_id in rejected_ids:
                    continue
                accepted_histories.setdefault(history.entity_id, []).append(history)
        for histories in accepted_histories.values():
            histories.sort(key=lambda history: history.history_id)
        self._accepted_histories = accepted_histories
        self.telemetry.inc("rsp.maintenance.cycles")
        self.telemetry.set_gauge("rsp.maintenance.histories", report.n_histories)
        self.telemetry.set_gauge(
            "rsp.maintenance.rejected_histories", report.n_rejected_histories
        )
        self.telemetry.set_gauge(
            "rsp.maintenance.opinions_kept", report.n_opinions_kept
        )
        for shard in self.shards:
            self.telemetry.set_gauge(
                "rsp.shard.histories",
                shard.store.n_histories,
                scope=DEPLOYMENT,
                shard=shard.index,
            )
        if now is not None:
            self.telemetry.span("maintenance", now, now)
            for shard in self.shards:
                self.telemetry.span(
                    "shard.maintenance", now, now, scope=DEPLOYMENT, shard=shard.index
                )
        return report

    # -------------------------------------------------------------- query

    def summary(self, entity_id: str) -> EntityOpinionSummary | None:
        return self._summaries.get(entity_id)

    def all_summaries(self) -> dict[str, EntityOpinionSummary]:
        """Every entity summary from the latest maintenance cycle."""
        return dict(self._summaries)

    def reviews_for(self, entity_id: str) -> list[ExplicitReview]:
        shard = self.shards[self.router.shard_of(entity_id)]
        return list(shard.reviews.get(entity_id, []))

    def search(self, query: Query, compare_top: int = 3) -> SearchResponse:
        """Answer a query with ranked results plus comparative visualizations
        of the top candidates — same semantics as the monolithic server."""
        response = self._discovery.search(query, self._summaries)
        visualization: ComparativeVisualization | None = None
        top = [r.entity.entity_id for r in response.results[:compare_top]]
        if top:
            visualization = compare_entities(
                {
                    entity_id: self._accepted_histories.get(entity_id, [])
                    for entity_id in top
                }
            )
        return SearchResponse(
            query=response.query, results=response.results, visualization=visualization
        )

    # ----------------------------------------------------------- counters

    @property
    def n_records(self) -> int:
        return sum(shard.store.n_records for shard in self.shards)

    @property
    def n_histories(self) -> int:
        return sum(shard.store.n_histories for shard in self.shards)

    @property
    def n_opinions(self) -> int:
        return sum(len(shard.opinions) for shard in self.shards)

    @property
    def n_explicit_reviews(self) -> int:
        return sum(
            len(reviews)
            for shard in self.shards
            for reviews in shard.reviews.values()
        )

    @property
    def n_unique_nonces(self) -> int:
        """Distinct envelope nonces accepted — duplicates never inflate this."""
        return sum(len(bucket) for bucket in self._nonce_buckets)
