"""Order-independent merges of per-shard maintenance state.

Everything a shard reports upward must merge into the global result in a
way that does not depend on which shard reported first: counter merges
are integer sums (associative, commutative, exact), pool merges are
multiset unions consumed only by sort-based reductions (percentiles),
and anything order-sensitive downstream (float means over opinion lists)
is re-canonicalized by sorting on ``history_id`` before the arithmetic
runs.  ``tests/scale/test_merge_properties.py`` checks associativity and
commutativity with hand-rolled generators.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fraud.profiles import ProfilePools
from repro.privacy.history_store import FoldedStats, InteractionHistory


def merge_folded(a: FoldedStats | None, b: FoldedStats | None) -> FoldedStats | None:
    """Merge two folded-tail summaries (min/max/sum semantics).

    Sums of non-negative floats are associative only up to rounding, but
    the folds a shard ever merges were accumulated record-by-record in
    arrival order on a single shard — cross-shard merges never split one
    history's fold, because a history lives entirely on its key's shard.
    This helper exists for re-sharding migrations (and the property
    suite, which exercises it with exactly-representable values).
    """
    if a is None or a.n == 0:
        return b
    if b is None or b.n == 0:
        return a
    return FoldedStats(
        n=a.n + b.n,
        earliest_event_time=min(a.earliest_event_time, b.earliest_event_time),
        latest_event_time=max(a.latest_event_time, b.latest_event_time),
        duration_sum=a.duration_sum + b.duration_sum,
        travel_sum=a.travel_sum + b.travel_sum,
    )


def merge_histories(a: InteractionHistory, b: InteractionHistory) -> InteractionHistory:
    """Merge two partial views of the *same* history into one.

    Records are re-ordered canonically (event time, then duration, then
    arrival time) so the merge is commutative: ``merge(a, b)`` equals
    ``merge(b, a)`` as a dataclass value.
    """
    if a.history_id != b.history_id:
        raise ValueError("cannot merge histories with different identifiers")
    if a.entity_id != b.entity_id:
        raise ValueError("one history identifier is bound to one entity")
    records = sorted(
        list(a.records) + list(b.records),
        key=lambda r: (r.upload.event_time, r.upload.duration, r.arrival_time),
    )
    return InteractionHistory(
        history_id=a.history_id,
        entity_id=a.entity_id,
        records=records,
        folded=merge_folded(a.folded, b.folded),
    )


def merge_counts(a: dict[str, int], b: dict[str, int]) -> dict[str, int]:
    """Key-wise integer sum, emitted in sorted-key order."""
    merged: dict[str, int] = {}
    for key in sorted(set(a) | set(b)):
        merged[key] = a.get(key, 0) + b.get(key, 0)
    return merged


def merge_pools(pools_list: Sequence[ProfilePools]) -> ProfilePools:
    """Concatenate per-shard feature pools into one global pool set.

    The concatenation order follows ``pools_list`` (shard index order in
    the maintenance path), but every consumer reduces the pools with
    sort-based percentiles, so the *profiles* built from the merge are
    invariant under any permutation of the inputs — the property suite
    asserts exactly that.
    """
    merged = ProfilePools()
    buckets: dict[str, dict[str, list[np.ndarray]]] = {
        "gaps": {},
        "durations": {},
        "counts": {},
    }
    for pools in pools_list:
        for field_name, per_kind in (
            ("gaps", pools.gaps),
            ("durations", pools.durations),
            ("counts", pools.counts),
        ):
            for kind, values in per_kind.items():
                array = np.asarray(values, dtype=np.float64)
                if array.size:
                    buckets[field_name].setdefault(kind, []).append(array)
        merged.n_histories = merge_counts(merged.n_histories, pools.n_histories)
    for field_name, per_kind in buckets.items():
        target: dict[str, np.ndarray] = getattr(merged, field_name)
        for kind, arrays in per_kind.items():
            target[kind] = np.concatenate(arrays)
    return merged


def group_verdicts_by_entity(verdicts: Sequence) -> dict[str, list]:
    """Regroup globally sorted suspicious verdicts by their entity.

    The input must already be in canonical (history-id) order — the
    sharded cycle sorts its merged verdict list before reporting — so
    each entity's group comes out history-id-sorted too, matching the
    order the incremental engine's per-entity judge loop produces.
    """
    grouped: dict[str, list] = {}
    for verdict in verdicts:
        grouped.setdefault(verdict.entity_id, []).append(verdict)
    return grouped
