"""Stable shard routing on the unlinkable record key.

A record is routed by a prefix of the SHA-256 of its ``hash(Ru, e)``
record identifier — the very identifier the store already keys on.  The
router therefore learns nothing an unsharded server does not already
know: the shard index is a public function of an identifier that is
itself unlinkable (docs/SCALING.md walks through why this cannot weaken
unlinkability).

Routing must be *stable*: the same key maps to the same shard in every
process, on every run, forever — a record and all of its retransmissions
land together, so per-shard nonce dedup remains globally correct.  That
is why the route goes through :func:`repro.util.hashing.stable_u64`
(process-salt-free SHA-256) and never through builtin ``hash``.
"""

from __future__ import annotations

from repro.util.hashing import stable_u64

#: Domain-separation label so shard routing never collides with any other
#: consumer of the stable-hash namespace.
_ROUTE_LABEL = "scale/shard-route"


class ShardRouter:
    """Maps keys (record ids, entity ids, nonces, token ids) to shards."""

    __slots__ = ("n_shards",)

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = int(n_shards)

    def shard_of(self, key: str) -> int:
        """Shard index for a string key (record id or entity id).

        Record identifiers are already 64-hex-digit SHA-256 outputs —
        uniformly distributed by construction — so their leading 64 bits
        route directly, without hashing a hash.  Any other string key
        (entity ids, arbitrary test keys) takes the ``stable_u64`` path.
        Both branches are pure functions of the key, so routing stays
        stable across processes and runs.
        """
        if len(key) == 64:
            try:
                return int(key[:16], 16) % self.n_shards
            except ValueError:
                pass
        return stable_u64(_ROUTE_LABEL, key) % self.n_shards

    def shard_of_bytes(self, key: bytes) -> int:
        """Shard index for a bytes key (envelope nonce or token id).

        Nonces and token ids are uniformly random byte strings, so their
        leading 8 bytes route directly; short keys fall back to the
        stable hash.
        """
        if len(key) >= 8:
            return int.from_bytes(key[:8], "big") % self.n_shards
        return stable_u64(_ROUTE_LABEL, key) % self.n_shards

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter(n_shards={self.n_shards})"
