"""Stable shard routing on the unlinkable record key.

A record is routed by a prefix of the SHA-256 of its ``hash(Ru, e)``
record identifier — the very identifier the store already keys on.  The
router therefore learns nothing an unsharded server does not already
know: the shard index is a public function of an identifier that is
itself unlinkable (docs/SCALING.md walks through why this cannot weaken
unlinkability).

Routing must be *stable*: the same key maps to the same shard in every
process, on every run, forever — a record and all of its retransmissions
land together, so per-shard nonce dedup remains globally correct.  That
is why the route goes through :func:`repro.util.hashing.stable_u64`
(process-salt-free SHA-256) and never through builtin ``hash``.

Routing must also be *elastic*: the shard count changes while the
deployment is live.  Modulo routing (``u64 % n_shards``) remaps nearly
every key when ``n`` changes, so this router assigns shards by
**bit-prefix of the 64-bit key** instead.  Each shard owns a set of
``(value, depth)`` prefixes — the keys whose top ``depth`` bits equal
``value`` — and together the prefixes of all shards tile the key space
exactly once.  Splitting shard *i* extends one of its prefixes by one
bit: shard *i* keeps the ``0`` extension, the new shard takes the ``1``
extension, and **only keys inside that prefix move**.  Merging two
shards unions their prefix sets, so any pair may merge (multi-prefix
shards keep merge closed under arbitrary schedules).

The *canonical* table for ``n`` shards is defined recursively —
``canonical(1)`` is one shard owning the whole space, and
``canonical(n+1)`` is ``canonical(n)`` with its shallowest (then
lowest-valued) prefix split.  The recursion makes a deployment grown by
splits byte-identical in routing to one started at the final size, which
is what the resharding differential tests pin.
"""

from __future__ import annotations

import re
from bisect import bisect_right

from repro.util.hashing import stable_u64

#: Domain-separation label so shard routing never collides with any other
#: consumer of the stable-hash namespace.
_ROUTE_LABEL = "scale/shard-route"

#: Record identifiers are exactly 64 *lowercase* hex digits.  ``int(x, 16)``
#: alone is too permissive — it accepts ``"+fff…"``, ``" fff…"`` and
#: uppercase — and those near-misses must take the ``stable_u64`` path,
#: not the record-id fast path (see tests/scale/test_router_properties.py).
_RECORD_ID = re.compile(r"[0-9a-f]{64}\Z")

#: Prefixes: per shard, a tuple of ``(value, depth)`` pairs.
Prefix = tuple[int, int]
RouterSpec = tuple[tuple[Prefix, ...], ...]

#: Deepest splittable prefix.  64-bit keys stop being distinguishable at
#: depth 64; stopping well short keeps the arithmetic obviously safe.
MAX_DEPTH = 62

_SPACE = 1 << 64


def _canonical_spec(n_shards: int) -> RouterSpec:
    """The canonical prefix table for ``n_shards``, built by repeated splits.

    Defined recursively rather than in closed form so that
    ``canonical(n).split(...) == canonical(n + 1)`` holds *exactly* — a
    closed-form top-bits table disagrees with the split-grown one at
    power-of-two boundaries.
    """
    shards: list[list[Prefix]] = [[(0, 0)]]
    for _ in range(n_shards - 1):
        index = _shallowest_shard(shards)
        value, depth = min(shards[index], key=_prefix_order)
        remaining = [p for p in shards[index] if p != (value, depth)]
        remaining.append((value << 1, depth + 1))
        remaining.sort(key=_prefix_order)
        shards[index] = remaining
        shards.append([((value << 1) | 1, depth + 1)])
    return tuple(tuple(prefixes) for prefixes in shards)


def _prefix_order(prefix: Prefix) -> tuple[int, int]:
    value, depth = prefix
    return (depth, value)


def _shallowest_shard(shards: list[list[Prefix]]) -> int:
    """Index of the shard holding the (min depth, then min value) prefix."""
    best_index = 0
    best = min(shards[0], key=_prefix_order)
    for index in range(1, len(shards)):
        candidate = min(shards[index], key=_prefix_order)
        if _prefix_order(candidate) < _prefix_order(best):
            best, best_index = candidate, index
    return best_index


def _coalesce(prefixes: list[Prefix]) -> tuple[Prefix, ...]:
    """Join buddy pairs ``(v, d)``/``(v^1, d)`` to fixpoint.

    Keeps merged shards' prefix sets minimal, so split-then-merge is the
    identity on the routing table (not merely on the key → shard map).
    """
    current = set(prefixes)
    changed = True
    while changed:
        changed = False
        for value, depth in sorted(current, key=_prefix_order, reverse=True):
            if depth == 0:
                continue
            buddy = (value ^ 1, depth)
            if (value, depth) in current and buddy in current:
                current.discard((value, depth))
                current.discard(buddy)
                current.add((value >> 1, depth - 1))
                changed = True
    return tuple(sorted(current, key=_prefix_order))


class ShardRouter:
    """Maps keys (record ids, entity ids, nonces, token ids) to shards.

    ``ShardRouter(n)`` builds the canonical table for ``n`` shards;
    :meth:`from_spec` rebuilds an arbitrary (validated) table, which is
    how recovery reconstructs a post-reshard topology.  Routers are
    immutable — :meth:`split` and :meth:`merge` return new routers, and
    the server swaps its reference atomically between batches.
    """

    __slots__ = ("n_shards", "_prefixes", "_starts", "_owners")

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self._install(_canonical_spec(int(n_shards)))

    @classmethod
    def from_spec(cls, spec: RouterSpec) -> "ShardRouter":
        """A router over an explicit prefix table (validated for tiling)."""
        router = cls.__new__(cls)
        router._install(
            tuple(
                tuple((int(v), int(d)) for v, d in prefixes)
                for prefixes in spec
            )
        )
        return router

    def _install(self, spec: RouterSpec) -> None:
        if not spec:
            raise ValueError("need at least one shard")
        intervals: list[tuple[int, int, int]] = []
        for owner, prefixes in enumerate(spec):
            if not prefixes:
                raise ValueError(f"shard {owner} owns no prefixes")
            for value, depth in prefixes:
                if not 0 <= depth <= MAX_DEPTH:
                    raise ValueError(f"prefix depth {depth} out of range")
                if not 0 <= value < (1 << depth) or (depth == 0 and value != 0):
                    raise ValueError(f"prefix value {value} too wide for depth {depth}")
                start = value << (64 - depth)
                intervals.append((start, start + (_SPACE >> depth), owner))
        intervals.sort()
        cursor = 0
        for start, end, _ in intervals:
            if start != cursor:
                raise ValueError("prefixes do not tile the key space")
            cursor = end
        if cursor != _SPACE:
            raise ValueError("prefixes do not cover the key space")
        self._prefixes = spec
        self.n_shards = len(spec)
        self._starts = [start for start, _, _ in intervals]
        self._owners = [owner for _, _, owner in intervals]

    # ------------------------------------------------------------ routing

    def shard_of(self, key: str) -> int:
        """Shard index for a string key (record id or entity id).

        Record identifiers are already 64-hex-digit SHA-256 outputs —
        uniformly distributed by construction — so their leading 64 bits
        route directly, without hashing a hash.  Any other string key
        (entity ids, arbitrary test keys) takes the ``stable_u64`` path.
        Both branches are pure functions of the key, so routing stays
        stable across processes and runs.
        """
        if len(key) == 64 and _RECORD_ID.match(key) is not None:
            return self.shard_of_u64(int(key[:16], 16))
        return self.shard_of_u64(stable_u64(_ROUTE_LABEL, key))

    def shard_of_bytes(self, key: bytes) -> int:
        """Shard index for a bytes key (envelope nonce or token id).

        Nonces and token ids are uniformly random byte strings, so their
        leading 8 bytes route directly; short keys fall back to the
        stable hash.
        """
        if len(key) >= 8:
            return self.shard_of_u64(int.from_bytes(key[:8], "big"))
        return self.shard_of_u64(stable_u64(_ROUTE_LABEL, key))

    def shard_of_u64(self, key: int) -> int:
        """Shard owning the prefix that contains the 64-bit ``key``."""
        return self._owners[bisect_right(self._starts, key & (_SPACE - 1)) - 1]

    # --------------------------------------------------------- topology

    def spec(self) -> RouterSpec:
        """The full prefix table, per shard — hashable and JSON-friendly."""
        return self._prefixes

    def prefixes_of(self, index: int) -> tuple[Prefix, ...]:
        return self._prefixes[index]

    def split(self, index: int) -> "ShardRouter":
        """Extend shard ``index``'s shallowest prefix by one bit.

        Shard ``index`` keeps the ``0`` extension; the appended shard
        ``n_shards`` owns the ``1`` extension.  Every key outside the
        split prefix keeps its assignment.
        """
        if not 0 <= index < self.n_shards:
            raise ValueError(f"no shard {index} to split")
        value, depth = min(self._prefixes[index], key=_prefix_order)
        if depth >= MAX_DEPTH:
            raise ValueError(f"shard {index} is at maximum prefix depth")
        kept = tuple(
            sorted(
                [p for p in self._prefixes[index] if p != (value, depth)]
                + [(value << 1, depth + 1)],
                key=_prefix_order,
            )
        )
        spec = list(self._prefixes)
        spec[index] = kept
        spec.append((((value << 1) | 1, depth + 1),))
        return ShardRouter.from_spec(tuple(spec))

    def merge(self, a: int, b: int) -> "ShardRouter":
        """Union shard ``b``'s prefixes into shard ``a`` and drop ``b``.

        Shards above ``b`` renumber down by one, matching the server's
        state migration.  Works for *any* pair — adjacency in the prefix
        tree is not required because shards may own several prefixes.
        """
        if a == b:
            raise ValueError("cannot merge a shard with itself")
        for index in (a, b):
            if not 0 <= index < self.n_shards:
                raise ValueError(f"no shard {index} to merge")
        if self.n_shards == 1:  # pragma: no cover - unreachable (a == b)
            raise ValueError("cannot merge the last shard")
        merged = _coalesce(list(self._prefixes[a]) + list(self._prefixes[b]))
        spec = [
            merged if index == a else prefixes
            for index, prefixes in enumerate(self._prefixes)
            if index != b
        ]
        return ShardRouter.from_spec(tuple(spec))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardRouter):
            return NotImplemented
        return self._prefixes == other._prefixes

    def __hash__(self) -> int:
        return hash(self._prefixes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter(n_shards={self.n_shards}, spec={self._prefixes!r})"
