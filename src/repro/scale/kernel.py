"""Columnar maintenance kernel: bit-identical, vectorized fraud analysis.

The monolithic :class:`~repro.fraud.detector.FraudDetector` walks the
store history-by-history, paying Python-level attribute access and many
small NumPy calls per history.  This kernel lays a shard's histories out
as a :class:`ShardFrame` — contiguous per-record arrays with per-history
segment offsets — and computes the same features with segment-wise array
reductions.

Equivalence with the scalar detector is a *bitwise* contract, argued
operation by operation:

* percentile pools (phase A) are multisets; the kernel pools exactly the
  same float values the scalar path pools, in a different order that
  ``np.percentile`` (sort-based) cannot observe;
* minima, maxima, comparisons, and integer counts are exact regardless
  of evaluation order;
* medians are taken as ``(sorted[lo] + sorted[hi]) / 2.0`` on per-history
  value-sorted segments — precisely what ``np.median`` computes;
* the one mean/std in the detector (the REGULARITY coefficient of
  variation) is evaluated per candidate history on a contiguous slice in
  the same element order as the scalar path, so NumPy's pairwise
  summation visits the same addition tree.

``tests/scale`` enforces the contract differentially; docs/SCALING.md
records it.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.aggregation import (
    EntityOpinionSummary,
    OpinionUpload,
    influence_weight,
    summarize_entity_from_parts,
)
from repro.fraud.detector import (
    DetectorConfig,
    FraudDetector,
    FraudFlag,
    HistoryVerdict,
)
from repro.fraud.profiles import ProfilePools, TypicalProfile
from repro.privacy.history_store import InteractionHistory
from repro.util.clock import DAY


@dataclass
class ShardFrame:
    """One shard's histories in columnar form.

    Record-level arrays are segmented per history via ``offsets`` (length
    ``n + 1``); gap-level arrays via ``gap_offsets``.  ``codes`` maps each
    history to an index into ``kind_labels`` (-1 for entities of unknown
    kind, which fraud profiling skips).
    """

    histories: list[InteractionHistory]
    hist_ids: list[str]
    entity_ids: list[str]
    kind_labels: list[str]
    codes: np.ndarray
    n_interactions: np.ndarray
    n_raw: np.ndarray
    offsets: np.ndarray
    #: Event times, per-history record (arrival) order — pairs with
    #: ``durations_raw`` to preserve each record's (time, duration)
    #: group-deflation signature.
    times_raw: np.ndarray
    #: Event times, per-history chronological order.
    times_sorted: np.ndarray
    #: Durations, per-history record (arrival) order — the pool order.
    durations_raw: np.ndarray
    #: Durations, per-history value order — for exact medians.
    durations_sorted: np.ndarray
    #: Consecutive-time gaps, compacted across histories.
    gaps: np.ndarray
    gap_offsets: np.ndarray

    @property
    def n_histories(self) -> int:
        return len(self.histories)


def build_frame(
    histories: list[InteractionHistory], entity_kinds: dict[str, str]
) -> ShardFrame:
    """Lay ``histories`` out as contiguous feature arrays."""
    n = len(histories)
    hist_ids = [h.history_id for h in histories]
    entity_ids = [h.entity_id for h in histories]
    kind_labels = sorted(
        {
            kind
            for kind in (entity_kinds.get(eid) for eid in set(entity_ids))
            if kind is not None
        }
    )
    label_code = {label: code for code, label in enumerate(kind_labels)}
    codes = np.fromiter(
        (label_code.get(entity_kinds.get(eid), -1) for eid in entity_ids),
        dtype=np.int64,
        count=n,
    )
    n_interactions = np.fromiter(
        (h.n_interactions for h in histories), dtype=np.int64, count=n
    )
    n_raw = np.fromiter((len(h.records) for h in histories), dtype=np.int64, count=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(n_raw, out=offsets[1:])
    total = int(offsets[-1])

    times = np.fromiter(
        (r.upload.event_time for h in histories for r in h.records),
        dtype=np.float64,
        count=total,
    )
    durations_raw = np.fromiter(
        (r.upload.duration for h in histories for r in h.records),
        dtype=np.float64,
        count=total,
    )
    segment = np.repeat(np.arange(n, dtype=np.int64), n_raw)
    # Primary key: segment (already grouped); secondary: the value. This
    # sorts each history's records without disturbing segment boundaries.
    times_sorted = times[np.lexsort((times, segment))]
    durations_sorted = durations_raw[np.lexsort((durations_raw, segment))]

    if total:
        diffs = times_sorted[1:] - times_sorted[:-1]
        within = segment[1:] == segment[:-1]
        gaps = diffs[within]
    else:
        gaps = np.empty(0, dtype=np.float64)
    gap_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.maximum(n_raw - 1, 0), out=gap_offsets[1:])

    return ShardFrame(
        histories=histories,
        hist_ids=hist_ids,
        entity_ids=entity_ids,
        kind_labels=kind_labels,
        codes=codes,
        n_interactions=n_interactions,
        n_raw=n_raw,
        offsets=offsets,
        times_raw=times,
        times_sorted=times_sorted,
        durations_raw=durations_raw,
        durations_sorted=durations_sorted,
        gaps=gaps,
        gap_offsets=gap_offsets,
    )


def collect_pools(frame: ShardFrame, min_history_length: int = 2) -> ProfilePools:
    """Phase A: pool per-kind feature values, vectorized.

    Pools the exact same float values as
    :func:`repro.fraud.profiles.collect_profile_pools` over the same
    histories — only the collection order differs, which the sort-based
    percentile reduction cannot observe.
    """
    pools = ProfilePools()
    if frame.n_histories == 0:
        return pools
    counts_f = frame.n_interactions.astype(np.float64)
    record_codes = np.repeat(frame.codes, frame.n_raw)
    gap_counts = np.diff(frame.gap_offsets)
    gap_codes = np.repeat(frame.codes, gap_counts)
    gap_eligible = np.repeat(frame.n_interactions >= min_history_length, gap_counts)
    for code, label in enumerate(frame.kind_labels):
        history_mask = frame.codes == code
        if not history_mask.any():
            continue
        pools.n_histories[label] = int(history_mask.sum())
        pools.counts[label] = counts_f[history_mask]
        pools.durations[label] = frame.durations_raw[record_codes == code]
        kind_gaps = frame.gaps[(gap_codes == code) & gap_eligible]
        if kind_gaps.size:
            pools.gaps[label] = kind_gaps
    return pools


@dataclass
class FrameJudgement:
    """Phase-B output for one shard: who is suspicious, and why."""

    #: Per-history suspicion mask, frame order.
    suspicious: np.ndarray
    #: Verdicts for the suspicious histories, frame order.
    verdicts: list[HistoryVerdict] = field(default_factory=list)


def judge_frame(
    frame: ShardFrame,
    profiles: dict[str, TypicalProfile],
    config: DetectorConfig | None = None,
) -> FrameJudgement:
    """Phase B: apply the fraud detector's exact flag logic columnarly."""
    config = config or DetectorConfig()
    n = frame.n_histories
    if n == 0:
        return FrameJudgement(suspicious=np.zeros(0, dtype=bool))

    counts_f = frame.n_interactions.astype(np.float64)
    judged = frame.n_interactions >= config.min_interactions_to_judge

    has_profile = np.zeros(n, dtype=bool)
    gaps_p01 = np.zeros(n, dtype=np.float64)
    durations_p01 = np.zeros(n, dtype=np.float64)
    counts_median = np.zeros(n, dtype=np.float64)
    counts_p99 = np.zeros(n, dtype=np.float64)
    rate_ceiling = np.zeros(n, dtype=np.float64)
    for code, label in enumerate(frame.kind_labels):
        profile = profiles.get(label)
        if profile is None:
            continue
        mask = frame.codes == code
        has_profile[mask] = True
        gaps_p01[mask] = profile.gaps.p01
        durations_p01[mask] = profile.durations.p01
        counts_median[mask] = profile.counts.median
        counts_p99[mask] = profile.counts.p99
        # Same scalar expression the detector evaluates per history.
        rate_ceiling[mask] = profile.counts.p99 / max(profile.gaps.median, DAY)
    judged &= has_profile

    # Histories with no raw records cannot be laid out (their time span is
    # undefined); route them through the scalar detector verbatim.  The
    # store's append path makes them unreachable, but the kernel must not
    # silently mis-judge them if that ever changes.
    degenerate = frame.n_raw == 0
    judged_vec = judged & ~degenerate

    suspicious = np.zeros(n, dtype=bool)
    verdict_at: dict[int, HistoryVerdict] = {}

    total = int(frame.offsets[-1])
    if total:
        starts = frame.offsets[:-1]
        last_index = np.clip(frame.offsets[1:] - 1, 0, total - 1)
        first = frame.times_sorted[np.clip(starts, 0, total - 1)]
        last = frame.times_sorted[last_index]
        span = np.maximum(last - first, DAY)
        rate = counts_f / span

        lo = np.clip(starts + (frame.n_raw - 1) // 2, 0, total - 1)
        hi = np.clip(starts + frame.n_raw // 2, 0, total - 1)
        median_duration = (
            frame.durations_sorted[lo] + frame.durations_sorted[hi]
        ) / 2.0

        gap_counts = np.diff(frame.gap_offsets)
        has_gaps = frame.n_raw >= 2
        positive = frame.gaps > 0
        min_positive = np.full(n, np.inf)
        positive_count = np.zeros(n, dtype=np.int64)
        nonempty = np.nonzero(gap_counts > 0)[0]
        if nonempty.size:
            # Empty gap segments collapse to equal consecutive offsets, so
            # reduceat over the non-empty starts spans each segment exactly.
            gap_starts = frame.gap_offsets[nonempty]
            min_positive[nonempty] = np.minimum.reduceat(
                np.where(positive, frame.gaps, np.inf), gap_starts
            )
            positive_count[nonempty] = np.add.reduceat(
                positive.astype(np.int64), gap_starts
            )

        no_positive = positive_count == 0
        burst = has_gaps & (no_positive | (min_positive < gaps_p01))
        rate_flag = (rate > rate_ceiling) & (counts_f > counts_median)
        short = median_duration < durations_p01
        volume = counts_f > counts_p99

        regularity = np.zeros(n, dtype=bool)
        candidate_mask = (
            judged_vec
            & (gap_counts + 1 >= config.regularity_min_interactions)
            & (positive_count > 0)
        )
        if candidate_mask.any() and nonempty.size:
            # Prefilter: the exact per-candidate loop below is the only
            # Python-rate cost of this kernel, so screen candidates with a
            # vectorized mean/cv estimate first.  The estimate uses
            # sequential (reduceat) sums where the exact path uses NumPy's
            # pairwise mean/std — those differ by ~1e-12 relative at most,
            # while the acceptance margin below is 25% of each threshold,
            # so the prefilter can only ever pass extra candidates to the
            # exact check, never hide a true one.  Flags are still decided
            # exclusively by the exact loop.
            pos_vals = np.where(positive, frame.gaps, 0.0)
            seg_sum = np.zeros(n, dtype=np.float64)
            seg_sumsq = np.zeros(n, dtype=np.float64)
            seg_sum[nonempty] = np.add.reduceat(pos_vals, gap_starts)
            seg_sumsq[nonempty] = np.add.reduceat(pos_vals * pos_vals, gap_starts)
            counts_pos = np.maximum(positive_count, 1).astype(np.float64)
            mean_est = seg_sum / counts_pos
            var_est = np.maximum(seg_sumsq / counts_pos - mean_est * mean_est, 0.0)
            safe_mean = np.where(mean_est > 0, mean_est, 1.0)
            cv_est = np.where(mean_est > 0, np.sqrt(var_est) / safe_mean, 0.0)
            margin = 1.25
            maybe = (cv_est < config.regularity_cv_threshold * margin) | (
                (np.abs(mean_est - DAY) < config.daily_gap_tolerance * DAY * margin)
                & (cv_est < 0.5 * margin)
            )
            candidate_mask &= maybe
        candidates = np.nonzero(candidate_mask)[0]
        for i in candidates:
            segment = frame.gaps[frame.gap_offsets[i] : frame.gap_offsets[i + 1]]
            gap_array = segment[segment > 0]
            mean_gap = float(gap_array.mean())
            cv = float(gap_array.std() / mean_gap) if mean_gap > 0 else 0.0
            metronomic = cv < config.regularity_cv_threshold
            daily = (
                abs(mean_gap - DAY) < config.daily_gap_tolerance * DAY and cv < 0.5
            )
            if metronomic or daily:
                regularity[i] = True

        flagged = judged_vec & (burst | rate_flag | short | regularity | volume)
        flag_columns = (
            (burst, FraudFlag.BURST),
            (rate_flag, FraudFlag.RATE),
            (short, FraudFlag.SHORT_DURATION),
            (regularity, FraudFlag.REGULARITY),
            (volume, FraudFlag.VOLUME),
        )
        for i in np.nonzero(flagged)[0]:
            index = int(i)
            suspicious[index] = True
            verdict_at[index] = HistoryVerdict(
                history_id=frame.hist_ids[index],
                entity_id=frame.entity_ids[index],
                n_interactions=int(frame.n_interactions[index]),
                flags=tuple(flag for column, flag in flag_columns if column[index]),
                judged=True,
            )

    fallback_indices = np.nonzero(degenerate & judged)[0]
    if fallback_indices.size:
        kinds = {
            frame.entity_ids[int(i)]: frame.kind_labels[int(frame.codes[int(i)])]
            for i in fallback_indices
            if int(frame.codes[int(i)]) >= 0
        }
        detector = FraudDetector(profiles, kinds, config)
        for i in fallback_indices:
            index = int(i)
            verdict = detector.judge(frame.histories[index])
            if verdict.suspicious:
                suspicious[index] = True
                verdict_at[index] = verdict

    verdicts = [verdict_at[index] for index in sorted(verdict_at)]
    return FrameJudgement(suspicious=suspicious, verdicts=verdicts)


@dataclass
class GatherFrame:
    """All shards' frames concatenated, with entity/partition codes.

    Built once per maintenance cycle (and cached by store version) in the
    *parent* process, before any worker forks — so the summarization
    phase reads nothing but these flat arrays.  Entity codes index into
    ``entity_order`` (sorted entity ids), which makes ``sorted(codes)``
    identical to sorting by entity id.
    """

    entity_order: list[str]
    entity_code: dict[str, int]
    #: Partition (= ``router.shard_of(entity_id)``) per entity code.
    entity_part: np.ndarray
    hist_ids: list[str]
    hist_entcode: np.ndarray
    hist_part: np.ndarray
    n_interactions: np.ndarray
    n_raw: np.ndarray
    #: Record-order event times / durations, all shards concatenated.
    times: np.ndarray
    durations: np.ndarray
    rec_entcode: np.ndarray
    rec_part: np.ndarray
    #: Opinions whose history exists in the co-located store (the
    #: existence check is shard-local because opinions share their
    #: history's record key).
    op_hist_ids: list[str]
    op_entcode: np.ndarray
    op_ratings: np.ndarray
    op_part: np.ndarray


def build_gather(
    frames: list[ShardFrame],
    opinions_by_shard: list[Mapping[str, OpinionUpload]],
    shard_of: Callable[[str], int],
    catalog_entity_ids: Iterable[str],
) -> GatherFrame:
    """Concatenate per-shard frames into one summarization-ready view."""
    ids = set(catalog_entity_ids)
    for frame in frames:
        ids.update(frame.entity_ids)
    for opinions in opinions_by_shard:
        ids.update(opinion.entity_id for opinion in opinions.values())
    entity_order = sorted(ids)
    entity_code = {entity_id: code for code, entity_id in enumerate(entity_order)}
    entity_part = np.fromiter(
        (shard_of(entity_id) for entity_id in entity_order),
        dtype=np.int64,
        count=len(entity_order),
    )

    hist_ids = [hist_id for frame in frames for hist_id in frame.hist_ids]
    hist_entcode = np.fromiter(
        (entity_code[eid] for frame in frames for eid in frame.entity_ids),
        dtype=np.int64,
        count=len(hist_ids),
    )
    n_interactions = np.concatenate([frame.n_interactions for frame in frames])
    n_raw = np.concatenate([frame.n_raw for frame in frames])
    times = np.concatenate([frame.times_raw for frame in frames])
    durations = np.concatenate([frame.durations_raw for frame in frames])
    hist_part = entity_part[hist_entcode] if len(hist_ids) else np.zeros(0, np.int64)
    rec_entcode = np.repeat(hist_entcode, n_raw)
    rec_part = entity_part[rec_entcode] if rec_entcode.size else np.zeros(0, np.int64)

    op_hist_ids: list[str] = []
    op_entcodes: list[int] = []
    op_ratings: list[float] = []
    for frame, opinions in zip(frames, opinions_by_shard):
        known = set(frame.hist_ids)
        for hist_id, opinion in opinions.items():
            if hist_id in known:
                op_hist_ids.append(hist_id)
                op_entcodes.append(entity_code[opinion.entity_id])
                op_ratings.append(opinion.rating)
    op_entcode = np.asarray(op_entcodes, dtype=np.int64)
    op_part = entity_part[op_entcode] if op_entcode.size else np.zeros(0, np.int64)

    return GatherFrame(
        entity_order=entity_order,
        entity_code=entity_code,
        entity_part=entity_part,
        hist_ids=hist_ids,
        hist_entcode=hist_entcode,
        hist_part=hist_part,
        n_interactions=n_interactions,
        n_raw=n_raw,
        times=times,
        durations=durations,
        rec_entcode=rec_entcode,
        rec_part=rec_part,
        op_hist_ids=op_hist_ids,
        op_entcode=op_entcode,
        op_ratings=np.asarray(op_ratings, dtype=np.float64),
        op_part=op_part,
    )


def summarize_partition_frame(
    gather: GatherFrame,
    partition: int,
    rejected_ids: frozenset[str],
    reviews: Mapping[str, list],
) -> list[EntityOpinionSummary]:
    """Phase C for one entity partition, from the gathered columns.

    Bit-identical to the monolithic loop because every order-dependent
    reduction sees its canonical order: entities are visited in sorted
    order (entity codes sort like entity ids), each entity's kept
    opinions are sorted by history id before the weight sum, and the
    group-deflation signature count is multiset-invariant
    (:func:`~repro.core.aggregation.deflate_groups_arrays` sorts), so the
    shard-concatenated record order cannot leak through.
    """
    n_hist = len(gather.hist_ids)
    if rejected_ids:
        keep = np.fromiter(
            (hist_id not in rejected_ids for hist_id in gather.hist_ids),
            dtype=bool,
            count=n_hist,
        )
    else:
        keep = np.ones(n_hist, dtype=bool)
    sel_hist = keep & (gather.hist_part == partition)
    rec_keep = np.repeat(keep, gather.n_raw) & (gather.rec_part == partition)
    times_sel = gather.times[rec_keep]
    durations_sel = gather.durations[rec_keep]
    rec_codes = gather.rec_entcode[rec_keep]

    n_entities = len(gather.entity_order)
    hist_counts = np.bincount(gather.hist_entcode[sel_hist], minlength=n_entities)
    raw_counts = np.bincount(rec_codes, minlength=n_entities)

    depth_by_entity: dict[int, dict[str, int]] = {}
    for i in np.nonzero(sel_hist)[0]:
        index = int(i)
        depth_by_entity.setdefault(int(gather.hist_entcode[index]), {})[
            gather.hist_ids[index]
        ] = int(gather.n_interactions[index])

    ops_by_entity: dict[int, list[tuple[str, float]]] = {}
    for j in np.nonzero(gather.op_part == partition)[0]:
        index = int(j)
        hist_id = gather.op_hist_ids[index]
        if hist_id in rejected_ids:
            continue
        ops_by_entity.setdefault(int(gather.op_entcode[index]), []).append(
            (hist_id, float(gather.op_ratings[index]))
        )

    entity_codes = (
        {int(code) for code in np.unique(gather.hist_entcode[sel_hist])}
        | set(ops_by_entity)
        | {gather.entity_code[entity_id] for entity_id in reviews}
    )
    summaries: list[EntityOpinionSummary] = []
    for code in sorted(entity_codes):
        entity_id = gather.entity_order[code]
        mask = rec_codes == code
        depths = depth_by_entity.get(code, {})
        kept: list[tuple[float, float]] = []
        for hist_id, rating in sorted(ops_by_entity.get(code, ())):
            depth = depths.get(hist_id)
            if depth is None:
                continue
            kept.append((rating, influence_weight(depth)))
        summaries.append(
            summarize_entity_from_parts(
                entity_id=entity_id,
                n_histories=int(hist_counts[code]),
                raw_interactions=int(raw_counts[code]),
                times=times_sel[mask],
                durations=durations_sel[mask],
                kept=kept,
                explicit_ratings=[
                    float(review.rating) for review in reviews.get(entity_id, [])
                ],
            )
        )
    return summaries

def kept_counts(
    gather: GatherFrame, rejected_ids: frozenset[str]
) -> dict[str, int]:
    """Surviving opinion slots per *owner* entity, from the gathered columns.

    ``op_hist_ids`` only lists slots whose history is stored (the
    existence check in :func:`build_gather`), so a slot survives iff its
    history was not rejected; the owner is the entity the history is
    bound to, read off ``hist_entcode``.  This refreshes the incremental
    engine's per-owner kept cache after a kernel (full) cycle, so a later
    incremental cycle flips from the right baseline.
    """
    owner_code = dict(zip(gather.hist_ids, gather.hist_entcode.tolist()))
    counts: dict[str, int] = {}
    for hist_id in gather.op_hist_ids:
        if hist_id in rejected_ids:
            continue
        entity_id = gather.entity_order[owner_code[hist_id]]
        counts[entity_id] = counts.get(entity_id, 0) + 1
    return counts
