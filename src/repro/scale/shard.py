"""Per-shard state: one partition of the RSP's four stores.

Each shard owns the slice of every store whose keys route to it: the
interaction histories and inferred opinions keyed by ``hash(Ru, e)``
record identifiers, and the explicit reviews keyed by entity.  The spent
token and seen-nonce tables are partitioned separately (by their own
key bytes) at the server, because their keys are not record identifiers.

Shards also own a derived RNG seed.  The maintenance cycle is currently
fully deterministic and draws nothing, but any stochastic extension
(sampled audits, randomized response noise) must draw from
``ShardState.rng`` so that per-shard streams stay independent of shard
count and of each other — the same label-derivation discipline as
:mod:`repro.util.rng` everywhere else.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import OpinionUpload
from repro.fraud.profiles import ProfilePools
from repro.privacy.history_store import HistoryStore
from repro.scale.kernel import ShardFrame, build_frame, collect_pools
from repro.util.rng import derive_seed, make_rng


class ShardState:
    """One partition of the sharded server's stores."""

    def __init__(self, index: int, key_seed: int) -> None:
        self.index = index
        #: Label-derived, so adding shard 9 never perturbs shards 0-8.
        self.seed = derive_seed(key_seed, f"scale/shard[{index}]")
        self.store = HistoryStore()
        #: Latest inferred opinion per anonymous history (highest ``seq``
        #: wins; ties keep the existing record — see docs/RELIABILITY.md).
        self.opinions: dict[str, OpinionUpload] = {}
        #: Explicit reviews for entities routed to this shard.
        self.reviews: dict[str, list] = {}
        #: Entities whose state on this shard changed since the last
        #: maintenance cycle; drained into the incremental engine.
        self.dirty_entities: set[str] = set()
        #: Bumped on every accepted interaction record; keys the frame
        #: and profile-pool caches (opinions don't affect either).
        self.store_version = 0
        #: Bumped on interactions *and* opinion-slot changes; keys the
        #: cross-shard gather cache, which folds opinions in.
        self.version = 0
        self._frame: ShardFrame | None = None
        self._frame_version = -1
        self._pools: ProfilePools | None = None
        self._pools_version = -1

    def rng(self, label: str) -> np.random.Generator:
        """This shard's independent random stream for ``label``."""
        return make_rng(self.seed, label)

    def renumber(self, index: int, key_seed: int) -> None:
        """Take over slot ``index`` after a merge removed a lower shard.

        Only the identity changes: the seed is re-derived for the new
        label (per-shard streams stay a pure function of the slot), and
        the stores, caches and dirty set move untouched.
        """
        self.index = index
        self.seed = derive_seed(key_seed, f"scale/shard[{index}]")

    def frame(self, entity_kinds: dict[str, str]) -> ShardFrame:
        """The columnar view of this shard's histories, cached by version.

        Maintenance phases A and B both need the frame; the cache makes
        the second request free as long as no record arrived in between.
        """
        if self._frame is None or self._frame_version != self.store_version:
            self._frame = build_frame(self.store.all_histories(), entity_kinds)
            self._frame_version = self.store_version
        return self._frame

    def pools(self, entity_kinds: dict[str, str]) -> ProfilePools:
        """This shard's per-kind profile pools, cached by store version.

        Pools depend only on stored interactions, so a cycle that saw no
        new records on this shard reuses the previous reduction — the
        shard-level half of the incremental-maintenance contract (the
        entity-level half lives in :mod:`repro.service.incremental`).
        """
        if self._pools is None or self._pools_version != self.store_version:
            self._pools = collect_pools(self.frame(entity_kinds))
            self._pools_version = self.store_version
        return self._pools
