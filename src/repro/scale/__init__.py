"""Horizontal scale-out for the RSP service.

The paper's repository must absorb implicit opinions from *every* user of
a service — orders of magnitude more input than today's explicit reviews
(Section 2, Table 1) — so the single in-process :class:`RSPServer` object
eventually becomes the bottleneck.  This package shards the four stores
across N partitions keyed by a prefix of the unlinkable ``hash(Ru, e)``
record identifier and runs the maintenance cycle (fraud profiling →
history filtering → opinion summarization) shard-parallel across a
``concurrent.futures`` worker pool.

The load-bearing promise is *equivalence*: for every input sequence the
sharded server accepts exactly the envelopes the monolithic server
accepts, and its maintenance cycle produces bit-identical reports,
verdicts, and entity summaries for every shard count and worker count.
``tests/scale`` proves this differentially and property-wise;
``docs/SCALING.md`` explains why it holds.
"""

from repro.scale.merge import merge_counts, merge_folded, merge_histories, merge_pools
from repro.scale.parallel import MaintenancePool
from repro.scale.router import ShardRouter
from repro.scale.server import ShardedRSPServer
from repro.scale.shard import ShardState

__all__ = [
    "MaintenancePool",
    "ShardRouter",
    "ShardState",
    "ShardedRSPServer",
    "merge_counts",
    "merge_folded",
    "merge_histories",
    "merge_pools",
]
