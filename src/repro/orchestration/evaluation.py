"""Evaluation utilities: scoring the RSP against simulator ground truth.

The paper could not evaluate its vision; the simulator can.  This module
computes the diagnostics a deployed RSP team would track:

* per-entity-kind inference error — restaurants (many interactions per
  pair) should infer better than plumbers (one call sequence per year);
* abstention calibration — when the classifier claims an expected error of
  e stars, is the realized error actually near e?
* coverage diagnostics — which entities gained opinions, and how the gain
  distributes over the long tail the paper cares about.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.orchestration.pipeline import PipelineOutcome
from repro.world.behavior import SimulationResult
from repro.world.population import Town


@dataclass(frozen=True)
class KindAccuracy:
    """Inference accuracy for one entity kind."""

    kind: str
    n_predictions: int
    n_abstentions: int
    mae: float

    @property
    def coverage(self) -> float:
        total = self.n_predictions + self.n_abstentions
        return self.n_predictions / total if total else 0.0


def accuracy_by_kind(
    town: Town, result: SimulationResult, outcome: PipelineOutcome
) -> dict[str, KindAccuracy]:
    """Per-kind MAE and coverage of the deployed clients' inferences."""
    kind_of = {entity.entity_id: entity.kind.label for entity in town.entities}
    errors: dict[str, list[float]] = defaultdict(list)
    abstained: dict[str, int] = defaultdict(int)
    for user_id, client in outcome.clients.items():
        for entry in client.transparency.audit():
            kind = kind_of.get(entry.entity_id)
            if kind is None:
                continue
            rating = entry.effective_rating
            if rating is None:
                abstained[kind] += 1
                continue
            truth = result.opinions.get((user_id, entry.entity_id))
            if truth is not None:
                errors[kind].append(abs(rating - truth.opinion))
    report: dict[str, KindAccuracy] = {}
    for kind in set(errors) | set(abstained):
        kind_errors = errors.get(kind, [])
        report[kind] = KindAccuracy(
            kind=kind,
            n_predictions=len(kind_errors),
            n_abstentions=abstained.get(kind, 0),
            mae=float(np.mean(kind_errors)) if kind_errors else float("nan"),
        )
    return report


@dataclass(frozen=True)
class CalibrationBin:
    """Claimed-vs-realized error for one confidence band."""

    claimed_low: float
    claimed_high: float
    n: int
    mean_claimed: float
    mean_realized: float


def abstention_calibration(
    result: SimulationResult,
    outcome: PipelineOutcome,
    bin_edges: tuple[float, ...] = (0.0, 0.6, 0.8, 1.0, 1.2, 10.0),
) -> list[CalibrationBin]:
    """Is the classifier's expected-error estimate honest?

    Buckets every non-abstained inference by the confidence the classifier
    attached to it and compares the claimed expected error against the
    realized mean absolute error in each bucket.
    """
    rows: list[tuple[float, float]] = []  # (claimed, realized)
    for user_id, client in outcome.clients.items():
        for entry in client.transparency.audit():
            opinion = entry.model_opinion
            if opinion.abstained or entry.effective_rating is None:
                continue
            truth = result.opinions.get((user_id, entry.entity_id))
            if truth is None:
                continue
            rows.append((opinion.confidence, abs(entry.effective_rating - truth.opinion)))
    bins: list[CalibrationBin] = []
    for low, high in zip(bin_edges[:-1], bin_edges[1:]):
        members = [(c, r) for c, r in rows if low <= c < high]
        if not members:
            continue
        bins.append(
            CalibrationBin(
                claimed_low=low,
                claimed_high=high,
                n=len(members),
                mean_claimed=float(np.mean([c for c, _ in members])),
                mean_realized=float(np.mean([r for _, r in members])),
            )
        )
    return bins


@dataclass(frozen=True)
class CoverageDiagnostics:
    """How the opinion gain distributes over entities."""

    n_entities_with_opinions_before: int
    n_entities_with_opinions_after: int
    n_rescued_entities: int  # zero reviews before, >0 opinions after
    gini_before: float
    gini_after: float


def coverage_diagnostics(town: Town, outcome: PipelineOutcome) -> CoverageDiagnostics:
    """The long-tail story: inference mostly helps unreviewed entities, and
    spreads opinions more evenly across entities (lower Gini)."""
    from repro.util.stats import gini

    all_entities = list(town.entities)
    before = [outcome.explicit_per_entity.get(e.entity_id, 0) for e in all_entities]
    after = [
        outcome.total_per_entity.get(
            e.entity_id, outcome.explicit_per_entity.get(e.entity_id, 0)
        )
        for e in all_entities
    ]
    rescued = sum(1 for b, a in zip(before, after) if b == 0 and a > 0)
    return CoverageDiagnostics(
        n_entities_with_opinions_before=sum(1 for b in before if b > 0),
        n_entities_with_opinions_after=sum(1 for a in after if a > 0),
        n_rescued_entities=rescued,
        gini_before=gini(before) if any(before) else 1.0,
        gini_after=gini(after) if any(after) else 1.0,
    )
