"""The end-to-end Figure 2 pipeline: world → sensing → client → server.

This is the integration driver behind the F2 benchmark and the A2
coverage claim.  It stitches every layer together exactly as the paper's
architecture diagram draws it:

1. simulate the physical world (ground-truth opinions stay inside the
   simulator);
2. train the opinion classifier on the posting minority — correlating
   their observed interactions with the ratings they chose to post;
3. run every user's client: sense, resolve, infer, and upload through the
   anonymity network with tokens;
4. run the server: token checking, fraud filtering, aggregation;
5. score the outcome against ground truth: opinion coverage before/after,
   inference accuracy, abstention behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.client.app import RSPClient
from repro.core.classifier import ClassifierConfig, OpinionClassifier
from repro.core.features import OpinionFeatures, extract_all_features
from repro.client.app import infer_home
from repro.privacy.anonymity import AnonymityNetwork, batching_network
from repro.privacy.uploads import RetransmitPolicy, UploadConfig, hardened_config
from repro.sensing.policy import SensingPolicy, duty_cycled_policy
from repro.sensing.sensors import TraceConfig, generate_trace
from repro.service.server import RSPServer
from repro.util.clock import DAY
from repro.world.behavior import SimulationResult
from repro.world.population import Town


@dataclass(frozen=True)
class PipelineConfig:
    """Settings of one full-pipeline run."""

    horizon_days: float = 180.0
    quota_per_day: int = 96
    key_bits: int = 256  # simulation substrate; small keys keep runs fast
    batch_interval: float = 6 * 3600.0
    upload: UploadConfig = field(default_factory=hardened_config)
    #: ``None`` = send each record exactly once (the seed behaviour);
    #: a policy enables bounded, nonce-deduplicated retransmission.
    retransmit: RetransmitPolicy | None = None
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    #: Feed the wearable affect channel (Section 3.1's scoped-out idea)
    #: into feature extraction for both training and deployment.
    use_wearables: bool = False
    seed: int = 0


@dataclass
class PipelineOutcome:
    """Everything the benchmarks score."""

    server: RSPServer
    clients: dict[str, RSPClient]
    #: entity_id -> number of explicit reviews (the world before the paper).
    explicit_per_entity: dict[str, int]
    #: entity_id -> explicit + surviving inferred opinions (the world after).
    total_per_entity: dict[str, int]
    #: |inferred - truth| for every non-abstained inference with known truth.
    inference_errors: list[float]
    #: |posted rating - truth| for explicit reviews (the accuracy yardstick).
    review_errors: list[float]
    n_inferences: int = 0
    n_abstentions: int = 0

    @property
    def mean_absolute_error(self) -> float:
        if not self.inference_errors:
            return float("nan")
        return float(np.mean(self.inference_errors))

    @property
    def abstention_rate(self) -> float:
        total = self.n_inferences + self.n_abstentions
        if total == 0:
            return 0.0
        return self.n_abstentions / total

    def median_opinions_before(self) -> float:
        counts = [self.explicit_per_entity.get(e, 0) for e in self.total_per_entity]
        return float(np.median(counts)) if counts else 0.0

    def median_opinions_after(self) -> float:
        counts = list(self.total_per_entity.values())
        return float(np.median(counts)) if counts else 0.0

    def coverage_gain(self) -> float:
        """Mean opinions-per-entity ratio, after vs before (entities with
        any opinion)."""
        before = sum(self.explicit_per_entity.get(e, 0) for e in self.total_per_entity)
        after = sum(self.total_per_entity.values())
        if before == 0:
            return float("inf") if after > 0 else 1.0
        return after / before


def collect_training_data(
    town: Town,
    result: SimulationResult,
    horizon: float,
    policy: SensingPolicy | None = None,
    trace_config: TraceConfig | None = None,
    seed: int = 0,
    use_wearables: bool = False,
) -> tuple[list[OpinionFeatures], list[float]]:
    """Build (features, rating) pairs from the posting minority.

    For every posted review, extract the reviewer's observed features for
    the reviewed entity from their own device trace — exactly the training
    signal the RSP can legitimately collect (the user volunteered the
    rating; the features come from their consenting client).
    """
    policy = policy or duty_cycled_policy()
    catalog = {entity.entity_id: entity for entity in town.entities}
    reviews_by_user: dict[str, list] = {}
    for review in result.reviews:
        reviews_by_user.setdefault(review.user_id, []).append(review)

    features: list[OpinionFeatures] = []
    ratings: list[float] = []
    from repro.sensing.resolution import EntityResolver

    resolver = EntityResolver(town.entities)
    for user_id, reviews in reviews_by_user.items():
        trace = generate_trace(user_id, town, result, horizon, policy, trace_config, seed)
        interactions = resolver.resolve(trace)
        if not interactions:
            continue
        home = infer_home(trace)
        emotion = None
        if use_wearables:
            from repro.sensing.wearables import (
                generate_emotion_trace,
                mean_valence_by_entity,
            )

            emotion = mean_valence_by_entity(
                generate_emotion_trace(user_id, result, horizon, seed=seed)
            )
        per_entity = extract_all_features(interactions, catalog, home, emotion=emotion)
        for review in reviews:
            feature_vector = per_entity.get(review.entity_id)
            if feature_vector is None:
                continue
            features.append(feature_vector)
            ratings.append(float(review.rating))
    return features, ratings


#: Below this many locally collected (features, rating) pairs, training is
#: padded with the cold-start behavioural prior (a stand-in for the global
#: user base a real RSP would pretrain on).
MIN_LOCAL_TRAINING_PAIRS = 30


def train_classifier(
    town: Town,
    result: SimulationResult,
    horizon: float,
    config: ClassifierConfig | None = None,
    seed: int = 0,
    use_wearables: bool = False,
) -> OpinionClassifier:
    """Train the opinion classifier from posted reviews.

    Small or young deployments may not have enough posting users to learn
    from; in that case the local pairs are topped up with
    :func:`repro.core.classifier.synthetic_training_pairs`, the cold-start
    prior, so the pipeline degrades gracefully instead of failing.
    """
    from repro.core.classifier import synthetic_training_pairs

    features, ratings = collect_training_data(
        town, result, horizon, seed=seed, use_wearables=use_wearables
    )
    if len(features) < MIN_LOCAL_TRAINING_PAIRS:
        pad_n = MIN_LOCAL_TRAINING_PAIRS - len(features) + 20
        pad_features, pad_ratings = synthetic_training_pairs(pad_n, seed=seed)
        features = features + pad_features
        ratings = ratings + pad_ratings
    classifier = OpinionClassifier(config)
    classifier.fit(features, ratings)
    return classifier


def run_full_pipeline(
    town: Town,
    result: SimulationResult,
    config: PipelineConfig | None = None,
    classifier: OpinionClassifier | None = None,
    max_users: int | None = None,
) -> PipelineOutcome:
    """Run the complete Figure 2 architecture and score it."""
    config = config or PipelineConfig()
    horizon = config.horizon_days * DAY
    if classifier is None:
        classifier = train_classifier(
            town,
            result,
            horizon,
            config.classifier,
            seed=config.seed,
            use_wearables=config.use_wearables,
        )

    server = RSPServer(
        catalog=town.entities,
        quota_per_day=config.quota_per_day,
        key_seed=config.seed,
        key_bits=config.key_bits,
    )
    network: AnonymityNetwork = batching_network(
        batch_interval=config.batch_interval, seed=config.seed
    )

    # The legacy path: posting users file explicit reviews as before.
    for review in result.reviews:
        if review.time < horizon:
            server.post_review(review.user_id, review.entity_id, review.rating, review.time)

    users = town.users if max_users is None else town.users[:max_users]
    clients: dict[str, RSPClient] = {}
    history_owner: dict[str, str] = {}  # scoring only
    for index, user in enumerate(users):
        client = RSPClient(
            device_id=user.user_id,
            catalog=town.entities,
            classifier=classifier,
            seed=config.seed * 100_003 + index,
            upload_config=config.upload,
            retransmit=config.retransmit,
        )
        trace = generate_trace(
            user.user_id, town, result, horizon, duty_cycled_policy(), seed=config.seed
        )
        emotion = None
        if config.use_wearables:
            from repro.sensing.wearables import (
                generate_emotion_trace,
                mean_valence_by_entity,
            )

            emotion = mean_valence_by_entity(
                generate_emotion_trace(user.user_id, result, horizon, seed=config.seed)
            )
        client.observe_trace(trace, now=horizon, emotion=emotion)
        client.sync(network, server.issuer, now=horizon)
        clients[user.user_id] = client
        for entity_id in client.transparency._entries:
            history_owner[client.identity.history_id(entity_id)] = user.user_id

    server.receive_all(network.deliveries_until(horizon + 3 * DAY))
    server.run_maintenance()

    # ---------------------------------------------------------- scoring
    explicit_per_entity: dict[str, int] = {}
    for review in result.reviews:
        if review.time < horizon:
            explicit_per_entity[review.entity_id] = (
                explicit_per_entity.get(review.entity_id, 0) + 1
            )
    total_per_entity: dict[str, int] = {}
    for entity_id in server.catalog:
        summary = server.summary(entity_id)
        if summary is None:
            if entity_id in explicit_per_entity:
                total_per_entity[entity_id] = explicit_per_entity[entity_id]
            continue
        if summary.total_opinions > 0:
            total_per_entity[entity_id] = summary.total_opinions

    inference_errors: list[float] = []
    n_inferences = 0
    n_abstentions = 0
    for user_id, client in clients.items():
        for entry in client.transparency.audit():
            rating = entry.effective_rating
            if rating is None:
                n_abstentions += 1
                continue
            n_inferences += 1
            truth = result.opinions.get((user_id, entry.entity_id))
            if truth is not None:
                inference_errors.append(abs(rating - truth.opinion))

    review_errors: list[float] = []
    for review in result.reviews:
        truth = result.opinions.get((review.user_id, review.entity_id))
        if truth is not None:
            review_errors.append(abs(review.rating - truth.opinion))

    return PipelineOutcome(
        server=server,
        clients=clients,
        explicit_per_entity=explicit_per_entity,
        total_per_entity=total_per_entity,
        inference_errors=inference_errors,
        review_errors=review_errors,
        n_inferences=n_inferences,
        n_abstentions=n_abstentions,
    )
