"""End-to-end experiment drivers: world → sensing → client → server.

These modules stitch every layer of the reproduction together — they are
the only code allowed to import both the client side (:mod:`repro.client`,
:mod:`repro.sensing`) and the server side (:mod:`repro.service`).  The
server itself never touches client internals and the client never reaches
into the server; ``repro lint`` enforces that boundary (see
``docs/STATIC_ANALYSIS.md``).
"""

from repro.orchestration.epochs import EpochReport, EpochsOutcome, run_epochs
from repro.orchestration.evaluation import (
    CalibrationBin,
    CoverageDiagnostics,
    KindAccuracy,
    abstention_calibration,
    accuracy_by_kind,
    coverage_diagnostics,
)
from repro.orchestration.pipeline import (
    PipelineConfig,
    PipelineOutcome,
    collect_training_data,
    run_full_pipeline,
    train_classifier,
)

__all__ = [
    "CalibrationBin",
    "CoverageDiagnostics",
    "EpochReport",
    "EpochsOutcome",
    "KindAccuracy",
    "PipelineConfig",
    "PipelineOutcome",
    "abstention_calibration",
    "accuracy_by_kind",
    "collect_training_data",
    "coverage_diagnostics",
    "run_epochs",
    "run_full_pipeline",
    "train_classifier",
]
