"""Multi-epoch operation: the RSP as a long-running service.

The single-shot pipeline of :mod:`repro.orchestration.pipeline` processes one
observation window; a deployed RSP runs forever — clients sync
periodically, token quotas renew daily, inferences firm up as histories
lengthen, and the server re-runs maintenance on a schedule.  This driver
simulates that: the horizon is split into epochs, and in each epoch every
client observes its trace so far, stages only the *new* interactions
(repeated observation never double-uploads), syncs under quota, and the
server ingests whatever the anonymity network has released.

The epoch reports expose the quantities a service team would watch on a
dashboard: record growth, opinion churn, fraud rejections, coverage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.client.app import RSPClient
from repro.core.classifier import OpinionClassifier
from repro.durability.journal import DurableJournal, attach_journal
from repro.durability.replication import ReplicatedRSPServer, ReplicationChannel
from repro.faults import FaultInjector, FaultPlan
from repro.ingest import BoundedIntakeQueue, ingest_all
from repro.privacy.anonymity import AnonymityNetwork, batching_network
from repro.reshard import Autoscaler, AutoscalePolicy, ReshardOp, perform
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.sensors import generate_trace
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.scale.server import ShardedRSPServer
from repro.serve.loadgen import QueryWorkload, SyntheticQueries
from repro.service.server import MaintenanceReport, RSPServer
from repro.telemetry import Telemetry
from repro.util.clock import DAY
from repro.world.behavior import SimulationResult
from repro.world.population import Town


@dataclass(frozen=True)
class EpochReport:
    """What one epoch did to the service.

    The robustness fields are per-epoch deltas: ``dropped_messages``
    counts network losses plus envelopes that arrived while the endpoint
    was down, ``rejected_envelopes`` counts token/validation bounces,
    ``duplicates_suppressed`` counts idempotent-dedup hits, and
    ``retransmissions`` counts client re-sends.  ``maintenance`` is
    ``None`` when the maintenance cycle was deferred because the server
    was down at epoch end (``server_deferred``).
    """

    epoch: int
    end_time: float
    new_records: int
    total_records: int
    total_histories: int
    n_opinions: int
    envelopes_deferred: int
    maintenance: MaintenanceReport | None
    rejected_envelopes: int = 0
    dropped_messages: int = 0
    duplicates_suppressed: int = 0
    retransmissions: int = 0
    crash_restores: int = 0
    server_deferred: bool = False


@dataclass
class EpochsOutcome:
    """The long-running deployment's final state and per-epoch history."""

    #: The service endpoint: an :class:`RSPServer`, or a
    #: :class:`~repro.scale.server.ShardedRSPServer` when the run was
    #: sharded — both expose the same counters and query surface.
    server: RSPServer | ShardedRSPServer
    clients: dict[str, RSPClient]
    reports: list[EpochReport] = field(default_factory=list)
    injector: FaultInjector | None = None
    #: The deployment-wide observability sink shared by every component of
    #: the run; the :class:`EpochReport` robustness fields are derived from
    #: its counters (see docs/OBSERVABILITY.md).
    telemetry: Telemetry | None = None
    #: The primary/replica pair when the run was replicated (``None``
    #: otherwise); after a scripted failover, ``server`` above already
    #: points at the promoted replica.
    replication: ReplicatedRSPServer | None = None
    #: SHA-256 over every rendered serve-path response of the run, in
    #: query order (``None`` unless ``serve_queries > 0``).  Contractually
    #: deployment-invariant: shards, workers, incremental mode, batching,
    #: durability, and cache temperature never change it
    #: (``tests/serve/test_differential.py``).
    serve_digest: str | None = None
    #: Every topology change the run applied, as ``(epoch, op)`` pairs —
    #: scheduled ops and autoscaler decisions alike.  Contractually
    #: *absent* from every digest above: resharding never changes reports,
    #: summaries, serve responses, or AGGREGATE telemetry
    #: (``tests/reshard/test_differential.py``).
    reshard_ops: list = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.reports)

    def reports_digest(self) -> str:
        """A canonical byte-for-byte rendering of the per-epoch reports.

        Two runs of the same world, config, and :class:`FaultPlan` seed
        must produce identical digests — the determinism guard that keeps
        fault injection inside the ``repro.util.rng`` discipline.
        """
        return "\n".join(repr(report) for report in self.reports)


def run_epochs(
    town: Town,
    result: SimulationResult,
    config: PipelineConfig | None = None,
    n_epochs: int = 6,
    classifier: OpinionClassifier | None = None,
    max_users: int | None = None,
    fault_plan: FaultPlan | None = None,
    n_shards: int = 1,
    workers: int = 0,
    incremental: bool = True,
    durable_dir: str | Path | None = None,
    replicate: bool = False,
    snapshot_every: int = 1,
    ingest_batch: bool = False,
    queue_depth: int | None = None,
    serve_queries: int = 0,
    reshard_schedule: dict[int, list[ReshardOp]] | None = None,
    autoscale: AutoscalePolicy | None = None,
) -> EpochsOutcome:
    """Operate the service over ``n_epochs`` equal slices of the horizon.

    ``n_shards``/``workers`` select the service deployment: the default
    ``(1, 0)`` runs the monolithic :class:`RSPServer`; anything else runs
    a :class:`~repro.scale.server.ShardedRSPServer` with that many store
    partitions and maintenance worker processes.  The sharded deployment
    is contractually bit-identical in every report this driver emits
    (``tests/scale/test_differential.py``), so the flags are pure
    performance knobs.  ``incremental`` likewise only moves work:
    ``False`` forces every maintenance cycle to recompute from scratch,
    the baseline the default dirty-entity path must match byte for byte
    (``tests/scale/test_incremental.py``).

    With a :class:`FaultPlan`, the run is executed under deterministic
    fault injection: the plan's seeded injector is installed as the
    ``fault_hook`` of the network, the token issuer, and the server, and
    the driver additionally simulates client crash–restore (each client is
    checkpointed after every sync; a crashed client is rebuilt from its
    latest durable checkpoint) and maintenance deferral (an epoch whose
    end falls inside a server outage skips maintenance — the batch job
    holds the mix's released deliveries and replays them at the catch-up
    cycle, so nothing buffered during the outage is ever counted as lost).

    ``durable_dir`` turns on write-ahead journaling: every accepted
    mutation is WAL-logged under ``<durable_dir>/primary`` (one lane per
    shard) and a snapshot is taken after maintenance every
    ``snapshot_every`` epochs — a crashed run is recoverable with
    ``repro recover``.  ``replicate`` additionally runs a warm-standby
    twin fed by log shipping at each epoch boundary; a
    :class:`~repro.faults.plan.PrimaryCrash` in the fault plan then
    kills the primary (torn WAL tail and all) and promotes the replica
    at the next epoch start.  Both knobs default off and, like
    ``n_shards``/``workers``, never change any report the driver emits
    (see docs/DURABILITY.md).

    ``ingest_batch`` routes every intake through the batched front end
    (:func:`repro.ingest.ingest_all`) instead of per-record
    ``receive_all`` — contractually byte-identical in every report and
    telemetry export (``tests/ingest/test_differential.py``), so it is a
    pure performance knob like ``n_shards``.  ``queue_depth`` bounds
    intake behind a :class:`~repro.ingest.BoundedIntakeQueue`: arrivals
    beyond the bound are deterministically shed *before* journaling
    (counted under ``rsp.ingest.shed``), so unlike every other knob it
    *can* change reports under overload — it defaults off and exists for
    the backpressure scenarios in docs/SCALING.md.

    ``serve_queries`` drives that many Zipf-drawn read-path queries
    (:mod:`repro.serve.loadgen`) through ``server.serving`` after every
    completed maintenance cycle, folding the rendered responses into
    ``outcome.serve_digest``.  It defaults off so query-free runs never
    construct a serving layer (their telemetry exports stay bit-stable);
    when on, the digest is deployment-invariant like every report.

    ``reshard_schedule`` maps 1-based epoch index → the
    :class:`~repro.reshard.ops.ReshardOp` list to apply at that epoch's
    start (build one with :func:`repro.reshard.parse_schedule`);
    ``autoscale`` installs a telemetry-driven
    :class:`~repro.reshard.autoscale.Autoscaler` evaluated after every
    completed maintenance cycle.  Both require a sharded deployment, and
    both are — like every other deployment knob — contractually invisible
    in the reports, summaries, serve digest, and AGGREGATE telemetry
    (``tests/reshard/test_differential.py``).
    """
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    if (reshard_schedule or autoscale is not None) and n_shards == 1 and workers == 0:
        raise ValueError(
            "resharding requires the sharded deployment; pass n_shards > 1 "
            "(or workers > 0)"
        )
    if serve_queries < 0:
        raise ValueError("serve_queries must be >= 0")
    config = config or PipelineConfig()
    horizon = config.horizon_days * DAY
    epoch_length = horizon / n_epochs

    if classifier is None:
        classifier = train_classifier(
            town, result, horizon, config.classifier, seed=config.seed
        )

    if n_shards < 1:
        raise ValueError("need at least one shard")
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 = serial)")

    injector = FaultInjector(fault_plan) if fault_plan is not None else None
    autoscaler = Autoscaler(autoscale) if autoscale is not None else None

    def intake(target, deliveries, when: float | None) -> None:
        # One seam for both intake sites: optional bounded-queue admission
        # (shed-before-journal), then batched or per-record dispatch.  The
        # target is passed per call because failover rebinds ``server``.
        if intake_queue is not None:
            intake_queue.offer_all(deliveries)
            deliveries = intake_queue.drain()
        if ingest_batch:
            ingest_all(target, deliveries, now=when)
        else:
            target.receive_all(deliveries, now=when)

    def make_server() -> RSPServer | ShardedRSPServer:
        if n_shards == 1 and workers == 0:
            return RSPServer(
                catalog=town.entities,
                quota_per_day=config.quota_per_day,
                key_seed=config.seed,
                key_bits=config.key_bits,
                incremental=incremental,
            )
        return ShardedRSPServer(
            catalog=town.entities,
            quota_per_day=config.quota_per_day,
            key_seed=config.seed,
            key_bits=config.key_bits,
            n_shards=n_shards,
            workers=workers,
            incremental=incremental,
        )

    server: RSPServer | ShardedRSPServer = make_server()
    network: AnonymityNetwork = batching_network(
        batch_interval=config.batch_interval, seed=config.seed
    )
    # One shared sink for the whole deployment: the server (and its
    # issuer), the mix, the injector, and every client record into the
    # same registry, so the epoch reports below are pure derived views.
    telemetry = Telemetry()
    intake_queue = (
        BoundedIntakeQueue(queue_depth, telemetry=telemetry)
        if queue_depth is not None
        else None
    )
    server.attach_telemetry(telemetry)
    network.telemetry = telemetry
    if injector is not None:
        injector.telemetry = telemetry
        network.fault_hook = injector
        server.fault_hook = injector
        server.issuer.fault_hook = injector

    journal: DurableJournal | None = None
    pair: ReplicatedRSPServer | None = None
    if durable_dir is not None:
        base = Path(durable_dir)
        sharded = getattr(server, "shards", None) is not None
        journal = DurableJournal(
            base / "primary",
            n_lanes=server.router.n_shards if sharded else 1,
            lane_of=server.router.shard_of if sharded else None,
            telemetry=telemetry,
        )
        attach_journal(server, journal)
        if replicate:
            # The replica is an exact twin (same catalog, same key seed,
            # so the primary's tokens verify after failover), fed only by
            # log shipping — it emits no telemetry until promoted.
            pair = ReplicatedRSPServer(
                server,
                make_server(),
                journal,
                ReplicationChannel(fault_hook=injector),
                telemetry=telemetry,
                durable_root=base,
            )
    elif replicate:
        raise ValueError("replicate=True requires durable_dir")

    users = town.users if max_users is None else town.users[:max_users]
    clients: dict[str, RSPClient] = {
        user.user_id: RSPClient(
            device_id=user.user_id,
            catalog=town.entities,
            classifier=classifier,
            seed=config.seed * 100_003 + index,
            upload_config=config.upload,
            retransmit=config.retransmit,
        )
        for index, user in enumerate(users)
    }
    for client in clients.values():
        client.attach_telemetry(telemetry)
    # Durable state as of the last completed sync (install-time initially);
    # a crash rolls the client back to exactly this.
    checkpoints: dict[str, dict] = {
        user_id: client.checkpoint() for user_id, client in clients.items()
    }

    outcome = EpochsOutcome(
        server=server,
        clients=clients,
        injector=injector,
        telemetry=telemetry,
        replication=pair,
    )
    serve_source: SyntheticQueries | None = None
    serve_hash = None
    if serve_queries:
        serve_source = SyntheticQueries(
            town.entities, QueryWorkload(seed=config.seed), grid=town.grid
        )
        serve_hash = hashlib.sha256()
    records_before = 0
    rejected_before = 0
    dropped_before = 0
    duplicates_before = 0
    retransmissions_before = 0
    #: Deliveries already released by the mix while the upload endpoint was
    #: down.  The deferred batch job holds them here and replays them at
    #: the catch-up cycle with ``now=ingest_time`` — they were buffered,
    #: not lost, so the outage check must use the catch-up time, not the
    #: (in-outage) arrival times stamped when the mix flushed.
    held_backlog: list = []
    for epoch in range(1, n_epochs + 1):
        start_time = (epoch - 1) * epoch_length
        end_time = epoch * epoch_length

        if pair is not None and injector is not None and not pair.promoted:
            for crash in injector.primary_crashes_in(start_time, end_time):
                # Failover at the epoch boundary: the previous epoch's
                # shipment already carried every accepted mutation, so
                # the promoted replica starts byte-identical to where
                # the primary ended — in-flight envelopes land on it
                # via the mix and client retransmission.
                injector.note_primary_crash()
                server = pair.fail_over(torn_bytes=crash.torn_bytes)
                server.fault_hook = injector
                server.issuer.fault_hook = injector
                journal = server.journal
                outcome.server = server
                break

        if reshard_schedule is not None:
            # Scheduled topology changes apply at the epoch boundary —
            # after any failover (they must land on the live endpoint),
            # before any intake, so every envelope of the epoch routes
            # under the new table.
            for op in reshard_schedule.get(epoch, ()):
                perform(server, op)
                outcome.reshard_ops.append((epoch, op))

        crash_restores = 0
        if injector is not None:
            for crash in injector.crashes_in(start_time, end_time):
                for user in users:
                    if not crash.affects(user.user_id):
                        continue
                    injector.note_crash()
                    crash_restores += 1
                    restored = RSPClient.restore(
                        checkpoints[user.user_id],
                        catalog=town.entities,
                        classifier=classifier,
                        upload_config=config.upload,
                        retransmit=config.retransmit,
                    )
                    restored.attach_telemetry(telemetry)
                    clients[user.user_id] = restored
                    outcome.clients[user.user_id] = restored

        for review in result.reviews:
            if start_time <= review.time < end_time:
                server.post_review(
                    review.user_id, review.entity_id, review.rating, review.time
                )

        for user in users:
            client = clients[user.user_id]
            skew = injector.skew_for(user.user_id) if injector is not None else 0.0
            local_now = end_time + skew
            trace = generate_trace(
                user.user_id, town, result, end_time, duty_cycled_policy(), seed=config.seed
            )
            client.observe_trace(trace, now=local_now)
            client.sync(network, server.issuer, now=local_now)
            checkpoints[user.user_id] = client.checkpoint()

        ingest_time = end_time + 2 * DAY
        server_deferred = injector is not None and injector.server_down_at(ingest_time)
        maintenance: MaintenanceReport | None = None
        if server_deferred:
            # The batch job waits for the endpoint; drain the mix's
            # released batches into the driver-held backlog so the
            # catch-up cycle can replay them without the outage check
            # mistaking buffered deliveries for in-outage arrivals.
            held_backlog.extend(network.deliveries_until(ingest_time))
        else:
            if held_backlog:
                intake(server, held_backlog, ingest_time)
                held_backlog = []
            # ``when=None`` on purpose: outage checks for freshly released
            # deliveries run against each arrival time, as before.
            intake(server, network.deliveries_until(ingest_time), None)
            maintenance = server.run_maintenance(now=ingest_time)
            if autoscaler is not None:
                # Evaluate on the gauges the cycle just set; the op (if
                # any) lands before this epoch's shipment, so the replica
                # applies it at the same point in the mutation stream.
                applied = autoscaler.evaluate(server)
                if applied is not None:
                    outcome.reshard_ops.append((epoch, applied))
            if serve_source is not None:
                # Fresh summaries just landed; serve the epoch's reads.
                for serve_query in serve_source.batch(serve_queries):
                    serve_hash.update(server.query(serve_query).render().encode())
                    serve_hash.update(b"\n")
            if pair is not None and not pair.promoted:
                pair.ship(now=ingest_time)
            if journal is not None and epoch % snapshot_every == 0:
                journal.take_snapshot(server)

        telemetry.span("epoch", start_time, end_time, epoch=epoch)
        # The robustness fields are derived views of the shared telemetry
        # registry — tests/telemetry/test_counter_consistency.py pins them
        # to the legacy server/injector counters.
        rejected_now = telemetry.total("rsp.envelopes.rejected")
        dropped_now = telemetry.total("mix.dropped") + telemetry.total(
            "rsp.envelopes.outage_dropped"
        )
        duplicates_now = telemetry.total("rsp.envelopes.duplicate")
        retransmissions_now = telemetry.total("client.retransmissions")
        outcome.reports.append(
            EpochReport(
                epoch=epoch,
                end_time=end_time,
                new_records=server.n_records - records_before,
                total_records=server.n_records,
                total_histories=server.n_histories,
                n_opinions=server.n_opinions,
                envelopes_deferred=sum(c.n_pending for c in clients.values()),
                maintenance=maintenance,
                rejected_envelopes=rejected_now - rejected_before,
                dropped_messages=dropped_now - dropped_before,
                duplicates_suppressed=duplicates_now - duplicates_before,
                retransmissions=retransmissions_now - retransmissions_before,
                crash_restores=crash_restores,
                server_deferred=server_deferred,
            )
        )
        records_before = server.n_records
        rejected_before = rejected_now
        dropped_before = dropped_now
        duplicates_before = duplicates_now
        retransmissions_before = retransmissions_now
    if serve_hash is not None:
        outcome.serve_digest = serve_hash.hexdigest()
    return outcome
