"""Multi-epoch operation: the RSP as a long-running service.

The single-shot pipeline of :mod:`repro.orchestration.pipeline` processes one
observation window; a deployed RSP runs forever — clients sync
periodically, token quotas renew daily, inferences firm up as histories
lengthen, and the server re-runs maintenance on a schedule.  This driver
simulates that: the horizon is split into epochs, and in each epoch every
client observes its trace so far, stages only the *new* interactions
(repeated observation never double-uploads), syncs under quota, and the
server ingests whatever the anonymity network has released.

The epoch reports expose the quantities a service team would watch on a
dashboard: record growth, opinion churn, fraud rejections, coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.client.app import RSPClient
from repro.core.classifier import OpinionClassifier
from repro.privacy.anonymity import AnonymityNetwork, batching_network
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.sensors import generate_trace
from repro.orchestration.pipeline import PipelineConfig, train_classifier
from repro.service.server import MaintenanceReport, RSPServer
from repro.util.clock import DAY
from repro.world.behavior import SimulationResult
from repro.world.population import Town


@dataclass(frozen=True)
class EpochReport:
    """What one epoch did to the service."""

    epoch: int
    end_time: float
    new_records: int
    total_records: int
    total_histories: int
    n_opinions: int
    envelopes_deferred: int
    maintenance: MaintenanceReport


@dataclass
class EpochsOutcome:
    """The long-running deployment's final state and per-epoch history."""

    server: RSPServer
    clients: dict[str, RSPClient]
    reports: list[EpochReport] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.reports)


def run_epochs(
    town: Town,
    result: SimulationResult,
    config: PipelineConfig | None = None,
    n_epochs: int = 6,
    classifier: OpinionClassifier | None = None,
    max_users: int | None = None,
) -> EpochsOutcome:
    """Operate the service over ``n_epochs`` equal slices of the horizon."""
    if n_epochs < 1:
        raise ValueError("need at least one epoch")
    config = config or PipelineConfig()
    horizon = config.horizon_days * DAY
    epoch_length = horizon / n_epochs

    if classifier is None:
        classifier = train_classifier(
            town, result, horizon, config.classifier, seed=config.seed
        )

    server = RSPServer(
        catalog=town.entities,
        quota_per_day=config.quota_per_day,
        key_seed=config.seed,
        key_bits=config.key_bits,
    )
    network: AnonymityNetwork = batching_network(
        batch_interval=config.batch_interval, seed=config.seed
    )

    users = town.users if max_users is None else town.users[:max_users]
    clients: dict[str, RSPClient] = {
        user.user_id: RSPClient(
            device_id=user.user_id,
            catalog=town.entities,
            classifier=classifier,
            seed=config.seed * 100_003 + index,
            upload_config=config.upload,
        )
        for index, user in enumerate(users)
    }

    outcome = EpochsOutcome(server=server, clients=clients)
    records_before = 0
    for epoch in range(1, n_epochs + 1):
        end_time = epoch * epoch_length

        for review in result.reviews:
            if (epoch - 1) * epoch_length <= review.time < end_time:
                server.post_review(
                    review.user_id, review.entity_id, review.rating, review.time
                )

        for user in users:
            client = clients[user.user_id]
            trace = generate_trace(
                user.user_id, town, result, end_time, duty_cycled_policy(), seed=config.seed
            )
            client.observe_trace(trace, now=end_time)
            client.sync(network, server.issuer, now=end_time)

        server.receive_all(network.deliveries_until(end_time + 2 * DAY))
        maintenance = server.run_maintenance()

        outcome.reports.append(
            EpochReport(
                epoch=epoch,
                end_time=end_time,
                new_records=server.history_store.n_records - records_before,
                total_records=server.history_store.n_records,
                total_histories=server.history_store.n_histories,
                n_opinions=server.n_opinions,
                envelopes_deferred=sum(c.n_pending for c in clients.values()),
                maintenance=maintenance,
            )
        )
        records_before = server.history_store.n_records
    return outcome
