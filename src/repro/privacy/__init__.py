"""Privacy machinery: blind tokens, unlinkable storage, anonymous uploads.

Implements Section 4.2 end to end — the ``hash(Ru, e)`` record identifiers,
the update-only server-side history store, the asynchronous per-entity
upload channels over a batching anonymity network, and Chaum blind-signature
rate-limiting tokens — plus the adversaries that motivate each mechanism.
"""

from repro.privacy.anonymity import (
    AnonymityNetwork,
    Delivery,
    batching_network,
    immediate_network,
)
from repro.privacy.attacks import (
    CorruptionReport,
    LinkageReport,
    TimingReport,
    corruption_attack,
    expected_guesses_for_collision,
    linkage_attack,
    timing_attack,
)
from repro.privacy.blindsig import (
    BlindingResult,
    RSAKeyPair,
    RSAPublicKey,
    blind,
    generate_keypair,
    generate_prime,
    is_probable_prime,
    unblind,
)
from repro.privacy.history_store import (
    FoldedStats,
    HistoryStore,
    InteractionHistory,
    InteractionUpload,
    StoredRecord,
)
from repro.privacy.identifiers import DeviceIdentity, generate_user_secret
from repro.privacy.tokens import (
    IssuerUnavailable,
    QuotaExceeded,
    TokenIssuer,
    TokenRedeemer,
    TokenWallet,
    UploadToken,
)
from repro.privacy.uploads import (
    RetransmitPolicy,
    UploadConfig,
    UploadScheduler,
    hardened_config,
    naive_config,
)

__all__ = [
    "AnonymityNetwork",
    "BlindingResult",
    "CorruptionReport",
    "Delivery",
    "DeviceIdentity",
    "FoldedStats",
    "HistoryStore",
    "InteractionHistory",
    "InteractionUpload",
    "IssuerUnavailable",
    "LinkageReport",
    "QuotaExceeded",
    "RSAKeyPair",
    "RSAPublicKey",
    "RetransmitPolicy",
    "StoredRecord",
    "TimingReport",
    "TokenIssuer",
    "TokenRedeemer",
    "TokenWallet",
    "UploadConfig",
    "UploadScheduler",
    "UploadToken",
    "batching_network",
    "blind",
    "corruption_attack",
    "expected_guesses_for_collision",
    "generate_keypair",
    "generate_prime",
    "generate_user_secret",
    "hardened_config",
    "immediate_network",
    "is_probable_prime",
    "linkage_attack",
    "naive_config",
    "timing_attack",
    "unblind",
]
