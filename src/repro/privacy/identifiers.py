"""Device-side record identifiers: the paper's ``hash(Ru, e)`` scheme.

When a user installs the RSP's app it picks a random secret ``Ru`` and
stores only that.  The history of interactions with entity ``e`` lives at
the server under identifier ``hash(Ru, e)``; the device recomputes the
identifier on demand and never stores an (entity -> identifier) map, so a
stolen phone reveals ``Ru`` but not which entities the user interacted
with, and the server cannot link two identifiers to the same user.

The properties this module guarantees (tested in
``tests/privacy/test_identifiers.py``):

* deterministic — the same device always addresses the same history;
* unlinkable — identifiers for different entities share no structure;
* non-invertible — an identifier reveals neither ``Ru`` nor the entity;
* update-only safe — knowing ``Ru`` alone does not let an attacker *read*
  anything, because the server exposes no retrieval API (see
  :mod:`repro.privacy.history_store`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.hashing import record_id
from repro.util.rng import make_rng


def generate_user_secret(seed: int, label: str = "install") -> int:
    """Draw the 256-bit install-time secret ``Ru``."""
    rng = make_rng(seed, f"user-secret/{label}")
    return int.from_bytes(rng.bytes(32), "big")


@dataclass(frozen=True)
class DeviceIdentity:
    """The secret a device holds, and the identifiers it derives.

    ``device_id`` is the *issuance-side* identity (used only when
    requesting rate-limited tokens); ``secret`` never leaves the device.
    """

    device_id: str
    secret: int

    @classmethod
    def create(cls, device_id: str, seed: int) -> "DeviceIdentity":
        return cls(device_id=device_id, secret=generate_user_secret(seed, device_id))

    def history_id(self, entity_id: str) -> str:
        """The server-side identifier of this device's history for one entity."""
        return record_id(self.secret, entity_id)
