"""Server-side, update-only, unlinkable interaction-history storage.

Section 4.2's storage design, implemented:

* every (user, entity) pair's history lives under an opaque identifier
  ``hash(Ru, e)`` — the server cannot tell which histories share a user;
* the public API is **update-only**: there is deliberately no method that
  retrieves a history by identifier, so even an attacker who learns a
  user's ``Ru`` can corrupt nothing and read nothing (appends require a
  valid rate-limited token, and reads do not exist);
* aggregation is server-internal and per-entity: the recommendation
  summaries and fraud profiles iterate *within* an entity's histories,
  which is exactly the access pattern the paper's design permits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.privacy.tokens import TokenRedeemer, UploadToken


@dataclass(frozen=True)
class InteractionUpload:
    """One anonymously uploaded interaction record.

    Carries the features Section 4.2 enumerates (duration, travel distance,
    and — via consecutive records — time since the last interaction).
    ``event_time`` is quantized client-side (see
    :mod:`repro.privacy.uploads`) so it reveals coarse scheduling only.
    """

    history_id: str
    entity_id: str
    interaction_type: str  # "visit" | "call"
    event_time: float
    duration: float
    travel_km: float

    def __post_init__(self) -> None:
        if self.duration < 0 or self.travel_km < 0:
            raise ValueError("duration and travel must be non-negative")


@dataclass
class StoredRecord:
    """An accepted upload plus the server's own arrival timestamp."""

    upload: InteractionUpload
    arrival_time: float


@dataclass
class FoldedStats:
    """Streaming summary of records compacted out of a history.

    Histories for rarely used providers span years (Section 4.2); storing
    every record forever is neither necessary nor aligned with
    data-minimization.  When a history exceeds the store's per-history
    record bound, its oldest records are folded into these running
    aggregates — enough to preserve the interaction *count* (what
    influence weighting and the Figure 3 histograms need) and coarse
    temporal extent, while the raw recent window keeps feeding gap/duration
    statistics.
    """

    n: int = 0
    earliest_event_time: float = float("inf")
    latest_event_time: float = float("-inf")
    duration_sum: float = 0.0
    travel_sum: float = 0.0

    def fold(self, record: "StoredRecord") -> None:
        self.n += 1
        self.earliest_event_time = min(self.earliest_event_time, record.upload.event_time)
        self.latest_event_time = max(self.latest_event_time, record.upload.event_time)
        self.duration_sum += record.upload.duration
        self.travel_sum += record.upload.travel_km


@dataclass
class InteractionHistory:
    """The record sequence stored under one ``hash(Ru, e)`` identifier.

    ``records`` holds the raw recent window; ``folded`` summarizes any
    older records compacted away.  Gap/duration/travel statistics come
    from the raw window only (documented behaviour the fraud profiles
    rely on); counts and temporal extent include the folded past.
    """

    history_id: str
    entity_id: str
    records: list[StoredRecord] = field(default_factory=list)
    folded: FoldedStats | None = None

    @property
    def n_interactions(self) -> int:
        return len(self.records) + (self.folded.n if self.folded else 0)

    @property
    def n_raw_records(self) -> int:
        return len(self.records)

    @property
    def first_event_time(self) -> float:
        candidates = [r.upload.event_time for r in self.records]
        if self.folded and self.folded.n:
            candidates.append(self.folded.earliest_event_time)
        return min(candidates) if candidates else float("nan")

    def event_times(self) -> list[float]:
        return [record.upload.event_time for record in self.records]

    def gaps(self) -> list[float]:
        """Times between consecutive interactions — the fraud-profile feature."""
        times = sorted(self.event_times())
        return [b - a for a, b in zip(times, times[1:])]

    def durations(self) -> list[float]:
        return [record.upload.duration for record in self.records]

    def travel_kms(self) -> list[float]:
        return [record.upload.travel_km for record in self.records]


class HistoryStore:
    """The RSP's anonymous history database.

    ``max_records_per_history`` bounds per-history raw storage: when a
    history grows past the bound its oldest records are folded into
    :class:`FoldedStats`.  ``None`` keeps everything (the default; the A8
    benchmark quantifies the trade-off).
    """

    def __init__(
        self,
        redeemer: TokenRedeemer | None = None,
        max_records_per_history: int | None = None,
    ) -> None:
        if max_records_per_history is not None and max_records_per_history < 2:
            raise ValueError("max_records_per_history must be >= 2 (or None)")
        self._histories: dict[str, InteractionHistory] = {}
        self._by_entity: dict[str, list[InteractionHistory]] = {}
        self._redeemer = redeemer
        self.max_records_per_history = max_records_per_history
        self.rejected_uploads = 0
        self.folded_records = 0

    def append(
        self,
        upload: InteractionUpload,
        arrival_time: float,
        token: UploadToken | None = None,
    ) -> bool:
        """Append a record to the history named by ``upload.history_id``.

        When the store was built with a token redeemer, uploads without a
        valid, unspent token are rejected.  Returns True if stored.
        """
        if self._redeemer is not None:
            if token is None or not self._redeemer.redeem(token):
                self.rejected_uploads += 1
                return False
        history = self._histories.get(upload.history_id)
        if history is None:
            history = InteractionHistory(
                history_id=upload.history_id, entity_id=upload.entity_id
            )
            self._histories[upload.history_id] = history
            self._by_entity.setdefault(upload.entity_id, []).append(history)
        elif history.entity_id != upload.entity_id:
            # An identifier is bound to one entity at creation; a mismatch
            # is either a client bug or a corruption attempt.
            self.rejected_uploads += 1
            return False
        history.records.append(StoredRecord(upload=upload, arrival_time=arrival_time))
        if (
            self.max_records_per_history is not None
            and len(history.records) > self.max_records_per_history
        ):
            # Fold the oldest record (by event time) into the summary.
            oldest_index = min(
                range(len(history.records)),
                key=lambda i: history.records[i].upload.event_time,
            )
            oldest = history.records.pop(oldest_index)
            if history.folded is None:
                history.folded = FoldedStats()
            history.folded.fold(oldest)
            self.folded_records += 1
        return True

    def adopt(self, history: InteractionHistory) -> None:
        """Register a fully built history during snapshot restore.

        This is the recovery path's bulk-load door, not an upload path:
        it performs no token check and accepts a complete
        :class:`InteractionHistory` (records, folded stats and all)
        exactly as a snapshot serialized it.  The identifier must be
        fresh — recovery restores into an empty store, so a collision
        means the snapshot or the restore routing is broken, and loading
        on top of it would silently merge two users' histories.
        """
        if history.history_id in self._histories:
            raise ValueError(
                f"history {history.history_id!r} already present; "
                "adopt() only loads into a fresh store"
            )
        self._histories[history.history_id] = history
        self._by_entity.setdefault(history.entity_id, []).append(history)

    def release(self, history_id: str) -> InteractionHistory:
        """Detach and return one history, for resharding migration.

        The inverse of :meth:`adopt`: the history leaves this store whole
        (records, folded stats and all) so the destination shard adopts
        exactly the state this shard held.  Releasing an unknown id is a
        routing bug, not a soft miss, hence the raise.
        """
        history = self._histories.pop(history_id, None)
        if history is None:
            raise KeyError(f"history {history_id!r} not in this store")
        bucket = self._by_entity[history.entity_id]
        bucket.remove(history)
        if not bucket:
            del self._by_entity[history.entity_id]
        return history

    # -- server-internal aggregation access ------------------------------
    #
    # There is intentionally NO ``get(history_id)`` method: the service
    # never needs one (aggregation is per-entity) and its absence is what
    # makes a leaked Ru useless for reading a user's past.

    def histories_for_entity(self, entity_id: str) -> list[InteractionHistory]:
        """All anonymous histories attached to one entity."""
        return list(self._by_entity.get(entity_id, []))

    def bound_entity(self, history_id: str) -> str | None:
        """The entity a history identifier is bound to, or ``None``.

        This exposes only the binding metadata (which entity a slot
        belongs to) — never the records — so it does not weaken the
        no-``get(history_id)`` stance above: a leaked Ru still cannot
        read anyone's past through it.  The server uses it to classify
        cross-entity mismatches at intake and to find the owner entity
        of an opinion slot for dirty tracking.
        """
        history = self._histories.get(history_id)
        return None if history is None else history.entity_id

    def all_histories(self) -> list[InteractionHistory]:
        """Every history — used by fraud profiling, which merges across
        entities of the same kind without ever naming users."""
        return list(self._histories.values())

    @property
    def n_histories(self) -> int:
        return len(self._histories)

    @property
    def n_records(self) -> int:
        """Total interactions recorded, including folded ones."""
        return sum(h.n_interactions for h in self._histories.values())

    @property
    def n_raw_records(self) -> int:
        """Raw records currently held in memory (excludes folded)."""
        return sum(h.n_raw_records for h in self._histories.values())

    def entity_ids(self) -> list[str]:
        return list(self._by_entity)
