"""Rate-limited upload tokens built on blind signatures.

The issuance side sees devices (it must, to rate-limit per device); the
redemption side sees only anonymous uploads.  Blindness guarantees the two
sides cannot be joined: a redeemed token is cryptographically unlinkable to
the issuance request that produced it.

Flow:

* A device calls :meth:`TokenIssuer.issue` with blinded token identifiers;
  the issuer enforces a per-device daily quota and signs blindly.
* The device unblinds and holds :class:`UploadToken` objects.
* Every anonymous upload presents one token; :class:`TokenRedeemer`
  verifies the signature and rejects double-spends.

The quota bounds history-corruption attempts: even a malicious device can
inject at most ``quota_per_day`` bogus records per day (Section 4.2), and
each of those still needs a 2^-256 record-identifier collision to corrupt
anyone else's history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.privacy.blindsig import (
    BlindingResult,
    RSAKeyPair,
    blind,
    generate_keypair,
    unblind,
)
from repro.telemetry import NULL, Telemetry
from repro.util.clock import DAY
from repro.util.rng import make_rng


@dataclass(frozen=True)
class UploadToken:
    """A spendable upload token: an identifier and its RSA signature."""

    token_id: bytes
    signature: int


class QuotaExceeded(Exception):
    """The device asked for more tokens than its rate limit allows."""


class IssuerUnavailable(Exception):
    """The token-issuing endpoint is down; retry later with backoff.

    Unlike the anonymous upload path, issuance is an attributed
    request/response exchange, so the client *can* observe this failure
    and retry — see :meth:`repro.client.app.RSPClient.acquire_tokens`.
    """


class TokenIssuer:
    """The RSP's token-issuing endpoint (sees device identities)."""

    def __init__(self, quota_per_day: int = 48, key_seed: int = 0, key_bits: int = 512) -> None:
        if quota_per_day < 1:
            raise ValueError("quota must be >= 1")
        self.quota_per_day = quota_per_day
        #: Optional harness hook with ``issuer_down(now) -> bool``; the
        #: issuer never imports the fault harness itself.
        self.fault_hook = None
        #: Optional durability hook (duck-typed like ``fault_hook``);
        #: successful issuances journal their quota-window tick so a
        #: restarted issuer cannot be double-drained by replayed requests.
        self.journal = None
        self.refused_while_down = 0
        #: Aggregate-only observability sink — issuance volumes and
        #: refusal reasons, never device identities.
        self.telemetry: Telemetry = NULL
        self._keypair: RSAKeyPair = generate_keypair(bits=key_bits, seed=key_seed)
        self._issued_today: dict[str, int] = {}
        self._window_start: dict[str, float] = {}

    @property
    def public_key(self):
        return self._keypair.public

    def issue(self, device_id: str, blinded_values: list[int], now: float) -> list[int]:
        """Blind-sign the given values, enforcing the per-device quota.

        Raises :class:`QuotaExceeded` if the device would exceed its daily
        allowance; no partial issuance happens in that case.  Raises
        :class:`IssuerUnavailable` during an injected outage window —
        before any quota accounting, so a refused attempt costs no quota.
        """
        if self.fault_hook is not None and self.fault_hook.issuer_down(now):
            self.refused_while_down += 1
            self.telemetry.inc("issuer.refusals", reason="outage")
            raise IssuerUnavailable(f"token issuer down at t={now:.0f}")
        window = self._window_start.get(device_id)
        if window is None or now - window >= DAY:
            self._window_start[device_id] = now
            self._issued_today[device_id] = 0
        used = self._issued_today[device_id]
        if used + len(blinded_values) > self.quota_per_day:
            self.telemetry.inc("issuer.refusals", reason="quota")
            raise QuotaExceeded(
                f"device {device_id} requested {len(blinded_values)} tokens "
                f"with {self.quota_per_day - used} remaining today"
            )
        self._issued_today[device_id] = used + len(blinded_values)
        if self.journal is not None:
            self.journal.log_issue(device_id, len(blinded_values), now)
        self.telemetry.inc("issuer.tokens.issued", len(blinded_values))
        return [self._keypair.sign_raw(value) for value in blinded_values]

    def remaining_quota(self, device_id: str, now: float) -> int:
        window = self._window_start.get(device_id)
        if window is None or now - window >= DAY:
            return self.quota_per_day
        return self.quota_per_day - self._issued_today.get(device_id, 0)


class TokenRedeemer:
    """The RSP's anonymous-upload endpoint (sees only tokens)."""

    def __init__(self, public_key) -> None:
        self._public = public_key
        self._spent: set[bytes] = set()

    def redeem(self, token: UploadToken) -> bool:
        """Accept a token exactly once; forged and replayed tokens fail."""
        if token.token_id in self._spent:
            return False
        if not self._public.verify(token.token_id, token.signature):
            return False
        self._spent.add(token.token_id)
        return True

    @property
    def n_redeemed(self) -> int:
        return len(self._spent)


@dataclass
class TokenWallet:
    """Client-side token management: mint, get signed, spend."""

    device_id: str
    seed: int = 0
    _pending: list[BlindingResult] = field(default_factory=list)
    _tokens: list[UploadToken] = field(default_factory=list)
    _minted: int = 0
    #: Aggregate-only sink; counts blinding operations, never token ids.
    telemetry: Telemetry = field(default=NULL, repr=False, compare=False)

    def mint(self, public_key, count: int) -> list[int]:
        """Create ``count`` fresh blinded token identifiers to send for signing."""
        if count < 1:
            raise ValueError("count must be >= 1")
        rng = make_rng(self.seed, f"wallet/{self.device_id}")
        blinded: list[int] = []
        for _ in range(count):
            token_id = bytes(rng.bytes(32)) + self._minted.to_bytes(8, "big")
            self._minted += 1
            result = blind(
                public_key,
                token_id,
                seed=int(rng.integers(0, 2**62)),
                telemetry=self.telemetry,
            )
            self._pending.append(result)
            blinded.append(result.blinded)
        self.telemetry.inc("client.tokens.blinded", count)
        return blinded

    def accept_signatures(self, public_key, blind_signatures: list[int]) -> None:
        """Unblind the issuer's responses into spendable tokens."""
        if len(blind_signatures) > len(self._pending):
            raise ValueError("more signatures than pending blindings")
        for signature in blind_signatures:
            blinding = self._pending.pop(0)
            token = UploadToken(
                token_id=blinding.message,
                signature=unblind(
                    public_key, blinding, signature, telemetry=self.telemetry
                ),
            )
            if not public_key.verify(token.token_id, token.signature):
                raise ValueError("issuer returned an invalid signature")
            self._tokens.append(token)

    def discard_pending(self, blinded_values: list[int]) -> int:
        """Roll back blindings whose issuance failed; returns how many.

        :meth:`accept_signatures` matches signatures to pending blindings
        strictly FIFO, so a failed issuance (quota refusal, issuer outage)
        MUST remove its blinded candidates — otherwise the next successful
        issuance unblinds new signatures with the orphaned factors and
        every token it yields fails verification.
        """
        doomed = set(blinded_values)
        before = len(self._pending)
        self._pending = [b for b in self._pending if b.blinded not in doomed]
        return before - len(self._pending)

    def spend(self) -> UploadToken:
        """Take one token from the wallet."""
        if not self._tokens:
            raise ValueError("wallet is empty")
        return self._tokens.pop(0)

    @property
    def n_pending_blindings(self) -> int:
        return len(self._pending)

    @property
    def balance(self) -> int:
        return len(self._tokens)
