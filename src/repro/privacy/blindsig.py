"""Chaum RSA blind signatures, implemented from first principles.

Section 4.2's defense against history corruption: the RSP "hands out
blindly signed tokens at a limited rate to every device and requires that
every device present a valid token when anonymously uploading".  Blindness
is essential — if the RSP could recognize a token at redemption time it
could link the anonymous upload back to the device it issued the token to.

This is the textbook protocol from Chaum (CRYPTO '83), the paper's [16]:

1. The signer publishes an RSA key ``(n, e)`` and keeps ``d``.
2. The client picks a random token identifier ``m`` and a blinding factor
   ``r`` coprime to ``n``, and submits ``blinded = H(m) * r^e mod n``.
3. The signer returns ``blinded^d mod n = H(m)^d * r mod n`` — it signs
   without seeing ``H(m)``.
4. The client divides by ``r`` to obtain ``s = H(m)^d``, a standard RSA
   signature over the token that the signer has never seen.
5. At redemption anyone can check ``s^e == H(m) mod n``.

Implementation notes: Miller–Rabin primality with deterministic bases valid
below 3.3 * 10^24 plus random rounds above, full-domain-style hashing into
``Z_n`` via SHA-256, and modest default key sizes (512-bit primes) because
this is a simulation substrate, not transport security.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.telemetry import NULL, Telemetry
from repro.util.rng import make_rng

#: Deterministic Miller–Rabin bases: exact for all n < 3,317,044,064,679,887,385,961,981.
_DETERMINISTIC_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def is_probable_prime(n: int, rng_seed: int = 0) -> bool:
    """Miller–Rabin primality test.

    Deterministic (exact) for n below ~3.3e24 via the fixed base set;
    for larger n the fixed bases are augmented with 16 random rounds,
    giving an error probability below 4^-16.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witnesses() -> list[int]:
        bases = [b for b in _DETERMINISTIC_BASES if b < n - 1]
        if n >= 3_317_044_064_679_887_385_961_981:
            gen = make_rng(rng_seed, f"miller-rabin/{n % (2**61)}")
            bases += [int(gen.integers(2, 2**62)) % (n - 3) + 2 for _ in range(16)]
        return bases

    for a in witnesses():
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng_seed: int) -> int:
    """Generate a random prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("bits must be >= 8")
    gen = make_rng(rng_seed, f"prime/{bits}")
    while True:
        candidate = int.from_bytes(gen.bytes(bits // 8 + 1), "big")
        candidate |= 1  # odd
        candidate |= 1 << (bits - 1)  # full bit length
        candidate &= (1 << bits) - 1
        if is_probable_prime(candidate, rng_seed):
            return candidate


@dataclass(frozen=True)
class RSAPublicKey:
    n: int
    e: int

    def hash_to_group(self, message: bytes) -> int:
        """Full-domain-ish hash of a message into Z_n (SHA-256 chained)."""
        target_bytes = (self.n.bit_length() + 7) // 8
        material = b""
        counter = 0
        while len(material) < target_bytes:
            material += hashlib.sha256(counter.to_bytes(4, "big") + message).digest()
            counter += 1
        return int.from_bytes(material[:target_bytes], "big") % self.n

    def verify(self, message: bytes, signature: int) -> bool:
        """Check that ``signature`` is a valid RSA signature over ``message``."""
        if not 0 < signature < self.n:
            return False
        return pow(signature, self.e, self.n) == self.hash_to_group(message)


@dataclass(frozen=True)
class RSAKeyPair:
    public: RSAPublicKey
    d: int

    def sign_raw(self, value: int) -> int:
        """Raw RSA exponentiation — used by the signer on *blinded* values.

        The signer never learns what it is signing; that is the point.
        """
        if not 0 <= value < self.public.n:
            raise ValueError("value out of range")
        return pow(value, self.d, self.public.n)


def generate_keypair(bits: int = 512, seed: int = 0, e: int = 65537) -> RSAKeyPair:
    """Generate an RSA keypair with ``bits``-bit primes (2*bits-bit modulus)."""
    p = generate_prime(bits, seed)
    q = generate_prime(bits, seed + 1)
    while q == p:
        q = generate_prime(bits, seed + 2)
    n = p * q
    phi = (p - 1) * (q - 1)
    if math.gcd(e, phi) != 1:
        # Rare with e = 65537; fall back to a nearby seed.
        return generate_keypair(bits, seed + 7, e)
    d = pow(e, -1, phi)
    return RSAKeyPair(public=RSAPublicKey(n=n, e=e), d=d)


@dataclass(frozen=True)
class BlindingResult:
    """Client-side state of one blinding operation."""

    message: bytes
    blinded: int
    unblinder: int  # r^{-1} mod n


def blind(
    public: RSAPublicKey,
    message: bytes,
    seed: int,
    telemetry: Telemetry = NULL,
) -> BlindingResult:
    """Blind a message for signing: ``H(m) * r^e mod n``.

    ``telemetry`` counts the operation (aggregate volume only — the
    message, factor, and blinded value never reach a label).
    """
    gen = make_rng(seed, "blinding")
    n = public.n
    while True:
        r = int.from_bytes(gen.bytes((n.bit_length() + 7) // 8), "big") % n
        if r > 1 and math.gcd(r, n) == 1:
            break
    h = public.hash_to_group(message)
    blinded = (h * pow(r, public.e, n)) % n
    telemetry.inc("blindsig.blind_ops")
    return BlindingResult(message=message, blinded=blinded, unblinder=pow(r, -1, n))


def unblind(
    public: RSAPublicKey,
    blinding: BlindingResult,
    blind_signature: int,
    telemetry: Telemetry = NULL,
) -> int:
    """Recover the real signature: ``blind_signature * r^{-1} mod n``."""
    telemetry.inc("blindsig.unblind_ops")
    return (blind_signature * blinding.unblinder) % public.n
