"""De-anonymization attacks against the privacy layer.

The paper claims its design resists an RSP that tries to learn which
entities a user interacted with ([24], [25], [15] are its cautionary
citations).  This module implements the adversary so the claim is
measurable.  All attacks run from the *server's observation point*: the
deliveries coming out of the anonymity network (payload, arrival time,
channel tag) — nothing the real RSP would not have.  Ground truth enters
only for scoring.

* :func:`linkage_attack` — decide which anonymous histories belong to the
  same user, using channel-tag reuse.  Defeats the naive single-channel
  client; blind against per-upload channels.
* :func:`timing_attack` — attribute each history to a user by correlating
  record arrival times with users' physically observable activity (the
  strongest realistic side channel).  Defeats immediate uploads; collapses
  to guessing under asynchronous batched uploads.
* :func:`corruption_attack` — try to append garbage to other users'
  histories by guessing record identifiers; succeeds with probability
  ``attempts * n_histories / 2**256``, i.e. never.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import HistoryStore, InteractionUpload
from repro.privacy.tokens import UploadToken
from repro.util.rng import make_rng


# --------------------------------------------------------------- linkage


@dataclass(frozen=True)
class LinkageReport:
    """Pairwise linkage quality over anonymous histories."""

    n_histories: int
    n_same_user_pairs: int
    n_predicted_pairs: int
    n_correct_pairs: int

    @property
    def recall(self) -> float:
        """Fraction of true same-user history pairs the adversary linked."""
        if self.n_same_user_pairs == 0:
            return 0.0
        return self.n_correct_pairs / self.n_same_user_pairs

    @property
    def precision(self) -> float:
        if self.n_predicted_pairs == 0:
            return 1.0
        return self.n_correct_pairs / self.n_predicted_pairs


def linkage_attack(
    deliveries: list[Delivery[InteractionUpload]],
    true_owner: dict[str, str],
) -> LinkageReport:
    """Link histories through shared channel tags.

    ``true_owner`` maps history_id -> user_id and is used only to score the
    adversary's output.
    """
    tags_by_history: dict[str, set[str]] = defaultdict(set)
    for delivery in deliveries:
        tags_by_history[delivery.payload.history_id].add(delivery.channel_tag)

    histories = sorted(tags_by_history)
    predicted: set[tuple[str, str]] = set()
    for i, a in enumerate(histories):
        for b in histories[i + 1 :]:
            if tags_by_history[a] & tags_by_history[b]:
                predicted.add((a, b))

    same_user: set[tuple[str, str]] = set()
    for i, a in enumerate(histories):
        for b in histories[i + 1 :]:
            if true_owner.get(a) is not None and true_owner.get(a) == true_owner.get(b):
                same_user.add((a, b))

    return LinkageReport(
        n_histories=len(histories),
        n_same_user_pairs=len(same_user),
        n_predicted_pairs=len(predicted),
        n_correct_pairs=len(predicted & same_user),
    )


# ---------------------------------------------------------------- timing


@dataclass(frozen=True)
class TimingReport:
    """History-to-user attribution quality."""

    n_histories: int
    n_attributed: int
    n_correct: int
    n_users: int

    @property
    def accuracy(self) -> float:
        """Fraction of histories attributed to the right user."""
        if self.n_histories == 0:
            return 0.0
        return self.n_correct / self.n_histories

    @property
    def random_baseline(self) -> float:
        """Accuracy of uniform guessing among users."""
        if self.n_users == 0:
            return 0.0
        return 1.0 / self.n_users


def timing_attack(
    deliveries: list[Delivery[InteractionUpload]],
    user_activity_times: dict[str, list[float]],
    true_owner: dict[str, str],
    window: float = 120.0,
) -> TimingReport:
    """Attribute each history by arrival-time/activity correlation.

    The adversary assumes uploads happen within ``window`` seconds after an
    interaction ends (true for the immediate-upload strawman).  For each
    history it scores every user by how many record arrivals land shortly
    after one of that user's physical interactions, attributing the history
    to the best-scoring user (ties broken as failures: an adversary who
    cannot decide has not de-anonymized anyone).
    """
    arrivals_by_history: dict[str, list[float]] = defaultdict(list)
    for delivery in deliveries:
        arrivals_by_history[delivery.payload.history_id].append(delivery.arrival_time)

    sorted_activity = {
        user: sorted(times) for user, times in user_activity_times.items()
    }

    def matches(user_times: list[float], arrival: float) -> bool:
        import bisect

        index = bisect.bisect_right(user_times, arrival)
        # Any activity ending within [arrival - window, arrival]?
        while index > 0:
            t = user_times[index - 1]
            if t < arrival - window:
                return False
            if t <= arrival:
                return True
            index -= 1
        return False

    n_attributed = 0
    n_correct = 0
    for history_id, arrivals in arrivals_by_history.items():
        scores: dict[str, int] = {}
        for user, times in sorted_activity.items():
            scores[user] = sum(1 for arrival in arrivals if matches(times, arrival))
        best = max(scores.values(), default=0)
        if best == 0:
            continue
        winners = [user for user, score in scores.items() if score == best]
        if len(winners) != 1:
            continue  # ambiguous: no attribution
        n_attributed += 1
        if winners[0] == true_owner.get(history_id):
            n_correct += 1

    return TimingReport(
        n_histories=len(arrivals_by_history),
        n_attributed=n_attributed,
        n_correct=n_correct,
        n_users=len(user_activity_times),
    )


# ------------------------------------------------------------ corruption


@dataclass(frozen=True)
class CorruptionReport:
    """Outcome of a record-identifier guessing campaign."""

    attempts: int
    collisions: int
    analytic_success_probability: float


def corruption_attack(
    store: HistoryStore,
    target_entity: str,
    attempts: int,
    seed: int = 0,
    tokens: list[UploadToken] | None = None,
    arrival_time: float = 0.0,
) -> CorruptionReport:
    """Guess record identifiers and try to pollute existing histories.

    Each attempt draws a random 256-bit secret, derives ``hash(Ru', e)``,
    and appends a bogus record.  A *collision* means the guessed identifier
    already existed (someone's history was actually polluted); creating a
    fresh junk history is not a corruption.  With a token-checking store,
    attempts beyond the supplied token budget are simply rejected.
    """
    from repro.util.hashing import record_id

    existing = {h.history_id for h in store.all_histories()}
    rng = make_rng(seed, "corruption-attack")
    collisions = 0
    token_iter = iter(tokens or [])
    for _ in range(attempts):
        guess = int.from_bytes(rng.bytes(32), "big")
        history_id = record_id(guess, target_entity)
        if history_id in existing:
            collisions += 1
        upload = InteractionUpload(
            history_id=history_id,
            entity_id=target_entity,
            interaction_type="visit",
            event_time=arrival_time,
            duration=1800.0,
            travel_km=1.0,
        )
        store.append(upload, arrival_time=arrival_time, token=next(token_iter, None))

    analytic = min(1.0, attempts * len(existing) / float(2**256))
    return CorruptionReport(
        attempts=attempts, collisions=collisions, analytic_success_probability=analytic
    )


def expected_guesses_for_collision(n_histories: int) -> float:
    """Expected identifier guesses before hitting any existing history."""
    if n_histories <= 0:
        return math.inf
    return float(2**256) / n_histories
