"""The anonymity network between clients and the RSP's upload endpoint.

Section 4.2 *assumes* "the underlying anonymity network ensures that any
two anonymous channels are unlinkable"; this module implements that
assumption so it can be exercised and attacked.  Two delivery models:

* :func:`immediate_network` — a strawman direct connection: messages
  arrive in submission order after a small network latency, and each
  message carries whatever channel tag the client attached.  Timing and
  channel metadata leak everything (the A3 benchmark shows this).
* :func:`batching_network` — a batching mix: messages are buffered,
  released only at batch boundaries, shuffled within each batch, and
  delivered with an identical arrival timestamp.  Within a batch the
  server learns nothing from timing or order.

The network is metadata-honest: it never inspects payloads, and the
``Delivery`` objects it hands the server are exactly what a real RSP would
observe (payload + arrival time + client-chosen tag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, TypeVar

from repro.telemetry import NULL, Telemetry
from repro.telemetry.catalog import MIX_BATCH_BUCKETS
from repro.util.rng import make_rng

P = TypeVar("P")


@dataclass(frozen=True)
class Delivery(Generic[P]):
    """What the server observes for one delivered message."""

    payload: P
    arrival_time: float
    channel_tag: str


@dataclass
class _Pending(Generic[P]):
    payload: P
    submit_time: float
    channel_tag: str


class AnonymityNetwork(Generic[P]):
    """A message pipe with configurable batching.

    ``batch_interval`` of 0 models a direct connection (immediate mode);
    positive values buffer submissions and flush them—shuffled—at batch
    boundaries.
    """

    def __init__(
        self,
        batch_interval: float = 0.0,
        latency: float = 2.0,
        seed: int = 0,
        drop_rate: float = 0.0,
        fault_hook=None,
    ) -> None:
        """``drop_rate`` injects message loss at submission time.

        Anonymity cuts both ways: an unlinkable, fire-and-forget channel
        cannot carry acknowledgements back to the sender (an ack would
        link the upload to the device), so a dropped record is simply
        gone.  The design degrades gracefully — each loss removes one
        interaction record or one opinion, never corrupts state — and the
        failure-injection tests pin that down.

        ``fault_hook`` is an optional harness-installed object whose
        ``network_fates(submit_time)`` returns the effective submit times
        for one submission (empty = lost, >1 = duplicated).  The network
        never imports the fault harness; it only calls what it is handed.
        """
        if batch_interval < 0 or latency < 0:
            raise ValueError("intervals must be non-negative")
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError("drop_rate must lie in [0, 1]")
        self.batch_interval = batch_interval
        self.latency = latency
        self.drop_rate = drop_rate
        self.fault_hook = fault_hook
        self.n_dropped = 0
        self.n_duplicated = 0
        #: Aggregate-only observability sink.  The mix reports batch
        #: sizes and queue depth — never channel tags or payload shapes.
        self.telemetry: Telemetry = NULL
        self._rng = make_rng(seed, "anonymity-network")
        self._pending: list[_Pending[P]] = []
        self._delivered: list[Delivery[P]] = []
        self._last_flush = 0.0

    @property
    def is_batching(self) -> bool:
        return self.batch_interval > 0

    def submit(self, payload: P, submit_time: float, channel_tag: str) -> None:
        """A client hands the network one message (possibly lost in transit)."""
        self.telemetry.inc("mix.submissions")
        if self.drop_rate > 0 and self._rng.random() < self.drop_rate:
            self.n_dropped += 1
            self.telemetry.inc("mix.dropped")
            return
        if self.fault_hook is not None:
            fates = self.fault_hook.network_fates(submit_time)
            if not fates:
                self.n_dropped += 1
                self.telemetry.inc("mix.dropped")
                return
            self.n_duplicated += len(fates) - 1
            if len(fates) > 1:
                self.telemetry.inc("mix.duplicated", len(fates) - 1)
            for effective_time in fates:
                self._pending.append(
                    _Pending(
                        payload=payload,
                        submit_time=effective_time,
                        channel_tag=channel_tag,
                    )
                )
            return
        self._pending.append(
            _Pending(payload=payload, submit_time=submit_time, channel_tag=channel_tag)
        )

    def deliveries_until(self, now: float) -> list[Delivery[P]]:
        """Flush and return everything the server receives by ``now``."""
        out: list[Delivery[P]] = []
        if not self.is_batching:
            ready = [p for p in self._pending if p.submit_time + self.latency <= now]
            self._pending = [p for p in self._pending if p.submit_time + self.latency > now]
            ready.sort(key=lambda p: p.submit_time)
            out = [
                Delivery(
                    payload=p.payload,
                    arrival_time=p.submit_time + self.latency,
                    channel_tag=p.channel_tag,
                )
                for p in ready
            ]
        else:
            boundary = self._last_flush + self.batch_interval
            while boundary <= now:
                batch = [p for p in self._pending if p.submit_time < boundary]
                self._pending = [p for p in self._pending if p.submit_time >= boundary]
                if batch:
                    self.telemetry.observe(
                        "mix.batch_size", len(batch), buckets=MIX_BATCH_BUCKETS
                    )
                    order = self._rng.permutation(len(batch))
                    for index in order:
                        p = batch[int(index)]
                        out.append(
                            Delivery(
                                payload=p.payload,
                                arrival_time=boundary,
                                channel_tag=p.channel_tag,
                            )
                        )
                self._last_flush = boundary
                boundary += self.batch_interval
        self._delivered.extend(out)
        self.telemetry.set_gauge("mix.queue_depth", len(self._pending))
        return out

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    @property
    def n_delivered(self) -> int:
        return len(self._delivered)


def immediate_network(seed: int = 0) -> AnonymityNetwork:
    """The strawman: direct submission, order-preserving, low latency."""
    return AnonymityNetwork(batch_interval=0.0, latency=2.0, seed=seed)


def batching_network(batch_interval: float = 6 * 3600.0, seed: int = 0) -> AnonymityNetwork:
    """A batching mix flushing every ``batch_interval`` seconds."""
    return AnonymityNetwork(batch_interval=batch_interval, latency=0.0, seed=seed)
