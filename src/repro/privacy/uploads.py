"""Client-side upload scheduling: how inferences leave the device.

Section 4.2's prescriptions, each of which is a knob here so the attack
benchmarks can toggle it:

* **Asynchronous uploads** — "since there is no need for real-time
  dissemination ... an RSP's app can upload all of its inferences
  asynchronously, thereby preventing timing attacks."  Each record is
  submitted after a random delay of up to ``max_upload_delay``.
* **Independent channels** — "for every entity with which a user
  interacts, the app should upload its inferences on an independent
  anonymous channel."  In the hardened configuration every upload carries
  a fresh random channel tag; the naive configuration reuses one stable
  per-device tag, which is what a lazy implementation would do and what
  the linkage attack exploits.
* **Coarse event times** — feature usefulness needs inter-interaction
  gaps at day granularity, not second-precision timestamps; quantizing
  removes the cross-entity co-occurrence signal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.privacy.anonymity import AnonymityNetwork
from repro.privacy.history_store import InteractionUpload
from repro.privacy.identifiers import DeviceIdentity
from repro.sensing.resolution import ObservedInteraction
from repro.telemetry import NULL, Telemetry
from repro.telemetry.catalog import UPLOAD_DELAY_BUCKETS
from repro.util.clock import DAY, HOUR
from repro.util.rng import make_rng


@dataclass(frozen=True)
class UploadConfig:
    """Privacy posture of the upload path."""

    #: Maximum random delay before a record is submitted (0 = immediate).
    max_upload_delay: float = 24 * HOUR
    #: Event-time quantum; timestamps are floored to multiples of this.
    time_granularity: float = DAY
    #: True = one stable channel tag per device (the naive design the
    #: linkage attack defeats); False = fresh tag per upload.
    reuse_channel_tag: bool = False

    def __post_init__(self) -> None:
        if self.max_upload_delay < 0:
            raise ValueError("delay must be non-negative")
        if self.time_granularity <= 0:
            raise ValueError("granularity must be positive")


@dataclass(frozen=True)
class RetransmitPolicy:
    """Bounded re-sending of records over the ack-free anonymous channel.

    No acknowledgement ever comes back (an ack would link the upload to
    the device), so the client cannot know whether a record arrived.  The
    only safe recovery is to send each record up to ``max_attempts`` times
    total, each attempt in a fresh envelope — fresh token, fresh channel
    tag, re-randomized delay, *same* per-record nonce — and let the server
    suppress whichever copies survive in duplicate.  Attempts are spaced at
    least ``min_interval`` apart so copies ride different mix batches.
    """

    max_attempts: int = 2
    min_interval: float = 6 * HOUR

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.min_interval < 0:
            raise ValueError("min_interval must be non-negative")


def hardened_config() -> UploadConfig:
    """The paper's design: async, coarse timestamps, per-upload channels."""
    return UploadConfig(
        max_upload_delay=24 * HOUR, time_granularity=DAY, reuse_channel_tag=False
    )


def naive_config() -> UploadConfig:
    """The strawman: immediate, precise, one channel per device."""
    return UploadConfig(max_upload_delay=0.0, time_granularity=1.0, reuse_channel_tag=True)


class UploadScheduler:
    """Turns a device's observed interactions into network submissions."""

    def __init__(
        self,
        identity: DeviceIdentity,
        config: UploadConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.identity = identity
        self.config = config or hardened_config()
        self._rng = make_rng(seed, f"uploads/{identity.device_id}")
        self._stable_tag = f"chan-{identity.device_id}"
        #: Aggregate-only sink; observes delays, never tags or records.
        self.telemetry: Telemetry = NULL

    def rng_state(self) -> dict:
        """The scheduler's RNG state, for durable client checkpoints."""
        return self._rng.bit_generator.state

    def restore_rng_state(self, state: dict) -> None:
        """Resume the delay/channel-tag stream exactly where it stopped,
        so a crash–restore emits the same tags and delays the uncrashed
        client would have."""
        self._rng.bit_generator.state = state

    def _channel_tag(self) -> str:
        if self.config.reuse_channel_tag:
            return self._stable_tag
        return f"chan-{int(self._rng.integers(0, 2**62)):016x}"

    def build_upload(self, interaction: ObservedInteraction) -> InteractionUpload:
        """Convert one observed interaction into its anonymous record."""
        quantum = self.config.time_granularity
        return InteractionUpload(
            history_id=self.identity.history_id(interaction.entity_id),
            entity_id=interaction.entity_id,
            interaction_type=interaction.interaction_type.value,
            event_time=(interaction.time // quantum) * quantum,
            duration=interaction.duration,
            travel_km=interaction.travel_km,
        )

    def submit_payload(
        self,
        payload,
        base_time: float,
        network: AnonymityNetwork,
    ) -> None:
        """Submit one arbitrary payload with the configured privacy posture
        (random delay, fresh-or-stable channel tag).

        Used by the client app to ship envelopes (interaction record +
        token, or opinion upload + token) through the same path.
        """
        delay = (
            float(self._rng.uniform(0, self.config.max_upload_delay))
            if self.config.max_upload_delay > 0
            else 0.0
        )
        self.telemetry.observe(
            "client.upload_delay", delay, buckets=UPLOAD_DELAY_BUCKETS
        )
        network.submit(
            payload=payload,
            submit_time=base_time + delay,
            channel_tag=self._channel_tag(),
        )

    def submit_all(
        self,
        interactions: list[ObservedInteraction],
        network: AnonymityNetwork,
    ) -> int:
        """Schedule every interaction for upload; returns how many were sent.

        Submission time = event time + random delay, so nothing about the
        wire traffic is synchronous with the user's physical behaviour.
        """
        submitted = 0
        for interaction in interactions:
            upload = self.build_upload(interaction)
            delay = (
                float(self._rng.uniform(0, self.config.max_upload_delay))
                if self.config.max_upload_delay > 0
                else 0.0
            )
            self.telemetry.observe(
                "client.upload_delay", delay, buckets=UPLOAD_DELAY_BUCKETS
            )
            network.submit(
                payload=upload,
                submit_time=interaction.time + interaction.duration + delay,
                channel_tag=self._channel_tag(),
            )
            submitted += 1
        return submitted
