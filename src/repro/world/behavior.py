"""The behaviour simulator: turning latent opinions into observable activity.

This is the generative model the whole reproduction rests on.  The paper's
core hypothesis (Section 4.1) is that *observable interaction patterns carry
opinion signal* — effort is endorsement — but also that the signal is
confounded: repeat interaction can be loyalty, laziness, or complaint.  The
simulator produces exactly those behaviours:

* **Choice.**  When a need arises (a restaurant outing, a toothache, a burst
  pipe), the user picks among nearby entities of the right category by a
  softmax over utility = expected quality − distance cost − price mismatch.
  Quality expectations start at an uninformed prior and are replaced by the
  user's true experienced opinion after a first interaction, so good
  experiences produce repeat visits and bad ones produce switching.
* **Effort.**  Distance enters utility negatively, so a user who repeatedly
  travels far past closer alternatives is revealing a strong preference —
  the signal the effort features of :mod:`repro.core.features` extract.
* **Confounders.**  With probability ``laziness`` a user skips the choice
  entirely and repeats their previous pick regardless of opinion (loyalty
  that isn't); dissatisfied service-provider customers place short
  follow-up complaint calls (repeat contact that signals the *opposite* of
  endorsement); restaurant visits happen in groups that inflate aggregate
  counts (Section 4.1's group concern).
* **Reviews.**  After an opinion settles, the user posts an explicit review
  with probability ``posting_propensity`` — the tiny number whose smallness
  creates the paucity of reviews the paper measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.util.clock import DAY, HOUR, MINUTE
from repro.util.rng import make_rng
from repro.world.entities import Entity, InteractionStyle
from repro.world.events import CallEvent, Event, GroundTruthOpinion, VisitEvent
from repro.world.geography import Point
from repro.world.users import User


@dataclass(frozen=True)
class PostedReview:
    """An explicit review a user chose to post (rating 1..5 stars)."""

    user_id: str
    entity_id: str
    rating: int
    time: float

    def __post_init__(self) -> None:
        if not 1 <= self.rating <= 5:
            raise ValueError("rating must lie in 1..5")


@dataclass(frozen=True)
class BehaviorConfig:
    """Tunable parameters of the behaviour model.

    Need rates are per-user frequencies of each interaction style:
    restaurants are weekly-scale, medical appointments quarterly-to-yearly,
    and service-provider needs yearly — matching the paper's observation
    that histories for rarely used providers must span years.
    """

    duration_days: float = 180.0
    restaurant_needs_per_week: float = 1.5
    appointment_needs_per_year: float = 4.0
    service_needs_per_year: float = 2.0
    #: Softmax temperature of the choice model; lower = more deterministic.
    choice_temperature: float = 0.6
    #: Softmax temperature when picking an *untried* option to explore.
    #: Kept sharper than choice_temperature: trying somewhere new is a
    #: deliberate, convenience-weighted act, not a uniform dice roll.
    exploration_temperature: float = 0.3
    #: Weight of the distance cost (in utility units per mobility-normalized km).
    distance_weight: float = 1.2
    #: Weight of price-preference mismatch.
    price_weight: float = 0.3
    #: Uninformed prior on entity quality before first experience.
    quality_prior: float = 2.5
    #: Std-dev of per-(user, entity) experience noise around quality+affinity.
    opinion_noise: float = 0.4
    #: Probability of skipping choice and repeating the previous pick.
    laziness: float = 0.25
    #: Lazy repeats only happen within this radius (km) of the anchor: the
    #: "default option" must be convenient.  Liked-but-far entities are
    #: revisited through the utility comparison, never through laziness.
    laziness_radius_km: float = 2.0
    #: Probability a restaurant outing is a group visit.
    group_visit_rate: float = 0.3
    #: Opinion below which a service-provider customer complains.
    complaint_threshold: float = 2.0
    #: Opinion below which a user refuses to repeat an entity when choosing.
    avoid_threshold: float = 1.5
    #: How many experiences before a restaurant opinion is "settled".
    settle_visits_frequent: int = 2
    #: Consideration radius multiplier (times user mobility).
    radius_mobility_factor: float = 2.5
    #: Fraction of trips anchored at home (the rest at work).
    home_anchor_fraction: float = 0.7
    #: Snap events to plausible clock times: restaurants at lunch/dinner,
    #: appointments and service calls during weekday business hours.
    #: Disable for the abstract always-on world of earlier versions.
    business_hours: bool = True
    #: Probability per user per year of moving house mid-simulation — the
    #: Section 4.1 confounder ("the user may have interacted with a
    #: different electrician only because she moved to a different city").
    #: A relocated user's anchors change, so they switch to providers near
    #: the new home without any opinion change.
    relocation_rate_per_year: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.choice_temperature <= 0:
            raise ValueError("choice_temperature must be positive")


_VISIT_DURATION: dict[InteractionStyle, tuple[float, float]] = {
    InteractionStyle.VISIT_FREQUENT: (45 * MINUTE, 110 * MINUTE),
    InteractionStyle.VISIT_APPOINTMENT: (30 * MINUTE, 90 * MINUTE),
}


@dataclass
class _UserEntityState:
    """What a user knows and feels about one entity."""

    opinion: float | None = None  # experienced opinion; None until first interaction
    interactions: int = 0
    settled: bool = False
    reviewed: bool = False
    avoided: bool = False


@dataclass
class SimulationResult:
    """Everything the behaviour simulator produced.

    ``events`` are physical-world facts (time-sorted); ``opinions`` is the
    ground truth used only for scoring; ``reviews`` are the explicit posts
    that existing RSPs would receive.
    """

    events: list[Event] = field(default_factory=list)
    reviews: list[PostedReview] = field(default_factory=list)
    opinions: dict[tuple[str, str], GroundTruthOpinion] = field(default_factory=dict)

    def events_for_user(self, user_id: str) -> list[Event]:
        return [event for event in self.events if event.user_id == user_id]

    def events_for_entity(self, entity_id: str) -> list[Event]:
        return [event for event in self.events if event.entity_id == entity_id]


class BehaviorSimulator:
    """Simulates the activity of a population against a set of entities."""

    def __init__(
        self,
        users: list[User],
        entities: list[Entity],
        config: BehaviorConfig | None = None,
        seed: int = 0,
        initial_opinions: dict[tuple[str, str], float] | None = None,
    ) -> None:
        """``initial_opinions`` pre-seeds settled experiences.

        A simulation window starts mid-life: users already have dentists
        they trust and restaurants they avoid.  Entries map
        ``(user_id, entity_id)`` to an experienced opinion in [0, 5] and are
        treated as settled prior experience (an opinion at or below the
        avoid threshold marks the entity as avoided).
        """
        if not users:
            raise ValueError("need at least one user")
        if not entities:
            raise ValueError("need at least one entity")
        self.users = users
        self.entities = entities
        self.config = config or BehaviorConfig()
        self.seed = seed
        self.initial_opinions = dict(initial_opinions or {})
        self._by_category: dict[str, list[Entity]] = {}
        for entity in entities:
            self._by_category.setdefault(entity.category, []).append(entity)
        self._entity_by_id = {entity.entity_id: entity for entity in entities}
        self._groups: dict[str, list[User]] = {}
        for user in users:
            for group_id in user.group_ids:
                self._groups.setdefault(group_id, []).append(user)

    # ------------------------------------------------------------------ run

    def run(self) -> SimulationResult:
        """Simulate the configured duration and return all activity."""
        result = SimulationResult()
        state: dict[tuple[str, str], _UserEntityState] = {}
        last_pick: dict[tuple[str, str], str] = {}  # (user, category) -> entity_id
        self._plan_relocations()
        for (user_id, entity_id), opinion in self.initial_opinions.items():
            if entity_id not in self._entity_by_id:
                raise KeyError(f"initial opinion references unknown entity {entity_id!r}")
            state[(user_id, entity_id)] = _UserEntityState(
                opinion=float(np.clip(opinion, 0.0, 5.0)),
                interactions=1,
                settled=True,
                avoided=opinion <= self.config.avoid_threshold,
            )

        for user_index, user in enumerate(self.users):
            rng = make_rng(self.seed, f"user-behaviour[{user.user_id}]")
            for category, entities in self._by_category.items():
                style = entities[0].kind.style
                rate_per_day = self._need_rate_per_day(style)
                # A user only engages with a random subset of categories at
                # full rate; taste determines appetite for the category.
                appetite = _sigmoid(user.affinity_for(category) + 0.3)
                rate_per_day *= (
                    user.engagement
                    * appetite
                    / max(1, len(self._categories_for_style(style)))
                )
                if rate_per_day <= 0:
                    continue
                t = float(rng.exponential(1.0 / rate_per_day)) * DAY
                horizon = self.config.duration_days * DAY
                while t < horizon:
                    self._handle_need(user, category, t, rng, state, last_pick, result)
                    t += float(rng.exponential(1.0 / rate_per_day)) * DAY

        result.events.sort(key=lambda event: (event.start_time, event.user_id, event.entity_id))
        result.reviews.sort(key=lambda review: review.time)
        self._finalize_opinions(state, result)
        return result

    # ------------------------------------------------------- choice & needs

    def _schedule_time(
        self, t: float, style: InteractionStyle, rng: np.random.Generator
    ) -> float:
        """Snap a raw need time to a plausible clock slot.

        Restaurants happen at lunch or dinner; appointments and service
        calls happen in weekday business hours (weekend needs wait for
        Monday) — the diurnal texture real traces have, and the reason a
        3 a.m. "dentist visit" would be absurd.
        """
        if not self.config.business_hours:
            return t
        day = int(t // DAY)
        if style in (InteractionStyle.VISIT_APPOINTMENT, InteractionStyle.CALL_SERVICE):
            day_of_week = day % 7
            if day_of_week >= 5:  # weekend -> next Monday
                day += 7 - day_of_week
            hour = float(rng.uniform(9.0, 17.0))
        else:
            if rng.random() < 0.45:
                hour = float(rng.uniform(11.5, 14.0))  # lunch
            else:
                hour = float(rng.uniform(18.0, 21.5))  # dinner
        return day * DAY + hour * HOUR

    def _handle_need(
        self,
        user: User,
        category: str,
        t: float,
        rng: np.random.Generator,
        state: dict[tuple[str, str], _UserEntityState],
        last_pick: dict[tuple[str, str], str],
        result: SimulationResult,
    ) -> None:
        style = self._by_category[category][0].kind.style
        t = self._schedule_time(t, style, rng)
        anchor = self._anchor(user, rng, t)
        entity = self._choose_entity(user, category, anchor, rng, state, last_pick)
        if entity is None:
            return
        last_pick[(user.user_id, category)] = entity.entity_id
        key = (user.user_id, entity.entity_id)
        entity_state = state.setdefault(key, _UserEntityState())

        if entity_state.opinion is None:
            entity_state.opinion = self._experience_opinion(user, entity, rng)

        if entity.kind.is_called:
            self._emit_call_sequence(user, entity, t, entity_state, rng, result)
        else:
            self._emit_visit(user, entity, t, anchor, rng, result, state)
        entity_state.interactions += 1

        needed = (
            self.config.settle_visits_frequent
            if entity.kind.style is InteractionStyle.VISIT_FREQUENT
            else 1
        )
        if not entity_state.settled and entity_state.interactions >= needed:
            entity_state.settled = True
        if entity_state.settled and entity_state.opinion <= self.config.avoid_threshold:
            entity_state.avoided = True
        if entity_state.settled and not entity_state.reviewed:
            if rng.random() < user.posting_propensity:
                entity_state.reviewed = True
                rating = int(np.clip(round(entity_state.opinion + rng.normal(0, 0.3)), 1, 5))
                result.reviews.append(
                    PostedReview(
                        user_id=user.user_id,
                        entity_id=entity.entity_id,
                        rating=rating,
                        time=t + 2 * DAY * float(rng.random()),
                    )
                )

    def _choose_entity(
        self,
        user: User,
        category: str,
        anchor: Point,
        rng: np.random.Generator,
        state: dict[tuple[str, str], _UserEntityState],
        last_pick: dict[tuple[str, str], str],
    ) -> Entity | None:
        candidates = self._consideration_set(user, category, anchor)
        if not candidates:
            return None

        previous_id = last_pick.get((user.user_id, category))
        if previous_id is not None and rng.random() < self.config.laziness:
            previous_state = state.get((user.user_id, previous_id))
            if previous_state is None or not previous_state.avoided:
                previous = self._entity_by_id.get(previous_id)
                # Laziness only defaults to the previous pick when that pick
                # is actually convenient; nobody re-crosses the whole town
                # out of inertia.  A liked-but-far entity still wins through
                # the utility comparison below, not through laziness.
                lazy_radius = min(user.mobility, self.config.laziness_radius_km)
                if (
                    previous is not None
                    and anchor.distance_to(previous.location) <= lazy_radius
                ):
                    return previous

        viable: list[Entity] = []
        utilities: list[float] = []
        for entity in candidates:
            entity_state = state.get((user.user_id, entity.entity_id))
            if entity_state is not None and entity_state.avoided:
                continue
            expected = (
                entity_state.opinion
                if entity_state is not None and entity_state.opinion is not None
                else self.config.quality_prior
            )
            distance = anchor.distance_to(entity.location)
            utility = (
                expected
                - self.config.distance_weight * distance / user.mobility
                - self.config.price_weight * abs(entity.price_level - user.price_preference)
            )
            viable.append(entity)
            utilities.append(utility)
        if not viable:
            return None

        # Exploration is distance-aware: a user trying somewhere new still
        # weighs how far away the candidates are (nobody samples a dentist
        # across town on a whim), so exploration reuses the same utilities.
        untried_indices = [
            index
            for index, entity in enumerate(viable)
            if state.get((user.user_id, entity.entity_id)) is None
        ]
        if untried_indices and rng.random() < user.exploration:
            untried_weights = (
                np.asarray([utilities[i] for i in untried_indices], dtype=np.float64)
                / self.config.exploration_temperature
            )
            untried_weights -= untried_weights.max()
            untried_probabilities = np.exp(untried_weights)
            untried_probabilities /= untried_probabilities.sum()
            pick = int(rng.choice(len(untried_indices), p=untried_probabilities))
            return viable[untried_indices[pick]]

        weights = np.asarray(utilities, dtype=np.float64) / self.config.choice_temperature
        weights -= weights.max()
        probabilities = np.exp(weights)
        probabilities /= probabilities.sum()
        return viable[int(rng.choice(len(viable), p=probabilities))]

    def _consideration_set(
        self, user: User, category: str, anchor: Point
    ) -> list[Entity]:
        entities = self._by_category.get(category, [])
        radius = user.mobility * self.config.radius_mobility_factor
        nearby = [
            entity
            for entity in entities
            if anchor.distance_to(entity.location) <= radius
        ]
        # A user with no nearby option considers the closest few anyway;
        # needs do not disappear because the city is sparse.
        if not nearby:
            nearby = sorted(
                entities,
                key=lambda entity: anchor.distance_to(entity.location),
            )[:3]
        return nearby

    # ------------------------------------------------------------- emission

    def _emit_visit(
        self,
        user: User,
        entity: Entity,
        t: float,
        anchor: Point,
        rng: np.random.Generator,
        result: SimulationResult,
        state: dict[tuple[str, str], _UserEntityState],
    ) -> None:
        low, high = _VISIT_DURATION[entity.kind.style]
        duration = float(rng.uniform(low, high))
        visit = VisitEvent(
            user_id=user.user_id,
            entity_id=entity.entity_id,
            start_time=t,
            duration=duration,
            origin=anchor,
            distance_km=anchor.distance_to(entity.location),
            group_id="",
        )
        if (
            entity.kind.style is InteractionStyle.VISIT_FREQUENT
            and user.group_ids
            and rng.random() < self.config.group_visit_rate
        ):
            group_id = user.group_ids[int(rng.integers(0, len(user.group_ids)))]
            members = self._groups.get(group_id, [user])
            for member in members:
                member_anchor = member.home
                result.events.append(
                    VisitEvent(
                        user_id=member.user_id,
                        entity_id=entity.entity_id,
                        start_time=t,
                        duration=duration,
                        origin=member_anchor,
                        distance_km=member_anchor.distance_to(entity.location),
                        group_id=group_id,
                    )
                )
                # Co-visiting is experiencing: every member forms (or
                # reinforces) an opinion, even though the outing was not
                # their own choice.
                if member.user_id == user.user_id:
                    continue
                member_state = state.setdefault(
                    (member.user_id, entity.entity_id), _UserEntityState()
                )
                if member_state.opinion is None:
                    member_state.opinion = self._experience_opinion(member, entity, rng)
                member_state.interactions += 1
        else:
            result.events.append(visit)

    def _emit_call_sequence(
        self,
        user: User,
        entity: Entity,
        t: float,
        entity_state: _UserEntityState,
        rng: np.random.Generator,
        result: SimulationResult,
    ) -> None:
        # Booking call, then the provider does the job at the user's home.
        booking = CallEvent(
            user_id=user.user_id,
            entity_id=entity.entity_id,
            start_time=t,
            duration=float(rng.uniform(90, 300)),
        )
        result.events.append(booking)
        opinion = entity_state.opinion if entity_state.opinion is not None else 2.5
        if opinion < self.config.complaint_threshold:
            # Dissatisfied: short, tightly spaced follow-up complaint calls —
            # the paper's "repeated phone calls because the plumber did a
            # poor job" confounder.
            n_complaints = int(rng.integers(1, 4))
            call_time = t
            for _ in range(n_complaints):
                call_time += float(rng.uniform(4 * HOUR, 2 * DAY))
                call_time = self._schedule_time(
                    call_time, InteractionStyle.CALL_SERVICE, rng
                )
                result.events.append(
                    CallEvent(
                        user_id=user.user_id,
                        entity_id=entity.entity_id,
                        start_time=call_time,
                        duration=float(rng.uniform(15, 90)),
                    )
                )

    # ------------------------------------------------------------- plumbing

    def _plan_relocations(self) -> None:
        """Decide which users move, when, and where."""
        self._relocations: dict[str, tuple[float, Point, Point]] = {}
        rate = self.config.relocation_rate_per_year
        if rate <= 0:
            return
        xs = [entity.location.x for entity in self.entities]
        ys = [entity.location.y for entity in self.entities]
        horizon = self.config.duration_days * DAY
        years = self.config.duration_days / 365.0
        for user in self.users:
            rng = make_rng(self.seed, f"relocation[{user.user_id}]")
            if rng.random() >= rate * years:
                continue
            move_time = float(rng.uniform(0.2, 0.8)) * horizon
            new_home = Point(
                float(rng.uniform(min(xs), max(xs))),
                float(rng.uniform(min(ys), max(ys))),
            )
            new_work = Point(
                float(rng.uniform(min(xs), max(xs))),
                float(rng.uniform(min(ys), max(ys))),
            )
            self._relocations[user.user_id] = (move_time, new_home, new_work)

    def _home_work_at(self, user: User, t: float) -> tuple[Point, Point]:
        relocation = getattr(self, "_relocations", {}).get(user.user_id)
        if relocation is not None and t >= relocation[0]:
            return relocation[1], relocation[2]
        return user.home, user.work

    def _anchor(self, user: User, rng: np.random.Generator, t: float) -> Point:
        home, work = self._home_work_at(user, t)
        if rng.random() < self.config.home_anchor_fraction:
            return home
        return work

    def _experience_opinion(
        self, user: User, entity: Entity, rng: np.random.Generator
    ) -> float:
        raw = (
            entity.quality
            + user.affinity_for(entity.category)
            + float(rng.normal(0.0, self.config.opinion_noise))
        )
        return float(np.clip(raw, 0.0, 5.0))

    def _need_rate_per_day(self, style: InteractionStyle) -> float:
        if style is InteractionStyle.VISIT_FREQUENT:
            return self.config.restaurant_needs_per_week / 7.0
        if style is InteractionStyle.VISIT_APPOINTMENT:
            return self.config.appointment_needs_per_year / 365.0
        return self.config.service_needs_per_year / 365.0

    def _categories_for_style(self, style: InteractionStyle) -> list[str]:
        return [
            category
            for category, entities in self._by_category.items()
            if entities[0].kind.style is style
        ]

    def _finalize_opinions(
        self,
        state: dict[tuple[str, str], _UserEntityState],
        result: SimulationResult,
    ) -> None:
        for (user_id, entity_id), entity_state in state.items():
            if entity_state.opinion is None:
                continue
            result.opinions[(user_id, entity_id)] = GroundTruthOpinion(
                user_id=user_id,
                entity_id=entity_id,
                opinion=entity_state.opinion,
                settled=entity_state.settled,
            )


def _sigmoid(x: float) -> float:
    return 1.0 / (1.0 + math.exp(-x))
