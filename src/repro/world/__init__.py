"""Physical-world simulator: geography, entities, users, and behaviour.

This package is the ground-truth substrate the paper lacks: it generates
user-entity interactions (visits, phone calls) from latent opinions, so the
RSP's implicit inference can be *scored* against what users actually think.
"""

from repro.world.behavior import (
    BehaviorConfig,
    BehaviorSimulator,
    PostedReview,
    SimulationResult,
)
from repro.world.entities import (
    DEFAULT_CATEGORIES,
    Entity,
    EntityKind,
    InteractionStyle,
    make_phone_number,
)
from repro.world.events import CallEvent, Event, EventKind, GroundTruthOpinion, VisitEvent
from repro.world.geography import CityGrid, Point, Zone, travel_time_seconds
from repro.world.population import Town, TownConfig, build_town
from repro.world.scenarios import (
    DENTIST_A,
    DENTIST_B,
    DENTIST_C,
    Figure3Config,
    figure3_town,
    run_figure3,
)
from repro.world.users import User, sample_posting_propensity, sample_user

__all__ = [
    "DEFAULT_CATEGORIES",
    "DENTIST_A",
    "DENTIST_B",
    "DENTIST_C",
    "BehaviorConfig",
    "BehaviorSimulator",
    "CallEvent",
    "CityGrid",
    "Entity",
    "EntityKind",
    "Event",
    "EventKind",
    "Figure3Config",
    "GroundTruthOpinion",
    "InteractionStyle",
    "Point",
    "PostedReview",
    "SimulationResult",
    "Town",
    "TownConfig",
    "User",
    "VisitEvent",
    "Zone",
    "build_town",
    "figure3_town",
    "make_phone_number",
    "run_figure3",
    "sample_posting_propensity",
    "sample_user",
    "travel_time_seconds",
]
