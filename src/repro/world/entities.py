"""Entities: the restaurants, doctors, and service providers users interact with.

The paper's three measured services map onto three *interaction styles*:

* restaurants — frequent, short-notice, often group visits (Yelp);
* doctors/dentists — rare, appointment-driven visits (Healthgrades);
* service providers (electricians, plumbers, ...) — rare, phone-mediated
  engagements, often without the user travelling at all (Angie's List).

Every entity carries a latent ``quality`` in [0, 5] — the ground truth the
RSP tries to recover — plus observable attributes (price level, category)
that drive user choice and the "similar options nearby" feature of
Section 4.1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.world.geography import Point


class InteractionStyle(enum.Enum):
    """How users engage with an entity kind."""

    VISIT_FREQUENT = "visit_frequent"  # restaurants, cafes
    VISIT_APPOINTMENT = "visit_appointment"  # doctors, dentists
    CALL_SERVICE = "call_service"  # plumbers, electricians


class EntityKind(enum.Enum):
    """The kinds of entities covered by the paper's three services."""

    RESTAURANT = ("restaurant", InteractionStyle.VISIT_FREQUENT)
    DENTIST = ("dentist", InteractionStyle.VISIT_APPOINTMENT)
    FAMILY_MEDICINE = ("family_medicine", InteractionStyle.VISIT_APPOINTMENT)
    PEDIATRICS = ("pediatrics", InteractionStyle.VISIT_APPOINTMENT)
    PLASTIC_SURGERY = ("plastic_surgery", InteractionStyle.VISIT_APPOINTMENT)
    ELECTRICIAN = ("electrician", InteractionStyle.CALL_SERVICE)
    PLUMBER = ("plumber", InteractionStyle.CALL_SERVICE)
    GARDENER = ("gardener", InteractionStyle.CALL_SERVICE)

    def __init__(self, label: str, style: InteractionStyle) -> None:
        self.label = label
        self.style = style

    @property
    def is_visited(self) -> bool:
        return self.style in (InteractionStyle.VISIT_FREQUENT, InteractionStyle.VISIT_APPOINTMENT)

    @property
    def is_called(self) -> bool:
        return self.style is InteractionStyle.CALL_SERVICE


#: Sub-categories per kind (cuisines for restaurants); used for the
#: "number of similar options" feature and for measurement queries.
DEFAULT_CATEGORIES: dict[EntityKind, tuple[str, ...]] = {
    EntityKind.RESTAURANT: (
        "chinese",
        "italian",
        "mexican",
        "japanese",
        "indian",
        "thai",
        "american",
        "mediterranean",
        "korean",
    ),
    EntityKind.DENTIST: ("dentist",),
    EntityKind.FAMILY_MEDICINE: ("family_medicine",),
    EntityKind.PEDIATRICS: ("pediatrics",),
    EntityKind.PLASTIC_SURGERY: ("plastic_surgery",),
    EntityKind.ELECTRICIAN: ("electrician",),
    EntityKind.PLUMBER: ("plumber",),
    EntityKind.GARDENER: ("gardener",),
}


@dataclass(frozen=True)
class Entity:
    """A physical-world entity listed on a recommendation service.

    Attributes
    ----------
    entity_id:
        Stable string identifier, e.g. ``"restaurant-0042"``.
    kind / category:
        Kind (restaurant, dentist, ...) and sub-category (cuisine or the
        kind's own label).
    location:
        Where the entity sits in the city.
    quality:
        Latent true quality in [0, 5]; the expected opinion of a user with
        neutral taste.  Ground truth only — never visible to the RSP.
    price_level:
        1 (cheap) .. 4 (expensive); an observable attribute used when
        computing "similar nearby options".
    phone:
        Synthetic phone number; call logs reference entities through it.
    """

    entity_id: str
    kind: EntityKind
    category: str
    location: Point
    quality: float
    price_level: int = 2
    phone: str = ""
    attributes: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.quality <= 5.0:
            raise ValueError("quality must lie in [0, 5]")
        if not 1 <= self.price_level <= 4:
            raise ValueError("price_level must lie in 1..4")

    def similarity_to(self, other: "Entity") -> float:
        """Attribute similarity in [0, 1] used for choice-set features.

        Two entities are comparable options when they share a category and
        price point; Section 4.1 notes similarity is multi-dimensional and
        hard — this deliberately simple observable proxy (category, price,
        shared tags) is what an RSP could actually compute.
        """
        if self.kind is not other.kind:
            return 0.0
        score = 0.0
        if self.category == other.category:
            score += 0.6
        score += 0.2 * (1.0 - abs(self.price_level - other.price_level) / 3.0)
        mine, theirs = set(self.attributes), set(other.attributes)
        if mine or theirs:
            score += 0.2 * len(mine & theirs) / max(1, len(mine | theirs))
        else:
            score += 0.2
        return min(1.0, score)


def make_phone_number(index: int) -> str:
    """Deterministic synthetic phone number for entity ``index``."""
    return f"+1-555-{index // 10000:03d}-{index % 10000:04d}"
