"""Ground-truth interaction events emitted by the behaviour simulator.

These are *physical-world facts*: user u was at restaurant e from t to
t+duration, or called plumber p for 90 seconds.  The sensing layer
(:mod:`repro.sensing`) observes noisy projections of these events (GPS
samples, call-log rows); the RSP never sees the events themselves, and in
particular never sees ``true_opinion`` — that lives only in the simulator
and is used to score inference accuracy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.world.geography import Point


class EventKind(enum.Enum):
    VISIT = "visit"
    CALL = "call"


@dataclass(frozen=True)
class VisitEvent:
    """A physical visit by a user to an entity.

    ``origin`` is where the trip started (home or work) and
    ``distance_km`` the trip length — the paper's primary effort signal.
    ``group_id`` is non-empty when the visit happened as part of a social
    group (Section 4.1's group-deflation concern).
    """

    user_id: str
    entity_id: str
    start_time: float
    duration: float
    origin: Point
    distance_km: float
    group_id: str = ""

    kind: EventKind = EventKind.VISIT

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration


@dataclass(frozen=True)
class CallEvent:
    """A phone call from a user to an entity (service providers)."""

    user_id: str
    entity_id: str
    start_time: float
    duration: float

    kind: EventKind = EventKind.CALL

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration


Event = VisitEvent | CallEvent


@dataclass(frozen=True)
class GroundTruthOpinion:
    """The simulator's record of what a user actually thinks of an entity."""

    user_id: str
    entity_id: str
    opinion: float  # 0..5
    settled: bool  # True once the user has enough experience to have a firm view

    def __post_init__(self) -> None:
        if not 0.0 <= self.opinion <= 5.0:
            raise ValueError("opinion must lie in [0, 5]")
