"""Planar geography for the simulated city.

The paper's inference features are spatial — "the distance traveled by a
user to visit a dentist" is its canonical effort signal — so the world needs
geometry, but nothing about it requires real map data.  We model a city as a
square of ``size_km`` kilometres partitioned into a grid of rectangular
*zones*.  Zones play the role of the paper's zipcodes: the measurement
crawler issues (zone, category) queries, and users' homes and workplaces are
placed zone by zone so population density is controllable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng


@dataclass(frozen=True, order=True)
class Point:
    """A location in the city, in kilometres from the south-west corner."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance in kilometres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def offset(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Zone:
    """One grid cell of the city — the analogue of a zipcode."""

    zone_id: str
    row: int
    col: int
    x_min: float
    y_min: float
    x_max: float
    y_max: float

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def contains(self, point: Point) -> bool:
        return self.x_min <= point.x < self.x_max and self.y_min <= point.y < self.y_max

    def sample_point(self, rng: int | np.random.Generator) -> Point:
        """A uniformly random location inside the zone."""
        gen = make_rng(rng)
        return Point(
            float(gen.uniform(self.x_min, self.x_max)),
            float(gen.uniform(self.y_min, self.y_max)),
        )


class CityGrid:
    """A square city split into ``rows x cols`` zones.

    Zone identifiers look like synthetic zipcodes (``"Z0703"`` for row 7,
    column 3) so measurement output reads like the paper's query tables.
    """

    def __init__(self, size_km: float = 20.0, rows: int = 5, cols: int = 5) -> None:
        if size_km <= 0:
            raise ValueError("size_km must be positive")
        if rows < 1 or cols < 1:
            raise ValueError("grid must have at least one zone")
        self.size_km = float(size_km)
        self.rows = rows
        self.cols = cols
        self._zones: list[Zone] = []
        cell_w = size_km / cols
        cell_h = size_km / rows
        for row in range(rows):
            for col in range(cols):
                self._zones.append(
                    Zone(
                        zone_id=f"Z{row:02d}{col:02d}",
                        row=row,
                        col=col,
                        x_min=col * cell_w,
                        y_min=row * cell_h,
                        x_max=(col + 1) * cell_w,
                        y_max=(row + 1) * cell_h,
                    )
                )

    @property
    def zones(self) -> list[Zone]:
        return list(self._zones)

    def zone_by_id(self, zone_id: str) -> Zone:
        for zone in self._zones:
            if zone.zone_id == zone_id:
                return zone
        raise KeyError(f"unknown zone {zone_id!r}")

    def zone_containing(self, point: Point) -> Zone:
        """The zone containing ``point`` (edges clamp into the city)."""
        col = min(self.cols - 1, max(0, int(point.x / (self.size_km / self.cols))))
        row = min(self.rows - 1, max(0, int(point.y / (self.size_km / self.rows))))
        return self._zones[row * self.cols + col]

    def sample_point(self, rng: int | np.random.Generator) -> Point:
        gen = make_rng(rng)
        return Point(float(gen.uniform(0, self.size_km)), float(gen.uniform(0, self.size_km)))

    def clamp(self, point: Point) -> Point:
        """Clamp a point into the city bounds."""
        return Point(
            min(max(point.x, 0.0), self.size_km),
            min(max(point.y, 0.0), self.size_km),
        )


def travel_time_seconds(origin: Point, destination: Point, speed_kmh: float = 25.0) -> float:
    """Door-to-door travel time at an average urban speed."""
    if speed_kmh <= 0:
        raise ValueError("speed must be positive")
    distance = origin.distance_to(destination)
    return distance / speed_kmh * 3600.0
