"""Population and town construction.

A :class:`Town` bundles a city grid, its entities, and its users — the input
to both the behaviour simulator and (indirectly, through sensing) the RSP.
Construction is fully parameterized and seeded so benchmarks can sweep town
size without touching the generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import make_rng
from repro.world.entities import (
    DEFAULT_CATEGORIES,
    Entity,
    EntityKind,
    make_phone_number,
)
from repro.world.geography import CityGrid
from repro.world.users import User, sample_user


@dataclass(frozen=True)
class TownConfig:
    """Parameters of the synthetic town."""

    n_users: int = 200
    size_km: float = 20.0
    grid_rows: int = 5
    grid_cols: int = 5
    #: Entities per kind; tuned so a town of default size has realistic density.
    entities_per_kind: dict[EntityKind, int] = field(
        default_factory=lambda: {
            EntityKind.RESTAURANT: 60,
            EntityKind.DENTIST: 12,
            EntityKind.FAMILY_MEDICINE: 10,
            EntityKind.PEDIATRICS: 6,
            EntityKind.PLASTIC_SURGERY: 4,
            EntityKind.ELECTRICIAN: 10,
            EntityKind.PLUMBER: 10,
            EntityKind.GARDENER: 8,
        }
    )
    #: Mean/std of latent entity quality.
    quality_mean: float = 3.2
    quality_std: float = 0.9
    #: Average social-group size for group restaurant visits; 0 disables groups.
    group_size: int = 3
    #: Fraction of users belonging to some social group.
    group_membership: float = 0.5

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError("n_users must be >= 1")
        if self.group_size < 0:
            raise ValueError("group_size must be non-negative")


@dataclass
class Town:
    """A complete simulated town: geography, entities, and people."""

    grid: CityGrid
    entities: list[Entity]
    users: list[User]

    def entity(self, entity_id: str) -> Entity:
        for entity in self.entities:
            if entity.entity_id == entity_id:
                return entity
        raise KeyError(f"unknown entity {entity_id!r}")

    def user(self, user_id: str) -> User:
        for user in self.users:
            if user.user_id == user_id:
                return user
        raise KeyError(f"unknown user {user_id!r}")

    def entities_of_kind(self, kind: EntityKind) -> list[Entity]:
        return [entity for entity in self.entities if entity.kind is kind]

    @property
    def phone_directory(self) -> dict[str, str]:
        """phone number -> entity_id, the mapping the RSP client resolves calls with."""
        return {entity.phone: entity.entity_id for entity in self.entities if entity.phone}


def build_entities(
    config: TownConfig, grid: CityGrid, seed: int
) -> list[Entity]:
    """Place entities of every kind uniformly across the town."""
    entities: list[Entity] = []
    phone_index = 0
    for kind, count in config.entities_per_kind.items():
        rng = make_rng(seed, f"entities[{kind.label}]")
        categories = DEFAULT_CATEGORIES[kind]
        for index in range(count):
            location = grid.sample_point(rng)
            quality = float(
                np.clip(rng.normal(config.quality_mean, config.quality_std), 0.0, 5.0)
            )
            category = categories[int(rng.integers(0, len(categories)))]
            entities.append(
                Entity(
                    entity_id=f"{kind.label}-{index:04d}",
                    kind=kind,
                    category=category,
                    location=location,
                    quality=quality,
                    price_level=int(rng.integers(1, 5)),
                    phone=make_phone_number(phone_index),
                )
            )
            phone_index += 1
    return entities


def build_users(config: TownConfig, grid: CityGrid, seed: int) -> list[User]:
    """Draw the population, including social-group assignments."""
    all_categories: tuple[str, ...] = tuple(
        category
        for kind in config.entities_per_kind
        for category in DEFAULT_CATEGORIES[kind]
    )
    rng = make_rng(seed, "users")
    users: list[User] = []
    group_counter = 0
    pending_group: list[int] = []
    group_assignment: dict[int, tuple[str, ...]] = {}
    for index in range(config.n_users):
        if config.group_size > 0 and rng.random() < config.group_membership:
            pending_group.append(index)
            if len(pending_group) >= config.group_size:
                group_id = f"group-{group_counter:04d}"
                group_counter += 1
                for member in pending_group:
                    group_assignment[member] = (group_id,)
                pending_group = []
    for index in range(config.n_users):
        user_rng = make_rng(seed, f"user[{index}]")
        home = grid.sample_point(user_rng)
        work = grid.sample_point(user_rng)
        user = sample_user(
            user_rng,
            user_id=f"user-{index:04d}",
            home=home,
            work=work,
            categories=all_categories,
        )
        groups = group_assignment.get(index, ())
        if groups:
            user = User(
                user_id=user.user_id,
                home=user.home,
                work=user.work,
                posting_propensity=user.posting_propensity,
                category_affinity=user.category_affinity,
                price_preference=user.price_preference,
                mobility=user.mobility,
                exploration=user.exploration,
                group_ids=groups,
            )
        users.append(user)
    return users


def build_town(config: TownConfig | None = None, seed: int = 0) -> Town:
    """Construct a complete town from a config and a seed."""
    config = config or TownConfig()
    grid = CityGrid(size_km=config.size_km, rows=config.grid_rows, cols=config.grid_cols)
    entities = build_entities(config, grid, seed)
    users = build_users(config, grid, seed)
    return Town(grid=grid, entities=entities, users=users)
