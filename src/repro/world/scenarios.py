"""Prebuilt scenarios matching situations the paper describes.

:func:`figure3_town` constructs the three-dentist situation of Figure 3:

* **Dentist A** — low quality; users try it once and switch, so it shows
  very few repeat patients (Figure 3(a)).
* **Dentist B** — high quality; patients stick with it and *travel far* to
  keep coming, so across its patients the average distance travelled
  correlates strongly with visit count (Figure 3(b)).
* **Dentist C** — mediocre but surrounded by a captive local population
  with low mobility and near-zero exploration; it accumulates as many
  repeat visits as B, but its patients travel almost nowhere, so the
  distance-visits correlation is weak — repeat interaction that is
  convenience, not endorsement.

The scenario exists so the comparative-visualization pipeline
(:mod:`repro.core.visualization`) can be validated against the qualitative
claims of the figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import make_rng
from repro.world.behavior import BehaviorConfig, BehaviorSimulator, SimulationResult
from repro.world.entities import Entity, EntityKind, make_phone_number
from repro.world.geography import CityGrid, Point
from repro.world.population import Town
from repro.world.users import User


#: Entity ids used by the Figure 3 scenario.
DENTIST_A = "dentist-A"
DENTIST_B = "dentist-B"
DENTIST_C = "dentist-C"


@dataclass(frozen=True)
class Figure3Config:
    """Size and duration of the Figure 3 scenario."""

    n_regional_users: int = 150
    n_local_users: int = 40
    duration_days: float = 730.0  # two years: enough appointments to show repeats
    appointment_needs_per_year: float = 6.0
    #: Fraction of regional users who are established fans of dentist B
    #: (discovered it before the observation window began).
    fan_fraction: float = 0.4
    seed: int = 42


@dataclass(frozen=True)
class Figure3Scenario:
    """Everything needed to simulate the Figure 3 situation."""

    town: Town
    behaviour: BehaviorConfig
    initial_opinions: dict[tuple[str, str], float]

    def simulate(self, seed: int) -> SimulationResult:
        simulator = BehaviorSimulator(
            users=self.town.users,
            entities=self.town.entities,
            config=self.behaviour,
            seed=seed,
            initial_opinions=self.initial_opinions,
        )
        return simulator.run()


def figure3_town(config: Figure3Config | None = None) -> Figure3Scenario:
    """Build the three-dentist town and a behaviour config tuned for it."""
    config = config or Figure3Config()
    grid = CityGrid(size_km=12.0, rows=3, cols=3)
    rng = make_rng(config.seed, "figure3")

    dentists = [
        Entity(
            entity_id=DENTIST_A,
            kind=EntityKind.DENTIST,
            category="dentist",
            location=Point(6.0, 7.0),
            quality=1.8,
            price_level=2,
            phone=make_phone_number(9001),
        ),
        Entity(
            entity_id=DENTIST_B,
            kind=EntityKind.DENTIST,
            category="dentist",
            location=Point(6.0, 5.0),
            quality=3.9,
            price_level=2,
            phone=make_phone_number(9002),
        ),
        Entity(
            entity_id=DENTIST_C,
            kind=EntityKind.DENTIST,
            category="dentist",
            location=Point(1.0, 1.0),
            quality=2.9,
            price_level=2,
            phone=make_phone_number(9003),
        ),
    ]

    # Filler dentists, one per grid zone: the unremarkable local option most
    # non-fans default to.  Without them a three-dentist town would force
    # every user to one of A/B/C regardless of distance, washing out the
    # distance-vs-visits signal the figure is about.
    for zone_index, zone in enumerate(grid.zones):
        dentists.append(
            Entity(
                entity_id=f"dentist-filler-{zone_index:02d}",
                kind=EntityKind.DENTIST,
                category="dentist",
                location=zone.center,
                quality=3.0,
                price_level=2,
                phone=make_phone_number(9100 + zone_index),
            )
        )

    # A ring of decent alternatives around C: without them, C would be
    # the corner neighbourhood's genuinely best option and would earn
    # legitimate mid-distance regulars, which is not the situation the
    # figure sketches (C's repeats should be captive convenience only).
    for ring_index, (x, y) in enumerate(((2.6, 1.0), (1.0, 2.6), (2.4, 2.4))):
        dentists.append(
            Entity(
                entity_id=f"dentist-ring-{ring_index}",
                kind=EntityKind.DENTIST,
                category="dentist",
                location=Point(x, y),
                quality=3.3,
                price_level=2,
                phone=make_phone_number(9200 + ring_index),
            )
        )

    users: list[User] = []
    initial_opinions: dict[tuple[str, str], float] = {}
    # Regional users: spread across town, mobile, willing to explore.  A
    # fraction of them are established fans of B — they discovered its
    # quality before the observation window (a referral, a previous
    # neighbourhood) and keep travelling back, which is exactly the
    # effort-is-endorsement signal Figure 3(b) visualizes.
    for index in range(config.n_regional_users):
        home = grid.sample_point(rng)
        work = grid.sample_point(rng)
        user_id = f"regional-{index:03d}"
        is_fan = rng.random() < config.fan_fraction
        users.append(
            User(
                user_id=user_id,
                home=home,
                work=work,
                posting_propensity=0.02,
                # Fans are picky: they rate ordinary dentists below par and
                # B far above it, which is why they keep making the trip.
                category_affinity={
                    "dentist": float(rng.normal(-0.5 if is_fan else -0.2, 0.2))
                },
                price_preference=2,
                mobility=float(rng.uniform(4.0, 8.0)),
                exploration=float(rng.uniform(0.15, 0.4)),
                # Committed patients keep regular check-up schedules.
                engagement=float(rng.uniform(2.2, 3.2) if is_fan else rng.uniform(0.3, 0.8)),
            )
        )
        if is_fan:
            initial_opinions[(user_id, DENTIST_B)] = float(rng.uniform(4.7, 5.0))
    # Local users: clustered around C, immobile, and incurious — C keeps
    # their business without earning it (laziness, not loyalty).
    for index in range(config.n_local_users):
        home = Point(
            float(rng.uniform(0.6, 1.4)),
            float(rng.uniform(0.6, 1.4)),
        )
        user_id = f"local-{index:03d}"
        users.append(
            User(
                user_id=user_id,
                home=home,
                work=home,
                posting_propensity=0.02,
                category_affinity={"dentist": float(rng.normal(0.2, 0.2))},
                price_preference=2,
                mobility=0.8,
                exploration=0.01,
                # Locals vary in how often they bother going at all; their
                # visit counts reflect habit, not distance or endorsement.
                engagement=float(rng.uniform(0.5, 2.2)),
            )
        )
        initial_opinions[(user_id, DENTIST_C)] = float(rng.uniform(2.8, 3.4))

    town = Town(grid=grid, entities=dentists, users=users)
    behaviour = BehaviorConfig(
        duration_days=config.duration_days,
        appointment_needs_per_year=config.appointment_needs_per_year,
        laziness=0.35,
        # Dentist choice is far more deliberate than restaurant choice: a
        # sharp softmax and a high distance cost keep users from sampling
        # far-away dentists on a whim, which would drown the
        # distance-vs-visits signal in noise.
        choice_temperature=0.25,
        exploration_temperature=0.2,
        distance_weight=1.5,
    )
    return Figure3Scenario(town=town, behaviour=behaviour, initial_opinions=initial_opinions)


def run_figure3(config: Figure3Config | None = None) -> tuple[Town, SimulationResult]:
    """Build and simulate the Figure 3 scenario."""
    config = config or Figure3Config()
    scenario = figure3_town(config)
    return scenario.town, scenario.simulate(config.seed)
