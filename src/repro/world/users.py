"""Users: taste, review-posting propensity, and membership in social groups.

Two user properties carry the paper's whole argument:

* ``posting_propensity`` — the probability that a user who formed an opinion
  actually writes a review.  Section 2's finding is that this is tiny for
  most users ("passive consumers dominate", the 1/9/90 rule): the default
  population draws it from a distribution where ~1% of users post eagerly,
  ~9% occasionally, and ~90% almost never.
* taste (``category_affinity`` + ``price_preference``) — users differ, so an
  entity's true quality and a given user's true opinion differ too; the RSP
  infers *opinions*, not qualities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import make_rng
from repro.world.geography import Point


@dataclass(frozen=True)
class User:
    """A member of the simulated population.

    Attributes
    ----------
    user_id:
        Stable identifier, e.g. ``"user-0007"``.
    home / work:
        Anchor locations; trips to entities originate from one of these.
    posting_propensity:
        Probability in [0, 1] of posting an explicit review after forming a
        settled opinion about an entity.
    category_affinity:
        Per-category taste offsets in roughly [-1.5, +1.5]; added to entity
        quality when the user experiences the entity.
    price_preference:
        Preferred price level 1..4; mismatch reduces utility.
    mobility:
        Willingness to travel, in km of "acceptable" trip distance; the
        distance-cost term divides by this.
    exploration:
        Probability of trying a new option even when a known-good one
        exists; drives the "tried many options before settling" signal.
    engagement:
        Multiplier on the user's need rates.  Committed patients schedule
        regular check-ups; casual ones only show up when something hurts.
        Engagement heterogeneity is what makes visit counts informative
        beyond pure distance effects.
    group_ids:
        Social groups (e.g. a family, a team of coworkers) that visit
        restaurants together — Section 4.1 requires the RSP to deflate
        these group visits.
    """

    user_id: str
    home: Point
    work: Point
    posting_propensity: float
    category_affinity: dict[str, float] = field(default_factory=dict)
    price_preference: int = 2
    mobility: float = 3.0
    exploration: float = 0.15
    engagement: float = 1.0
    group_ids: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.posting_propensity <= 1.0:
            raise ValueError("posting_propensity must lie in [0, 1]")
        if self.mobility <= 0:
            raise ValueError("mobility must be positive")
        if not 0.0 <= self.exploration <= 1.0:
            raise ValueError("exploration must lie in [0, 1]")
        if self.engagement <= 0:
            raise ValueError("engagement must be positive")

    def affinity_for(self, category: str) -> float:
        return self.category_affinity.get(category, 0.0)


def sample_posting_propensity(rng: int | np.random.Generator) -> float:
    """Draw a posting propensity following the 1/9/90 participation rule.

    ~1% of users are heavy contributors (propensity ~0.5-0.9), ~9% are
    intermittent (~0.05-0.3), and ~90% are lurkers (<0.02).  The aggregate
    behaviour this produces — an order of magnitude more interactions than
    reviews — is exactly the Figure 1(c) discrepancy.
    """
    gen = make_rng(rng)
    tier = gen.random()
    if tier < 0.01:
        return float(gen.uniform(0.5, 0.9))
    if tier < 0.10:
        return float(gen.uniform(0.05, 0.3))
    return float(gen.uniform(0.0, 0.02))


def sample_user(
    rng: int | np.random.Generator,
    user_id: str,
    home: Point,
    work: Point,
    categories: tuple[str, ...],
) -> User:
    """Draw a user with random taste, mobility, and posting behaviour."""
    gen = make_rng(rng)
    affinity = {
        category: float(gen.normal(0.0, 0.6)) for category in categories
    }
    return User(
        user_id=user_id,
        home=home,
        work=work,
        posting_propensity=sample_posting_propensity(gen),
        category_affinity=affinity,
        price_preference=int(gen.integers(1, 5)),
        mobility=float(gen.uniform(1.5, 6.0)),
        exploration=float(gen.uniform(0.05, 0.35)),
        engagement=float(gen.uniform(0.6, 1.6)),
    )
