"""Crash recovery: snapshot load + WAL replay into a fresh server.

The recovery invariant (tested by the crash-matrix suite): for any
prefix of the durable directory a crash can leave behind — any snapshot
boundary, any WAL record boundary, any torn final frame —

    recover(fresh_server, directory) + redeliver(everything)

produces byte-identical maintenance reports and summaries to a server
that never crashed.  The two halves of that equation:

* replay reconstructs exactly the accepted mutations the WAL covers,
  including the dedup nonce table, the spent-token table, and per-slot
  opinion ``seq`` — so re-delivered duplicates and stale re-uploads are
  suppressed after recovery exactly as before;
* whatever the torn tail lost was, by the commit protocol, never
  acknowledged (the WAL is written *before* the acceptance commit), so
  the existing client retransmission machinery re-sends it.

Replay applies mutations directly to the stores — not through
``receive()`` — because a WAL record *is* an acceptance decision already
made; re-running validation would need the original envelope (token
signature and all), which the log deliberately does not retain.
:func:`apply_mutation` is shared with log shipping: a replica applying a
shipped batch is replaying the primary's WAL.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.aggregation import OpinionUpload
from repro.durability.journal import list_segments
from repro.durability.snapshot import load_latest_snapshot, restore_state
from repro.durability.wal import read_wal
from repro.privacy.history_store import InteractionUpload
from repro.reshard.topology import load_topology, save_topology, spec_from_json
from repro.telemetry import NULL, Telemetry
from repro.util.clock import DAY


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery pass found and did."""

    #: WAL seq the loaded snapshot covered (0 = no snapshot, cold replay).
    snapshot_seq: int
    #: WAL records replayed on top of the snapshot.
    n_replayed: int
    #: Whether any lane's final segment ended in a torn frame.
    torn_tail: bool
    #: First unused sequence number (a new journal resumes from here).
    next_seq: int


def read_mutations(directory: Path, after_seq: int) -> tuple[list[dict], bool]:
    """All replayable mutations with ``seq > after_seq``, in seq order.

    Non-final segments of a lane must read clean — a later segment only
    exists because rotation closed them, so a torn tail there is real
    corruption and raises.  Only each lane's *last* segment may be torn.
    Lanes are merged by the global sequence number, which restores the
    exact total intake order across per-shard WAL files.
    """
    mutations: list[dict] = []
    torn = False
    for _lane, segments in sorted(list_segments(directory).items()):
        for index, (_start, path) in enumerate(segments):
            final = index == len(segments) - 1
            result = read_wal(path, tolerate_torn_tail=final)
            torn = torn or result.torn
            mutations.extend(
                record for record in result.records if record["seq"] > after_seq
            )
    mutations.sort(key=lambda record: record["seq"])
    return mutations, torn


# ----------------------------------------------------------------- apply


def _commit(server, mutation: dict) -> None:
    """The acceptance commit replay: counter, nonce burn, token spend."""
    server.accepted_envelopes += 1
    nonce_hex = mutation.get("nonce")
    if nonce_hex is not None:
        nonce = bytes.fromhex(nonce_hex)
        if getattr(server, "shards", None) is None:
            server._seen_nonces.add(nonce)
        else:
            server._nonce_buckets[server.router.shard_of_bytes(nonce)].add(nonce)
    token_hex = mutation.get("token_id")
    if token_hex is not None:
        token_id = bytes.fromhex(token_hex)
        if getattr(server, "shards", None) is None:
            server._redeemer._spent.add(token_id)
        else:
            server._redeemer._spent[server.router.shard_of_bytes(token_id)].add(
                token_id
            )


def apply_mutation(server, mutation: dict) -> None:
    """Apply one WAL record to a server's stores.

    Mirrors the accepted branch of ``receive()`` / ``post_review()`` /
    ``issue()`` without re-validating: the record's presence in the WAL
    *is* the acceptance decision.  The opinion branch re-runs the ``seq``
    rule so a logged stale re-upload (accepted envelope, skipped slot
    write) lands in the same end state — and bumps the same counter.
    Callers owe a :func:`finalize_recovery` before the next maintenance
    cycle; this function deliberately skips the engine's incremental
    bookkeeping.
    """
    kind = mutation["kind"]
    shards = getattr(server, "shards", None)
    if kind == "interaction":
        upload = InteractionUpload(
            history_id=mutation["history_id"],
            entity_id=mutation["entity_id"],
            interaction_type=mutation["interaction_type"],
            event_time=mutation["event_time"],
            duration=mutation["duration"],
            travel_km=mutation["travel_km"],
        )
        if shards is None:
            stored = server.history_store.append(
                upload, arrival_time=mutation["arrival_time"]
            )
        else:
            shard = shards[server.router.shard_of(upload.history_id)]
            stored = shard.store.append(upload, arrival_time=mutation["arrival_time"])
            if stored:
                shard.store_version += 1
                shard.version += 1
                shard.dirty_entities.add(upload.entity_id)
        if not stored:
            raise RuntimeError(
                f"WAL interaction seq={mutation['seq']} for history "
                f"{upload.history_id!r} was rejected by the store on replay — "
                "the journal and the stores have diverged"
            )
        _commit(server, mutation)
    elif kind == "opinion":
        record = OpinionUpload(
            history_id=mutation["history_id"],
            entity_id=mutation["entity_id"],
            rating=mutation["rating"],
            seq=mutation["opinion_seq"],
        )
        if shards is None:
            slot = server._opinions
        else:
            shard = shards[server.router.shard_of(record.history_id)]
            slot = shard.opinions
        existing = slot.get(record.history_id)
        if existing is None or record.seq > existing.seq:
            slot[record.history_id] = record
            if shards is not None:
                shard.version += 1
        else:
            server.opinions_stale += 1
        _commit(server, mutation)
    elif kind == "review":
        from repro.service.server import ExplicitReview

        review = ExplicitReview(
            user_id=mutation["user_id"],
            entity_id=mutation["entity_id"],
            rating=mutation["rating"],
            time=mutation["time"],
        )
        if shards is None:
            server._reviews.setdefault(review.entity_id, []).append(review)
        else:
            shard = shards[server.router.shard_of(review.entity_id)]
            shard.reviews.setdefault(review.entity_id, []).append(review)
    elif kind == "reshard":
        _apply_reshard(server, mutation)
    elif kind == "issue":
        issuer = server.issuer
        device_id, now = mutation["device_id"], mutation["now"]
        window = issuer._window_start.get(device_id)
        if window is None or now - window >= DAY:
            issuer._window_start[device_id] = now
            issuer._issued_today[device_id] = 0
        issuer._issued_today[device_id] = (
            issuer._issued_today[device_id] + mutation["count"]
        )
    else:
        raise ValueError(f"unknown WAL mutation kind {kind!r}")


def _apply_reshard(server, mutation: dict) -> None:
    """Re-run one logged topology change, exactly once.

    The migration is deterministic given the pre-state, so replaying the
    operation reproduces the crashed process's post-reshard placement
    bit for bit.  Idempotency is by WAL sequence number: an operation
    already in ``server.reshard_history`` (pre-applied from the topology
    ledger, or shipped twice) is skipped.  After applying, the router's
    table must equal the logged ``resulting`` spec — divergence means
    the log and the code disagree about the topology, which is never
    recoverable silently.
    """
    if getattr(server, "shards", None) is None:
        raise ValueError("reshard record replayed against a monolithic server")
    seq = mutation["seq"]
    if any(entry["seq"] == seq for entry in server.reshard_history):
        return
    resulting = spec_from_json(mutation["resulting"])
    if mutation["op"] == "split":
        server.split_shard(mutation["shard"])
    elif mutation["op"] == "merge":
        server.merge_shards(mutation["a"], mutation["b"])
    else:
        raise ValueError(f"unknown reshard op {mutation['op']!r}")
    if server.router.spec() != resulting:
        raise RuntimeError(
            f"replayed reshard seq={seq} diverged from the logged topology — "
            "the journal and the router have diverged"
        )
    server.reshard_seq += 1
    server.reshard_history.append(
        {key: value for key, value in mutation.items() if key != "kind"}
    )


def finalize_recovery(server) -> None:
    """Rebuild the maintenance engine's derived state after a bulk load.

    Snapshot restore and WAL replay write the stores directly and skip
    the engine's incremental bookkeeping (claims, dirty sets) — rebuild
    the claim index from the opinion slots and mark every entity dirty,
    so the first post-recovery cycle recomputes everything from store
    content.  By the purity contract of
    :mod:`repro.service.incremental`, that recompute is byte-identical
    to where an uninterrupted incremental run would be.
    """
    engine = server._engine
    engine._claims.clear()
    shards = getattr(server, "shards", None)
    opinion_maps = (
        [server._opinions] if shards is None else [s.opinions for s in shards]
    )
    for opinions in opinion_maps:
        for history_id, opinion in opinions.items():
            engine._claims.setdefault(opinion.entity_id, set()).add(history_id)
    for entity_id in sorted(server.catalog):
        engine.mark_dirty(entity_id)


# --------------------------------------------------------------- recover


def recover_server(
    server, directory: Path, telemetry: Telemetry = NULL
) -> RecoveryReport:
    """Restore a freshly constructed server from a durable directory.

    Loads the newest snapshot that passes its integrity seal (older ones
    are fallbacks; none at all means a cold replay from the full WAL),
    replays every WAL record past it in global sequence order, tolerates
    a torn final frame per lane, and rebuilds the engine's derived state.
    The server is then exactly where the crashed process was at its last
    acceptance commit — ready for re-deliveries and maintenance.
    """
    directory = Path(directory)
    topology = load_topology(directory)
    loaded = load_latest_snapshot(directory)
    snapshot_seq = 0
    state = None
    if loaded is not None:
        snapshot_seq, state = loaded
    # Rebuild the topology the snapshot was taken under *before* loading
    # it: restore routes every key through the server's own router, and
    # the operations covered by the snapshot may live in WAL segments
    # truncation already deleted — the ledger is their only trace.
    # Replaying them on the still-empty server is pure table surgery.
    for entry in topology:
        if entry["seq"] <= snapshot_seq:
            _apply_reshard(server, entry)
    if state is not None:
        restore_state(server, state)
    mutations, torn = read_mutations(directory, after_seq=snapshot_seq)
    for mutation in mutations:
        apply_mutation(server, mutation)
    # Catch-up: a ledger entry whose WAL record the crash cut away (the
    # record is fsynced before the ledger, so this only covers harness
    # truncation past acknowledged bytes) still applies, in order.
    for entry in topology:
        if entry["seq"] > snapshot_seq:
            _apply_reshard(server, entry)
    finalize_recovery(server)
    # A crash between the WAL append and the ledger rewrite leaves the
    # ledger behind the log; re-save so the next truncation cannot strand
    # a replayed-but-unledgered operation.
    if getattr(server, "reshard_history", None):
        save_topology(directory, server.reshard_history)
    telemetry.inc("recovery.replayed", len(mutations))
    if torn:
        telemetry.inc("recovery.torn_tails")
    last_seq = mutations[-1]["seq"] if mutations else snapshot_seq
    return RecoveryReport(
        snapshot_seq=snapshot_seq,
        n_replayed=len(mutations),
        torn_tail=torn,
        next_seq=last_seq + 1,
    )
