"""Canonical snapshots of the RSP's stores, atomically persisted.

A snapshot captures the *logical* repository — histories, opinion slots,
explicit reviews, the dedup nonce table, the spent-token table, issuer
quota windows, and the intake counters — as one JSON-compatible dict in
canonical order (everything sorted by its key), independent of how the
deployment partitions that state.  The same snapshot taken from a
monolithic server and from any sharding of it is byte-identical, and the
same snapshot restores into either deployment: :func:`restore_state`
re-routes every piece through the target server's own router.

Atomicity protocol (the classic one):

1. serialize the sealed state (digest-stamped via the canonical codec);
2. write it to ``<name>.tmp`` in the snapshot directory;
3. flush + ``fsync`` the tmp file — bytes are on stable storage;
4. ``os.rename`` onto the final name — atomic on POSIX, so readers see
   either the whole snapshot or none of it, never a prefix;
5. ``fsync`` the directory so the rename itself survives power loss.

Recovery trusts no snapshot it cannot verify: :func:`load_latest_snapshot`
checks each candidate's seal digest and falls back to the next-older
snapshot on any damage (which is why the journal retains two).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

from repro.core.aggregation import OpinionUpload
from repro.durability.codec import CorruptStateError, seal, unseal
from repro.privacy.history_store import (
    FoldedStats,
    InteractionHistory,
    InteractionUpload,
    StoredRecord,
)

SNAPSHOT_FORMAT = "rsp-snapshot/1"
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.json$")

#: Intake counters that must survive a restart byte-for-byte.  Shared by
#: both deployments; ``pool_fallbacks`` exists only on the sharded facade
#: and is handled with ``getattr``/``hasattr`` guards.
_COUNTERS = (
    "accepted_envelopes",
    "rejected_envelopes",
    "duplicates_suppressed",
    "opinions_stale",
    "history_mismatches",
    "dropped_by_outage",
    "rejected_attestations",
)


def snapshot_name(seq: int) -> str:
    return f"snapshot-{seq:012d}.json"


# --------------------------------------------------------------- capture


def _encode_history(history: InteractionHistory) -> dict:
    folded = history.folded
    return {
        "history_id": history.history_id,
        "entity_id": history.entity_id,
        "records": [
            [
                r.upload.interaction_type,
                r.upload.event_time,
                r.upload.duration,
                r.upload.travel_km,
                r.arrival_time,
            ]
            for r in history.records
        ],
        "folded": None
        if folded is None
        else [
            folded.n,
            folded.earliest_event_time,
            folded.latest_event_time,
            folded.duration_sum,
            folded.travel_sum,
        ],
    }


def _decode_history(blob: dict) -> InteractionHistory:
    folded = blob["folded"]
    return InteractionHistory(
        history_id=blob["history_id"],
        entity_id=blob["entity_id"],
        records=[
            StoredRecord(
                upload=InteractionUpload(
                    history_id=blob["history_id"],
                    entity_id=blob["entity_id"],
                    interaction_type=kind,
                    event_time=event_time,
                    duration=duration,
                    travel_km=travel_km,
                ),
                arrival_time=arrival_time,
            )
            for kind, event_time, duration, travel_km, arrival_time in blob["records"]
        ],
        folded=None
        if folded is None
        else FoldedStats(
            n=folded[0],
            earliest_event_time=folded[1],
            latest_event_time=folded[2],
            duration_sum=folded[3],
            travel_sum=folded[4],
        ),
    )


def _stores_of(server):
    """Normalize both deployments to iterables of their partitioned state.

    Yields ``(history_stores, opinion_maps, review_maps, nonce_sets,
    spent_sets)`` — one element per partition (one for the monolith).
    """
    shards = getattr(server, "shards", None)
    if shards is None:
        return (
            [server.history_store],
            [server._opinions],
            [server._reviews],
            [server._seen_nonces],
            [server._redeemer._spent],
        )
    return (
        [shard.store for shard in shards],
        [shard.opinions for shard in shards],
        [shard.reviews for shard in shards],
        list(server._nonce_buckets),
        list(server._redeemer._spent),
    )


def capture_state(server, wal_seq: int = 0) -> dict:
    """The server's logical state as one canonical JSON-compatible dict.

    Partition-independent: every collection is flattened across shards
    and emitted in sorted key order, so a monolith and any sharding of
    the same content produce identical bytes.  ``wal_seq`` records the
    last journaled mutation this snapshot covers; recovery replays only
    WAL records with a greater sequence number.
    """
    stores, opinion_maps, review_maps, nonce_sets, spent_sets = _stores_of(server)
    histories = sorted(
        (h for store in stores for h in store.all_histories()),
        key=lambda h: h.history_id,
    )
    opinions = {
        history_id: [op.entity_id, op.rating, op.seq]
        for opinions in opinion_maps
        for history_id, op in opinions.items()
    }
    reviews: dict[str, list] = {}
    for review_map in review_maps:
        for entity_id, posted in review_map.items():
            reviews[entity_id] = [
                [review.user_id, review.rating, review.time] for review in posted
            ]
    issuer = server.issuer
    counters = {name: getattr(server, name) for name in _COUNTERS}
    # Always present so monolith and sharded captures stay byte-identical;
    # the monolith simply has no pool to fall back from.
    counters["pool_fallbacks"] = getattr(server, "pool_fallbacks", 0)
    return {
        "wal_seq": wal_seq,
        "histories": [_encode_history(h) for h in histories],
        "opinions": {k: opinions[k] for k in sorted(opinions)},
        "reviews": {k: reviews[k] for k in sorted(reviews)},
        "nonces": sorted(n.hex() for nonces in nonce_sets for n in nonces),
        "spent_tokens": sorted(t.hex() for spent in spent_sets for t in spent),
        "issuer": {
            "window_start": {k: issuer._window_start[k] for k in sorted(issuer._window_start)},
            "issued_today": {k: issuer._issued_today[k] for k in sorted(issuer._issued_today)},
        },
        "counters": counters,
    }


# --------------------------------------------------------------- restore


def restore_state(server, state: dict) -> None:
    """Load a captured state into a freshly constructed server.

    Routing goes through the *target's* own router, so a snapshot taken
    from a monolith restores into a 16-shard deployment (and vice versa)
    with every nonce, token, history, and opinion in the bucket its key
    routes to there.  The caller still owes a :func:`finalize_recovery`
    pass (see :mod:`repro.durability.recovery`) to rebuild the
    maintenance engine's derived dirty/claim state.
    """
    from repro.service.server import ExplicitReview

    shards = getattr(server, "shards", None)
    for blob in state["histories"]:
        history = _decode_history(blob)
        if shards is None:
            server.history_store.adopt(history)
        else:
            shards[server.router.shard_of(history.history_id)].store.adopt(history)
    for history_id, (entity_id, rating, seq) in state["opinions"].items():
        opinion = OpinionUpload(
            history_id=history_id, entity_id=entity_id, rating=rating, seq=seq
        )
        if shards is None:
            server._opinions[history_id] = opinion
        else:
            shards[server.router.shard_of(history_id)].opinions[history_id] = opinion
    for entity_id, posted in state["reviews"].items():
        reviews = [
            ExplicitReview(
                user_id=user_id, entity_id=entity_id, rating=rating, time=time
            )
            for user_id, rating, time in posted
        ]
        if shards is None:
            server._reviews.setdefault(entity_id, []).extend(reviews)
        else:
            shard = shards[server.router.shard_of(entity_id)]
            shard.reviews.setdefault(entity_id, []).extend(reviews)
    for nonce_hex in state["nonces"]:
        nonce = bytes.fromhex(nonce_hex)
        if shards is None:
            server._seen_nonces.add(nonce)
        else:
            server._nonce_buckets[server.router.shard_of_bytes(nonce)].add(nonce)
    for token_hex in state["spent_tokens"]:
        token_id = bytes.fromhex(token_hex)
        if shards is None:
            server._redeemer._spent.add(token_id)
        else:
            server._redeemer._spent[server.router.shard_of_bytes(token_id)].add(
                token_id
            )
    issuer = server.issuer
    issuer._window_start.update(state["issuer"]["window_start"])
    issuer._issued_today.update(state["issuer"]["issued_today"])
    for name, value in state["counters"].items():
        if hasattr(server, name):
            setattr(server, name, value)


# ----------------------------------------------------------------- files


def write_snapshot(directory: Path, seq: int, state: dict) -> Path:
    """Durably persist ``state`` as the snapshot covering WAL seq ``seq``.

    Follows the fsync-then-rename protocol from the module docstring; the
    returned path exists and is durable (or an exception was raised).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    final = directory / snapshot_name(seq)
    tmp = directory / (snapshot_name(seq) + ".tmp")
    payload = json.dumps(seal(state, SNAPSHOT_FORMAT), sort_keys=True).encode()
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.rename(tmp, final)
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return final


def list_snapshots(directory: Path) -> list[tuple[int, Path]]:
    """All snapshot files present, as ``(seq, path)`` sorted ascending."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for path in directory.iterdir():
        match = _SNAPSHOT_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def load_latest_snapshot(directory: Path) -> tuple[int, dict] | None:
    """The newest snapshot that passes its integrity seal, or ``None``.

    Damaged candidates (unparseable JSON, wrong format tag, digest
    mismatch) are skipped in favour of the next-older snapshot — never
    loaded, never fatal, because the WAL retained since the older
    snapshot can replay the difference.
    """
    for seq, path in reversed(list_snapshots(directory)):
        try:
            blob = json.loads(path.read_bytes())
            return seq, unseal(blob, SNAPSHOT_FORMAT)
        except (ValueError, CorruptStateError):
            continue
    return None
