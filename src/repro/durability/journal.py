"""The durable journal: lane-partitioned WAL segments plus snapshots.

:class:`DurableJournal` is the object the servers see through their
duck-typed ``journal`` attribute (the same pattern as ``fault_hook`` and
``telemetry``: production code calls a narrow method surface and never
imports this package).  It owns a directory of:

* ``wal-<lane>-<startseq>.log`` — WAL segments, one active per lane.
  The monolith uses a single lane; the sharded server passes
  ``lane_of=router.shard_of`` so each shard's mutations land in their
  own per-shard WAL file (parallel-friendly I/O), while the **global**
  sequence number stays totally ordered across lanes — replay merges
  lanes by ``seq`` and reproduces exact intake order;
* ``snapshot-<seq>.json`` — sealed snapshots (see
  :mod:`repro.durability.snapshot`).

Commit protocol: the servers call ``log_*`` *after* the store mutation
succeeded but *before* the acceptance commit (accept counter + nonce
burn) — the ``durability-fsync-before-ack`` lint rule holds that line.
Every append flushes to the OS before returning; ``fsync`` runs per
record under ``sync_policy="always"`` or at batch boundaries (the
server's ``receive_all`` calls :meth:`sync_to_disk`) under the default
``"batch"`` group-commit policy.  A journal failure propagates out of
intake uncaught on purpose: the process must die rather than acknowledge
state its log never recorded.

Segment lifecycle: a journal always *starts new segments* on open — it
never appends after a possibly-torn tail — and rotates every lane when a
snapshot commits.  Truncation keeps the two newest snapshots and every
segment needed to replay forward from the older one; everything earlier
is deleted.
"""

from __future__ import annotations

import os
import re
import time
from pathlib import Path

from repro.durability.snapshot import (
    capture_state,
    list_snapshots,
    write_snapshot,
)
from repro.durability.wal import WriteAheadLog, read_wal
from repro.telemetry import NULL, Telemetry

_SEGMENT_RE = re.compile(r"^wal-(\d{2})-(\d{12})\.log$")


def segment_name(lane: int, start_seq: int) -> str:
    return f"wal-{lane:02d}-{start_seq:012d}.log"


def list_segments(directory: Path) -> dict[int, list[tuple[int, Path]]]:
    """Segments on disk grouped by lane, each ``(start_seq, path)`` sorted."""
    directory = Path(directory)
    lanes: dict[int, list[tuple[int, Path]]] = {}
    if not directory.is_dir():
        return lanes
    for path in directory.iterdir():
        match = _SEGMENT_RE.match(path.name)
        if match:
            lanes.setdefault(int(match.group(1)), []).append(
                (int(match.group(2)), path)
            )
    for segments in lanes.values():
        segments.sort()
    return lanes


class DurableJournal:
    """Write-ahead journaling + snapshotting for one server process."""

    def __init__(
        self,
        directory: Path,
        n_lanes: int = 1,
        lane_of=None,
        telemetry: Telemetry = NULL,
        sync_policy: str = "batch",
        keep_snapshots: int = 2,
    ) -> None:
        if n_lanes < 1:
            raise ValueError("need at least one WAL lane")
        if sync_policy not in ("batch", "always"):
            raise ValueError("sync_policy must be 'batch' or 'always'")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.n_lanes = n_lanes
        #: Routing-key -> lane mapper (the sharded router's ``shard_of``);
        #: ``None`` puts everything in lane 0.
        self._lane_of = lane_of
        self.telemetry = telemetry
        self.sync_policy = sync_policy
        self.keep_snapshots = keep_snapshots
        #: Mutations since the last :meth:`~ReplicatedRSPServer.ship`,
        #: retained only when a replication pair sets this True.
        self.keep_outbox = False
        self.outbox: list[dict] = []
        self.closed = False
        self._repair_torn_tails()
        self.next_seq = self._scan_next_seq()
        self._lanes: list[WriteAheadLog] = [
            WriteAheadLog(self.directory / segment_name(lane, self.next_seq))
            for lane in range(n_lanes)
        ]

    def _repair_torn_tails(self) -> None:
        """Trim each lane's final segment to its valid prefix.

        A torn tail is legal only while the segment is physically last in
        its lane — and this journal is about to open a *new* segment after
        it, after which recovery reads old segments strictly.  Trimming on
        reopen seals the old segment: the discarded bytes were, by the
        commit protocol, never acknowledged.
        """
        for segments in list_segments(self.directory).values():
            _start, path = segments[-1]
            result = read_wal(path, tolerate_torn_tail=True)
            if result.torn:
                with open(path, "r+b") as handle:
                    handle.truncate(result.valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())

    def _scan_next_seq(self) -> int:
        """1 + the highest sequence number any durable artifact records."""
        high = 0
        for seq, _path in list_snapshots(self.directory):
            high = max(high, seq)
        for segments in list_segments(self.directory).values():
            for _start, path in segments:
                result = read_wal(path, tolerate_torn_tail=True)
                for record in result.records:
                    high = max(high, record["seq"])
        return high + 1

    # ------------------------------------------------------------ appends

    def _lane_for(self, key: str | None) -> int:
        if key is None or self._lane_of is None:
            return 0
        return self._lane_of(key)

    def _append(self, key: str | None, payload: dict) -> int:
        if self.closed:
            raise RuntimeError("journal is closed; refusing to log")
        payload["seq"] = self.next_seq
        self.next_seq += 1
        lane = self._lane_for(key)
        n_bytes = self._lanes[lane].append_record(
            payload, sync=self.sync_policy == "always"
        )
        self._last_lane = lane
        if self.keep_outbox:
            self.outbox.append(payload)
        self.telemetry.inc("wal.appends")
        self.telemetry.inc("wal.bytes", n_bytes)
        return payload["seq"]

    def log_interaction(self, record, arrival_time: float, nonce, token_id) -> int:
        """One accepted interaction upload, before its acceptance commits."""
        return self._append(
            record.history_id,
            {
                "kind": "interaction",
                "history_id": record.history_id,
                "entity_id": record.entity_id,
                "interaction_type": record.interaction_type,
                "event_time": record.event_time,
                "duration": record.duration,
                "travel_km": record.travel_km,
                "arrival_time": arrival_time,
                "nonce": None if nonce is None else nonce.hex(),
                "token_id": None if token_id is None else token_id.hex(),
            },
        )

    def log_opinion(self, record, nonce, token_id) -> int:
        """One accepted opinion upload (stale re-uploads included: their
        envelope was accepted, so their nonce burn must be journaled even
        though replay will skip the slot write by the same ``seq`` rule)."""
        return self._append(
            record.history_id,
            {
                "kind": "opinion",
                "history_id": record.history_id,
                "entity_id": record.entity_id,
                "rating": record.rating,
                "opinion_seq": record.seq,
                "nonce": None if nonce is None else nonce.hex(),
                "token_id": None if token_id is None else token_id.hex(),
            },
        )

    def log_review(self, user_id: str, entity_id: str, rating: int, time: float) -> int:
        """One accepted explicit review, before it lands in the store."""
        return self._append(
            entity_id,
            {
                "kind": "review",
                # The WAL stores exactly what the attributed review store
                # stores — this is the legacy path's own durable record,
                # not a new identity flow.
                "user_id": user_id,  # repro: allow[priv-server-identity]
                "entity_id": entity_id,
                "rating": rating,
                "time": time,
            },
        )

    def log_issue(self, device_id: str, count: int, now: float) -> int:
        """One successful token issuance (the quota-window tick)."""
        return self._append(
            None,
            {
                "kind": "issue",
                # Issuance is the attributed side by design (quotas are
                # per device); the journal records what the issuer's own
                # window table records, nothing more.
                "device_id": device_id,  # repro: allow[priv-server-identity]
                "count": count,
                "now": now,
            },
        )

    def log_reshard(self, op: dict) -> int:
        """One topology change (split/merge), *before* any state moves.

        Journal-before-migrate: recovery that finds this record replays
        the migration itself (the operation is deterministic given the
        pre-state), so a crash at any point after the append lands in the
        post-reshard topology with every key exactly once.  The record
        carries the full resulting prefix table, which is what the replay
        guard compares against.  Lane 0, like ``log_issue``: the record
        concerns every lane, and lane assignment itself is about to
        change.
        """
        return self._append(None, {"kind": "reshard", **op})

    def remap_lanes(self, n_lanes: int, lane_of) -> None:
        """Re-partition WAL lanes after a reshard.

        Syncs and closes every open segment, then opens one fresh segment
        per *new* lane at the current sequence number — the same
        rotate-on-boundary discipline as :meth:`take_snapshot`, so no
        lane ever appends after another mapping's records.  Replay is
        unaffected: it merges all lanes by the global ``seq``.
        """
        if self.closed:
            raise RuntimeError("journal is closed; refusing to remap lanes")
        if n_lanes < 1:
            raise ValueError("need at least one WAL lane")
        self.sync_to_disk()
        for lane in self._lanes:
            lane.close()
        self.n_lanes = n_lanes
        self._lane_of = lane_of
        self._lanes = [
            WriteAheadLog(self.directory / segment_name(lane, self.next_seq))
            for lane in range(n_lanes)
        ]

    # ----------------------------------------------------- durability edges

    def sync_to_disk(self) -> None:
        """Group-commit point: fsync every lane's active segment."""
        for lane in self._lanes:
            lane.sync_to_disk()

    def take_snapshot(self, server) -> Path:
        """Snapshot ``server``, rotate every lane, truncate old segments."""
        if self.closed:
            raise RuntimeError("journal is closed; refusing to snapshot")
        # Real (not simulated) duration: snapshot cost is an operational
        # observability quantity, never part of any deterministic report.
        started = time.perf_counter()  # repro: allow[det-wall-clock]
        self.sync_to_disk()
        covered = self.next_seq - 1
        path = write_snapshot(self.directory, covered, capture_state(server, covered))
        for lane in self._lanes:
            lane.close()
        self._lanes = [
            WriteAheadLog(self.directory / segment_name(lane, self.next_seq))
            for lane in range(self.n_lanes)
        ]
        self._truncate(covered)
        self.telemetry.inc("snapshot.count")
        self.telemetry.set_gauge(
            "snapshot.duration",
            time.perf_counter() - started,  # repro: allow[det-wall-clock]
        )
        return path

    def _truncate(self, newest_seq: int) -> None:
        """Drop artifacts no retained snapshot needs for replay.

        Retention: the ``keep_snapshots`` newest snapshots, plus every
        segment with records *after* the oldest retained snapshot (the
        fallback replay source if newer snapshots turn out corrupt).
        Segments rotate exactly at snapshot points, so a segment starting
        at or before the oldest retained seq holds only covered records.
        """
        snapshots = list_snapshots(self.directory)
        retained = snapshots[-self.keep_snapshots :]
        for _seq, path in snapshots[: -self.keep_snapshots]:
            path.unlink()
        if not retained:
            return
        oldest_retained = retained[0][0]
        for segments in list_segments(self.directory).values():
            for start_seq, path in segments:
                if start_seq <= oldest_retained and start_seq < self.next_seq:
                    path.unlink()

    def close(self) -> None:
        for lane in self._lanes:
            lane.close()
        self.closed = True

    def crash(self, torn_bytes: int = 0) -> None:
        """Simulate the process dying mid-append (harness-only).

        Closes every lane as a kill would, then — when ``torn_bytes`` is
        positive — appends that much garbage to the most recently written
        lane's segment, modelling a frame whose write the crash cut
        short.  Recovery must absorb exactly this shape of damage.
        """
        last = getattr(self, "_last_lane", 0)
        self.close()
        if torn_bytes > 0:
            with open(self._lanes[last].path, "ab") as handle:
                handle.write(b"\x7f" * torn_bytes)


def attach_journal(server, journal: DurableJournal) -> None:
    """Install ``journal`` on a server and its token issuer."""
    server.journal = journal
    server.issuer.journal = journal
