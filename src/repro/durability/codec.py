"""Canonical byte-stable serialization shared by snapshots and checkpoints.

Everything durable in this repository — server snapshots, WAL payloads,
client checkpoints — serializes through one codec, so "the same logical
state" always means "the same bytes" and a digest over those bytes is a
meaningful integrity seal.  Canonical form is JSON with sorted keys,
no whitespace, and ``allow_nan=False`` (a NaN would break canonicality:
``nan != nan`` undermines any equality argument built on bytes).

The module is dependency-free on purpose: the device-side client imports
it for checkpoint sealing, and must not drag the service layer in
through this path (the ``layer-client-service`` lint rule watches the
direct imports; this keeps the transitive closure clean too).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


class CorruptStateError(ValueError):
    """A sealed state blob failed its integrity check.

    Raised instead of whatever decode exception the damaged payload
    would eventually trigger, so callers can distinguish "this durable
    state is corrupt — refuse to load it" from a programming error.
    """


def canonical_json_bytes(obj: Any) -> bytes:
    """The unique canonical encoding of a JSON-compatible object."""
    return json.dumps(
        obj,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    ).encode("utf-8")


def digest_hex(data: bytes) -> str:
    """Hex SHA-256 of ``data`` — the integrity seal used everywhere here."""
    return hashlib.sha256(data).hexdigest()


def seal(state: dict, kind: str) -> dict:
    """Wrap ``state`` with its format tag and canonical digest."""
    return {
        "format": kind,
        "digest": digest_hex(canonical_json_bytes(state)),
        "state": state,
    }


def unseal(blob: dict, kind: str) -> dict:
    """Verify a sealed blob and return its inner state.

    Raises :class:`CorruptStateError` when the blob is not a sealed
    mapping of the expected ``kind`` or its digest does not match the
    canonical bytes of the payload — before any caller decodes fields
    out of a damaged payload.
    """
    if not isinstance(blob, dict) or "state" not in blob or "digest" not in blob:
        raise CorruptStateError(f"not a sealed {kind!r} blob")
    if blob.get("format") != kind:
        raise CorruptStateError(
            f"sealed blob has format {blob.get('format')!r}, expected {kind!r}"
        )
    state = blob["state"]
    actual = digest_hex(canonical_json_bytes(state))
    if actual != blob["digest"]:
        raise CorruptStateError(
            f"{kind} digest mismatch: payload hashes to {actual[:16]}…, "
            f"seal says {str(blob['digest'])[:16]}… — refusing to load"
        )
    return state
