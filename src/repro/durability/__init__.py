"""``repro.durability`` — WAL + snapshot persistence for the RSP.

The paper's premise is a *long-lived* repository of anonymous histories
and opinions, yet every store in :mod:`repro.service` and
:mod:`repro.scale` lives in process memory.  This package makes the
repository survive its process:

* :mod:`repro.durability.wal` — an append-only, checksummed,
  length-prefixed write-ahead log of every accepted intake mutation;
* :mod:`repro.durability.snapshot` — periodic canonical (byte-stable)
  snapshots of the four stores, digest-stamped and fsync'd-then-renamed,
  after which the WAL is truncated;
* :mod:`repro.durability.journal` — the ``journal`` hook the servers
  call at their intake commit points (duck-typed, like ``fault_hook``,
  so production code never imports infrastructure it shouldn't);
* :mod:`repro.durability.recovery` — load the latest valid snapshot,
  replay the WAL tail (tolerating a torn final record), and restore the
  dedup nonce table and per-history ``seq`` ordering exactly;
* :mod:`repro.durability.replication` — a primary/replica pair with
  deterministic log shipping and failover promotion.

This ``__init__`` deliberately re-exports only the dependency-free
pieces (:mod:`codec` and :mod:`wal`): the client imports the canonical
codec for its checkpoints, and must not transitively pull the service
layer through a package import.  Service-facing modules are imported by
their full paths (``repro.durability.journal`` etc.) from the
orchestration layer, the CLI, and tests.

See ``docs/DURABILITY.md`` for the on-disk formats and the recovery and
failover protocols.
"""

from __future__ import annotations

from repro.durability.codec import (
    CorruptStateError,
    canonical_json_bytes,
    digest_hex,
    seal,
    unseal,
)
from repro.durability.wal import WalCorruptionError, WalReadResult, WriteAheadLog, read_wal

__all__ = [
    "CorruptStateError",
    "WalCorruptionError",
    "WalReadResult",
    "WriteAheadLog",
    "canonical_json_bytes",
    "digest_hex",
    "read_wal",
    "seal",
    "unseal",
]
