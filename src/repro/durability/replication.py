"""Primary/replica replication: deterministic log shipping + failover.

The replication unit is the primary's WAL: :class:`ReplicatedRSPServer`
ships batches of journaled mutations over a fault-injectable channel,
and the replica applies them with the *same* function crash recovery
uses (:func:`repro.durability.recovery.apply_mutation`) — a replica is,
by construction, a continuously recovering copy of the primary.  The
replica acknowledges by sequence offset; ``lag`` (mutations journaled
but not yet acked) is the bounded staleness counter the chaos tests
watch grow through a replica outage and drain after it.

Determinism: shipping draws no randomness and applies mutations in
global ``seq`` order, so the replica's stores are byte-identical to the
primary's at every acked offset — which is what makes failover exact.
When :mod:`repro.faults` kills the primary (a :class:`PrimaryCrash` in
the plan), :meth:`fail_over` tears the primary's WAL tail like a real
mid-append death, promotes the replica (engine rebuild + fresh journal +
baseline snapshot), and the epoch driver points clients at it; accepted-
but-unshipped envelopes are re-sent by the existing client
retransmission machinery and deduplicated by the replicated nonce table.
"""

from __future__ import annotations

from pathlib import Path

from repro.durability.journal import DurableJournal, attach_journal
from repro.durability.recovery import apply_mutation, finalize_recovery
from repro.reshard.topology import save_topology
from repro.telemetry import NULL, Telemetry
from repro.telemetry.catalog import REPLICA_BATCH_BUCKETS


class ReplicationChannel:
    """The primary→replica shipping link, fault-injectable like any other.

    Mirrors the ``fault_hook`` duck-typing used everywhere: the channel
    holds an optional hook with ``replica_down(now) -> bool`` and asks it
    before each shipment.  A down channel defers the whole batch — log
    shipping is all-or-nothing per batch, there are no partial applies.
    """

    def __init__(self, fault_hook=None) -> None:
        self.fault_hook = fault_hook

    def available(self, now: float) -> bool:
        return self.fault_hook is None or not self.fault_hook.replica_down(now)


class ReplicatedRSPServer:
    """A primary/replica pair sharing one WAL via log shipping.

    ``primary`` and ``replica`` must be freshly constructed twins (same
    catalog, same ``key_seed`` — so tokens minted against the primary's
    public key verify on the replica after failover).  The pair turns on
    the journal's outbox retention and ships it at the driver's batch
    points (the epoch boundary, after intake and maintenance).
    """

    def __init__(
        self,
        primary,
        replica,
        journal: DurableJournal,
        channel: ReplicationChannel,
        telemetry: Telemetry = NULL,
        durable_root: Path | None = None,
    ) -> None:
        self.primary = primary
        self.replica = replica
        self.journal = journal
        self.channel = channel
        self.telemetry = telemetry
        #: Where the promoted replica's own journal lives; defaults to a
        #: sibling of the primary's directory.
        self.durable_root = (
            Path(durable_root) if durable_root is not None else journal.directory.parent
        )
        journal.keep_outbox = True
        #: Highest seq the replica has applied and acknowledged.
        self.acked_seq = journal.next_seq - 1
        self.promoted = False
        self.deferred_batches = 0
        self.max_lag = 0

    @property
    def lag(self) -> int:
        """Mutations journaled on the primary but not yet replica-acked."""
        return self.journal.next_seq - 1 - self.acked_seq

    def ship(self, now: float) -> int:
        """Ship the outbox to the replica; returns mutations applied.

        A down channel defers the entire batch (and grows ``lag``); the
        next successful shipment drains everything pending, so an outage
        window costs staleness, never loss.
        """
        if self.promoted:
            return 0
        lag = self.lag
        self.max_lag = max(self.max_lag, lag)
        if not self.channel.available(now):
            self.deferred_batches += 1
            self.telemetry.set_gauge("replica.lag", lag)
            return 0
        batch = [m for m in self.journal.outbox if m["seq"] > self.acked_seq]
        for mutation in batch:
            apply_mutation(self.replica, mutation)
        if batch:
            self.acked_seq = batch[-1]["seq"]
            self.telemetry.inc("replica.shipped", len(batch))
            self.telemetry.observe(
                "replica.batch", len(batch), buckets=REPLICA_BATCH_BUCKETS
            )
        self.journal.outbox.clear()
        self.telemetry.set_gauge("replica.lag", self.lag)
        return len(batch)

    def promote(self):
        """Make the replica the service endpoint; returns it.

        Rebuilds the engine's derived state (shipping applies mutations
        store-directly, like recovery), attaches the shared telemetry,
        gives the promoted server its own journal under
        ``durable_root/promoted``, and seeds that journal with a baseline
        snapshot so the new primary is itself recoverable from scratch.
        """
        if self.promoted:
            return self.replica
        self.promoted = True
        replica = self.replica
        finalize_recovery(replica)
        replica.attach_telemetry(self.telemetry)
        shards = getattr(replica, "shards", None)
        journal = DurableJournal(
            self.durable_root / "promoted",
            n_lanes=1 if shards is None else replica.router.n_shards,
            lane_of=None if shards is None else replica.router.shard_of,
            telemetry=self.telemetry,
            sync_policy=self.journal.sync_policy,
        )
        attach_journal(replica, journal)
        if getattr(replica, "reshard_history", None):
            # Shipped reshard records changed the replica's topology; the
            # promoted directory needs the ledger for its own recovery
            # (the baseline snapshot below is topology-independent, but a
            # later crash must rebuild the prefix table first).
            save_topology(journal.directory, replica.reshard_history)
        journal.take_snapshot(replica)
        self.telemetry.inc("replica.promotions")
        return replica

    def fail_over(self, torn_bytes: int = 0):
        """Kill the primary mid-append and promote the replica.

        ``torn_bytes`` of garbage land on the primary's WAL tail — the
        same damage :func:`repro.durability.recovery.recover_server`
        absorbs — making the dead primary's directory itself a valid
        recovery source for post-mortem verification.
        """
        self.journal.crash(torn_bytes)
        return self.promote()
