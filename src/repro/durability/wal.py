"""The write-ahead log file format: append-only, checksummed, torn-tolerant.

One WAL segment is::

    +----------------------+
    | magic "RSPWAL01" (8) |
    +----------------------+
    | frame | frame | ...  |   frame = [length u32 BE][crc32 u32 BE][payload]
    +----------------------+

``payload`` is the canonical JSON of one mutation (see
:mod:`repro.durability.journal` for the record kinds).  The CRC covers
the payload bytes only; the length prefix is implicitly validated by the
CRC (a corrupted length either points past EOF — a torn tail — or
misframes the payload, which then fails its checksum).

Torn-tail policy — the heart of crash recovery:

* damage that is *physically last* in the file (an incomplete header or
  payload, or a checksum/decode failure on the final frame) is a torn
  write: the process died mid-append.  The reader recovers cleanly to
  the previous record and reports ``torn=True``;
* damage with valid bytes *after* it cannot be a torn write — something
  rewrote the middle of an append-only file.  The reader fails loudly
  with :class:`WalCorruptionError` and never yields a record past the
  damage, because replaying around silent corruption would fabricate
  state.

Appends flush to the OS on every record (a process crash after
``append`` returns cannot lose the record) and ``fsync`` either per
record or at the caller's group-commit points — see
``docs/DURABILITY.md`` for the durability levels.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

WAL_MAGIC = b"RSPWAL01"
_HEADER = struct.Struct(">II")
#: Sanity bound on one frame's payload; anything larger is corruption.
MAX_PAYLOAD_BYTES = 1 << 28


class WalCorruptionError(RuntimeError):
    """Mid-file WAL damage that no torn-write could have produced."""


@dataclass
class WalReadResult:
    """Everything one segment read produced."""

    records: list[dict] = field(default_factory=list)
    #: Byte offset where each record's frame starts (crash-matrix tests
    #: truncate at these boundaries).
    offsets: list[int] = field(default_factory=list)
    #: True when the segment ended in a torn (incomplete/corrupt) tail.
    torn: bool = False
    #: Bytes of the valid prefix (magic + complete frames).
    valid_bytes: int = 0


class WriteAheadLog:
    """One append-only segment file."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        exists = self.path.exists() and self.path.stat().st_size > 0
        self._file = open(self.path, "ab")
        if not exists:
            self._file.write(WAL_MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())
        self.bytes_written = 0
        self.records_written = 0

    def append_record(self, payload: dict, sync: bool = True) -> int:
        """Frame, checksum, and write one record; returns frame bytes.

        The buffered write is flushed to the OS before returning, so a
        *process* crash never loses an appended record; ``sync=True``
        additionally ``fsync``s for power-loss durability (``False``
        defers that to the next :meth:`sync_to_disk` — group commit).
        """
        data = json.dumps(payload, separators=(",", ":"), allow_nan=False).encode()
        frame = _HEADER.pack(len(data), zlib.crc32(data)) + data
        self._file.write(frame)
        self._file.flush()
        if sync:
            os.fsync(self._file.fileno())
        self.bytes_written += len(frame)
        self.records_written += 1
        return len(frame)

    def sync_to_disk(self) -> None:
        """Force written frames to stable storage (the group-commit point)."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()


def read_wal(path: Path, tolerate_torn_tail: bool = True) -> WalReadResult:
    """Read one segment, applying the torn-tail policy documented above.

    ``tolerate_torn_tail=False`` turns every torn tail into a
    :class:`WalCorruptionError` — used for non-final segments, whose
    tails were implicitly sealed by the existence of a later segment.
    """
    data = Path(path).read_bytes()
    result = WalReadResult()
    if not data.startswith(WAL_MAGIC):
        # A file shorter than (or equal to) a magic prefix is a crash
        # during segment creation — an empty, torn segment.  Anything
        # else claiming to be a WAL is corrupt.
        if len(data) <= len(WAL_MAGIC) and WAL_MAGIC.startswith(data):
            if not tolerate_torn_tail and data:
                raise WalCorruptionError(f"{path}: truncated magic header")
            result.torn = bool(data)
            return result
        raise WalCorruptionError(f"{path}: bad magic header")
    offset = len(WAL_MAGIC)
    total = len(data)

    def torn(message: str) -> WalReadResult:
        if not tolerate_torn_tail:
            raise WalCorruptionError(f"{path}: {message}")
        result.torn = True
        result.valid_bytes = offset
        return result

    while offset < total:
        if total - offset < _HEADER.size:
            return torn(f"incomplete frame header at offset {offset}")
        length, crc = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if length > MAX_PAYLOAD_BYTES or end > total:
            return torn(f"frame at offset {offset} extends past end of file")
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            if end == total:
                return torn(f"checksum mismatch in final frame at offset {offset}")
            raise WalCorruptionError(
                f"{path}: checksum mismatch at offset {offset} with "
                f"{total - end} valid bytes after it — not a torn tail"
            )
        try:
            record = json.loads(payload)
        except ValueError:
            if end == total:
                return torn(f"undecodable final frame at offset {offset}")
            raise WalCorruptionError(
                f"{path}: undecodable frame at offset {offset} mid-file"
            ) from None
        result.records.append(record)
        result.offsets.append(offset)
        offset = end
    result.valid_bytes = offset
    return result
