"""repro — reproduction of "Towards Comprehensive Repositories of Opinions".

An end-to-end implementation of the recommendation-sharing provider (RSP)
envisioned by Zhang et al. (HotNets-XV 2016): implicit inference of user
opinions from passively monitored activity, privacy-preserving anonymous
storage of interaction histories, and detection of fake activity — together
with a synthetic review ecosystem that reproduces the paper's measurement
study.

Subpackages
-----------
``repro.util``         seeded randomness, distributions, statistics, clock
``repro.world``        physical-world simulator (ground truth)
``repro.measurement``  Section 2 measurement study (Table 1, Figure 1)
``repro.sensing``      device sensors and entity resolution
``repro.client``       the RSP smartphone app
``repro.privacy``      anonymous uploads, unlinkable history storage, blind tokens
``repro.fraud``        fake-activity detection and the attacker zoo
``repro.core``         opinion inference, aggregation, visualizations, discovery
``repro.service``      the RSP server
"""

__version__ = "1.0.0"
