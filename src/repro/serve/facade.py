"""One serving facade for both deployments: ``server.serving``.

:class:`ServingLayer` duck-types its server — monolithic
:class:`~repro.service.server.RSPServer` or sharded
:class:`~repro.scale.server.ShardedRSPServer` — through the same four
attributes both expose: ``catalog``, ``_summaries``,
``_accepted_histories``, and ``_engine`` (the
:class:`~repro.service.incremental.MaintenanceEngine` whose dirty-set
notifications drive cache invalidation).  ``telemetry`` is read off the
server at call time, so attaching telemetry before or after the serving
layer both work.

The layer is constructed lazily (``server.serving``): a deployment that
never queries never subscribes, never touches the cache, and never emits
an ``rsp.serve.*`` metric — which keeps the golden telemetry pins for
query-free runs intact.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from repro.serve.cache import SummaryVersionCache
from repro.serve.engine import QueryEngine, ServeQuery, ServeResponse
from repro.serve.index import SummaryIndex
from repro.serve.ranking import DEFAULT_RANKING, RankingConfig
from repro.telemetry.catalog import SERVE_LATENCY_BUCKETS, SERVE_RESULT_BUCKETS
from repro.telemetry.registry import DEPLOYMENT
from repro.world.geography import CityGrid


class ServingLayer:
    """Indexed, cached reads over a server's live summaries."""

    def __init__(
        self,
        server,
        grid: CityGrid | None = None,
        ranking: RankingConfig = DEFAULT_RANKING,
        max_cache_entries: int = 4096,
    ) -> None:
        self._server = server
        self.index = SummaryIndex(list(server.catalog.values()), grid=grid)
        self.engine = QueryEngine(self.index, ranking)
        self.cache = SummaryVersionCache(max_entries=max_cache_entries)
        server._engine.subscribe(self._on_summaries_changed)

    @property
    def telemetry(self):
        return self._server.telemetry

    @property
    def stats(self):
        return self.cache.stats

    # --------------------------------------------------------- coherence

    def _on_summaries_changed(self, changed_ids: Iterable[str]) -> None:
        dropped = self.cache.invalidate(changed_ids)
        self.telemetry.inc("rsp.serve.invalidations", dropped)

    # ------------------------------------------------------------ reads

    def query(self, query: ServeQuery) -> ServeResponse:
        """Answer from cache when current, else compute and fill."""
        start = time.perf_counter()  # repro: allow[det-wall-clock]
        telemetry = self.telemetry
        entry = self.cache.get(query)
        if entry is not None:
            response: ServeResponse = entry.response
            telemetry.inc("rsp.serve.cache_hits")
        else:
            response = self._compute(query)
            self.cache.put(
                query,
                response,
                self.index.candidate_ids(query.category, query.attribute),
            )
            telemetry.inc("rsp.serve.cache_misses")
        telemetry.inc("rsp.serve.queries")
        telemetry.observe(
            "rsp.serve.results", response.n_matches, buckets=SERVE_RESULT_BUCKETS
        )
        elapsed = time.perf_counter() - start  # repro: allow[det-wall-clock]
        telemetry.observe(
            "rsp.serve.latency",
            elapsed,
            buckets=SERVE_LATENCY_BUCKETS,
            scope=DEPLOYMENT,
        )
        return response

    def query_uncached(self, query: ServeQuery) -> ServeResponse:
        """Fresh recompute bypassing the cache — the coherence oracle.

        Deliberately emits no telemetry and leaves the cache untouched,
        so tests and benchmarks can interleave oracle reads freely.
        """
        return self._compute(query)

    def _compute(self, query: ServeQuery) -> ServeResponse:
        return self.engine.respond(
            query, self._server._summaries, self._server._accepted_histories
        )
