"""The inverted index behind "best X near Y": category x zone x attribute.

The catalog is the RSP's static dimension — entities appear at deploy
time, not per request — so the index is built once per serving layer and
answers every query from postings:

* ``(category, zone_id)`` postings hold the entity ids of that category
  inside that zone (the city-grid zone plays the paper's zipcode);
* attribute postings hold the ids carrying a tag, including a synthetic
  ``price:N`` tag per price level so every entity is attribute-queryable.

Candidate generation sweeps only the zones whose area intersects the
query circle, concatenates their category postings, applies the optional
attribute filter, and finishes with the exact distance test.  Zone
assignment clamps into the grid (``CityGrid.zone_containing``), so the
sweep widens edge zones to cover everything outside the city bounds —
an entity clamped inward from outside the grid is still found by any
circle that reaches its true location.

The index is *coverage-exact*: for every query, the candidate set equals
what a full catalog scan with the same predicates would produce
(``tests/serve/test_index.py`` proves it against randomized catalogs).
Candidates are returned in entity-id order — the read path never leaks
hash order into ranked output (the ``det-read-path`` lint rule holds the
line).
"""

from __future__ import annotations

from repro.world.entities import Entity
from repro.world.geography import CityGrid, Point, Zone


def price_tag(price_level: int) -> str:
    """The synthetic attribute tag carried by every entity."""
    return f"price:{price_level}"


class SummaryIndex:
    """Inverted index over the catalog: category x zone x attribute."""

    def __init__(self, catalog: list[Entity], grid: CityGrid | None = None) -> None:
        if not catalog:
            raise ValueError("catalog must be non-empty")
        self.grid = grid or CityGrid()
        self._entities: dict[str, Entity] = {}
        #: (category, zone_id) -> entity ids, in id order.
        self._postings: dict[tuple[str, str], list[str]] = {}
        #: attribute tag -> entity ids carrying it (membership-only).
        self._attribute_postings: dict[str, frozenset[str]] = {}
        attribute_sets: dict[str, set[str]] = {}
        for entity in sorted(catalog, key=lambda e: e.entity_id):
            if entity.entity_id in self._entities:
                raise ValueError(f"duplicate entity id {entity.entity_id!r}")
            self._entities[entity.entity_id] = entity
            zone = self.grid.zone_containing(entity.location)
            key = (entity.category, zone.zone_id)
            self._postings.setdefault(key, []).append(entity.entity_id)
            for tag in (*entity.attributes, price_tag(entity.price_level)):
                attribute_sets.setdefault(tag, set()).add(entity.entity_id)
        self._attribute_postings = {
            tag: frozenset(ids) for tag, ids in sorted(attribute_sets.items())
        }

    @property
    def n_entities(self) -> int:
        return len(self._entities)

    @property
    def n_postings(self) -> int:
        """Number of (category, zone) posting lists."""
        return len(self._postings)

    def entity(self, entity_id: str) -> Entity:
        return self._entities[entity_id]

    def attribute_ids(self, tag: str) -> frozenset[str]:
        """Ids carrying ``tag`` (empty set for unknown tags)."""
        return self._attribute_postings.get(tag, frozenset())

    # -------------------------------------------------------- zone sweep

    def _zone_reach(self, zone: Zone, near: Point) -> float:
        """Distance from ``near`` to the zone's *assignment region*.

        The assignment region is the zone rectangle widened to infinity
        on every edge that borders the outside of the grid, matching the
        clamping of :meth:`CityGrid.zone_containing` — so a point is in
        exactly one assignment region, the region of the zone it is
        assigned to.
        """
        x_min = float("-inf") if zone.col == 0 else zone.x_min
        x_max = float("inf") if zone.col == self.grid.cols - 1 else zone.x_max
        y_min = float("-inf") if zone.row == 0 else zone.y_min
        y_max = float("inf") if zone.row == self.grid.rows - 1 else zone.y_max
        dx = max(x_min - near.x, 0.0, near.x - x_max)
        dy = max(y_min - near.y, 0.0, near.y - y_max)
        return (dx * dx + dy * dy) ** 0.5

    def zones_in_reach(self, near: Point, radius_km: float) -> list[Zone]:
        """Zones whose assignment region intersects the query circle."""
        return [
            zone
            for zone in self.grid.zones
            if self._zone_reach(zone, near) <= radius_km
        ]

    # -------------------------------------------------------- candidates

    def candidate_ids(self, category: str, attribute: str | None = None) -> list[str]:
        """Every id matching the discrete predicates, in id order.

        This is the query's *dependency set* — the entities whose summary
        versions a cached result is keyed on.  It deliberately ignores
        the location predicate: the geometry never changes, so keying on
        the widest discrete match keeps the set independent of float
        distance edge cases.
        """
        ids = [
            entity_id
            for (posting_category, _), zone_ids in sorted(self._postings.items())
            if posting_category == category
            for entity_id in zone_ids
        ]
        if attribute is not None:
            tagged = self.attribute_ids(attribute)
            ids = [entity_id for entity_id in ids if entity_id in tagged]
        return sorted(ids)

    def candidates(
        self,
        category: str,
        near: Point,
        radius_km: float,
        attribute: str | None = None,
    ) -> list[tuple[Entity, float]]:
        """Matching ``(entity, distance_km)`` pairs, in entity-id order.

        Equivalent to the full-scan predicate ``category == c and
        (attribute in tags) and distance <= r`` — the zone sweep only
        prunes, never filters.
        """
        tagged = None if attribute is None else self.attribute_ids(attribute)
        matches: list[tuple[Entity, float]] = []
        for zone in self.zones_in_reach(near, radius_km):
            for entity_id in self._postings.get((category, zone.zone_id), ()):
                if tagged is not None and entity_id not in tagged:
                    continue
                entity = self._entities[entity_id]
                distance = near.distance_to(entity.location)
                if distance <= radius_km:
                    matches.append((entity, distance))
        matches.sort(key=lambda pair: pair[0].entity_id)
        return matches
