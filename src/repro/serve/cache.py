"""Summary-version result cache — warm reads that can never be stale.

Every entity has a monotone *summary version*, starting at 0 and bumped
each time the maintenance cycle reports the entity's summary may have
changed (the mode-invariant ``summarize_tracked`` set — see
``docs/SERVING.md`` for the coherence protocol).  A cached result stores
the response together with a *fingerprint*: the ``(entity_id, version)``
pairs of its dependency set, which is the query's full discrete-predicate
candidate set (:meth:`repro.serve.index.SummaryIndex.candidate_ids`) —
every entity whose summary could influence the response, including ones
currently ranked out or unsummarized.

Coherence is belt and braces:

* **eager eviction** — :meth:`invalidate` bumps the changed entities'
  versions and drops every dependent entry via a reverse map (this is
  what the ``rsp.serve.invalidations`` counter measures);
* **fingerprint check** — :meth:`get` re-validates the stored fingerprint
  against current versions, so even an invalidation that failed to drop a
  dependent entry (an incomplete reverse map) degrades to a cache miss,
  never to a stale read.

The fingerprint scan is O(dependency set), which would dominate the hit
path on dense categories, so :meth:`get` takes a *generation* fast path:
every :meth:`invalidate` that bumps versions advances a cache-wide
generation counter, and an entry stamped with the current generation is
provably current — no version can have moved since it was stored (or
last revalidated).  Only entries from an older generation pay the full
scan, and a scan that passes re-stamps the entry, so steady-state hits
are O(1) and the first hit after each maintenance round amortises the
scan.

``tests/serve/test_cache.py`` drives randomized intake + maintenance +
query schedules and asserts a cached read never differs from a fresh
recompute.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field
from typing import Any

Fingerprint = tuple[tuple[str, int], ...]


@dataclass
class CachedResult:
    """One cache entry: the response plus the versions it was built from."""

    response: Any
    #: ``(entity_id, version)`` for every dependency, in id order.
    fingerprint: Fingerprint
    #: Cache generation at store (or last revalidation) time; an entry
    #: stamped with the current generation skips the fingerprint scan.
    generation: int = 0


@dataclass
class CacheStats:
    """Plain counters; the facade mirrors them into ``rsp.serve.*``."""

    hits: int = 0
    misses: int = 0
    #: Entries dropped by dirty-set notifications.
    invalidations: int = 0
    #: Entries dropped by the capacity bound.
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class SummaryVersionCache:
    """Result cache keyed by query, validated by per-entity summary versions."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        #: Advanced by every :meth:`invalidate` that bumps a version.
        self._generation = 0
        self._versions: dict[str, int] = {}
        #: Insertion-ordered for FIFO capacity eviction.
        self._entries: OrderedDict[Hashable, CachedResult] = OrderedDict()
        #: entity_id -> keys of entries depending on it.
        self._dependents: dict[str, set[Hashable]] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def version(self, entity_id: str) -> int:
        return self._versions.get(entity_id, 0)

    def fingerprint(self, dependency_ids: Iterable[str]) -> Fingerprint:
        """Current ``(entity_id, version)`` pairs for a dependency set.

        Deduplicated: callers may pass an id twice (e.g. a candidate list
        built from overlapping predicates), and a repeated pair would
        inflate the fingerprint and the revalidation scan for no
        coherence benefit.
        """
        return tuple(
            (eid, self.version(eid)) for eid in sorted(set(dependency_ids))
        )

    # ----------------------------------------------------------- lookups

    def get(self, key: Hashable) -> CachedResult | None:
        """The entry for ``key`` if present *and* still current."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.generation != self._generation:
            versions = self._versions
            if any(
                versions.get(eid, 0) != version
                for eid, version in entry.fingerprint
            ):
                # The invalidation that bumped these versions failed to
                # drop this entry; degrade to a miss, never a stale read.
                self._drop(key)
                self.stats.misses += 1
                return None
            entry.generation = self._generation
        self.stats.hits += 1
        return entry

    def put(self, key: Hashable, response: Any, dependency_ids: Iterable[str]) -> CachedResult:
        """Store ``response`` stamped with the dependencies' current versions."""
        if key in self._entries:
            self._drop(key)
        entry = CachedResult(
            response=response,
            fingerprint=self.fingerprint(dependency_ids),
            generation=self._generation,
        )
        while len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.stats.evictions += 1
        self._entries[key] = entry
        for eid, _ in entry.fingerprint:
            self._dependents.setdefault(eid, set()).add(key)
        return entry

    # ------------------------------------------------------ invalidation

    def invalidate(self, changed_ids: Iterable[str]) -> int:
        """Bump versions for ``changed_ids``; drop dependents.  Returns drops."""
        doomed: set[Hashable] = set()
        changed = sorted(set(changed_ids))
        if changed:
            self._generation += 1
        for eid in changed:
            self._versions[eid] = self._versions.get(eid, 0) + 1
            doomed |= self._dependents.get(eid, set())
        for key in list(doomed):
            if key in self._entries:
                self._drop(key)
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (versions survive — they are monotone forever).

        Cleared entries count as evictions: they were dropped by an
        operator action, not by staleness, and hit-rate telemetry would
        misreport the subsequent cold misses if the drops went uncounted.
        """
        self.stats.evictions += len(self._entries)
        self._entries.clear()
        self._dependents.clear()

    def _drop(self, key: Hashable) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for eid, _ in entry.fingerprint:
            dependents = self._dependents.get(eid)
            if dependents is not None:
                dependents.discard(key)
                if not dependents:
                    del self._dependents[eid]
