"""``repro.serve`` — the read path: indexed discovery at high QPS.

The paper's user-facing half (Section 5, Figure 3) is search: "best X
near Y" over the entity summaries the maintenance cycle keeps fresh.
The monolithic :meth:`~repro.service.server.RSPServer.search` answers
that by linear-scanning the catalog per query; this package is the
serving layer that makes reads cheap and keeps them cheap across
maintenance cycles:

* :class:`~repro.serve.index.SummaryIndex` — an inverted index over the
  catalog keyed by category x zone ("zipcode") x attribute, so a query
  touches only the entities that could possibly match;
* :class:`~repro.serve.engine.QueryEngine` — ranks the candidates by a
  helpfulness-weighted blend of explicit and inferred opinions
  (:mod:`repro.serve.ranking`) and renders Figure-3-style comparative
  summaries for the top results;
* :class:`~repro.serve.cache.SummaryVersionCache` — a result cache keyed
  by per-entity summary versions and invalidated by the incremental
  engine's mode-invariant dirty sets
  (:meth:`repro.service.incremental.MaintenanceEngine.subscribe`), so a
  warm read is a dict probe and can never be stale;
* :class:`~repro.serve.facade.ServingLayer` — the one facade both
  deployments expose as ``server.serving`` / ``server.query(...)``.

Everything on the read path inherits the repository's byte-identity
contract: for the same intake and maintenance schedule, a query renders
the identical bytes on the monolith and on any shard/worker count, cold
or warm, before and after incremental maintenance — ``tests/serve``
holds the proof obligations, ``docs/SERVING.md`` the design.
"""

from __future__ import annotations

from repro.serve.cache import CachedResult, SummaryVersionCache
from repro.serve.engine import QueryEngine, ServeQuery, ServeResponse, ServeResult
from repro.serve.facade import ServingLayer
from repro.serve.index import SummaryIndex
from repro.serve.loadgen import QueryWorkload, SyntheticQueries
from repro.serve.ranking import RankingConfig, helpfulness_signal, rank_key, serve_score

__all__ = [
    "CachedResult",
    "QueryEngine",
    "QueryWorkload",
    "RankingConfig",
    "ServeQuery",
    "ServeResponse",
    "ServeResult",
    "ServingLayer",
    "SummaryIndex",
    "SummaryVersionCache",
    "SyntheticQueries",
    "helpfulness_signal",
    "rank_key",
    "serve_score",
]
