"""The serve-path query engine: ranked "best X near Y" with Fig-3 context.

The engine is pure computation over inputs handed to it per call — the
candidate index (static), the current summaries, and the accepted
histories for the comparative panels.  It holds no mutable state, which
is what lets :class:`~repro.serve.facade.ServingLayer` interpose the
summary-version cache: the same inputs always produce byte-identical
rendered responses (``ServeResponse.render``), on any deployment shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregation import EntityOpinionSummary
from repro.privacy.history_store import InteractionHistory
from repro.core.visualization import ComparativeVisualization, compare_entities
from repro.serve.index import SummaryIndex
from repro.serve.ranking import DEFAULT_RANKING, RankingConfig, rank_key, serve_score
from repro.world.entities import Entity
from repro.world.geography import Point


@dataclass(frozen=True)
class ServeQuery:
    """A read-path query; hashable so it doubles as the cache key."""

    category: str
    near: Point
    radius_km: float = 8.0
    #: Optional attribute filter, e.g. ``"price:2"`` (see ``price_tag``).
    attribute: str | None = None
    #: Ranked results kept in the response.
    limit: int = 10
    #: Top entities given Figure-3 comparative panels.
    compare_top: int = 3

    def __post_init__(self) -> None:
        if self.radius_km <= 0:
            raise ValueError("radius must be positive")
        if self.limit <= 0:
            raise ValueError("limit must be positive")
        if self.compare_top < 0:
            raise ValueError("compare_top must be non-negative")


@dataclass(frozen=True)
class ServeResult:
    """One ranked result with its evidence."""

    entity: Entity
    distance_km: float
    summary: EntityOpinionSummary
    score: float


@dataclass(frozen=True)
class ServeResponse:
    """Ranked results plus comparative context, renderable to stable bytes."""

    query: ServeQuery
    results: tuple[ServeResult, ...]
    #: Matches before the ``limit`` cut.
    n_matches: int
    visualization: ComparativeVisualization | None

    @property
    def n_results(self) -> int:
        return len(self.results)

    def render(self) -> str:
        query = self.query
        where = f"({query.near.x:g}, {query.near.y:g})"
        tag = f" [{query.attribute}]" if query.attribute is not None else ""
        lines = [
            f"Best {query.category!r}{tag} near {where} within "
            f"{query.radius_km:g} km ({self.n_matches} matches)"
        ]
        for rank, result in enumerate(self.results, start=1):
            summary = result.summary
            explicit = (
                f"{summary.explicit_mean:.1f}* x{summary.n_explicit_reviews}"
                if summary.explicit_mean is not None
                else "no reviews"
            )
            inferred = (
                f"{summary.inferred_mean:.1f}* x{summary.n_inferred_opinions} inferred"
                if summary.inferred_mean is not None
                else "no inferences"
            )
            lines.append(
                f"{rank:2d}. {result.entity.entity_id:24s} "
                f"{result.score:6.3f}  {result.distance_km:4.1f} km  "
                f"[{explicit} | {inferred}]"
            )
        if self.visualization is not None:
            lines.append("")
            lines.append(self.visualization.render())
        return "\n".join(lines)


def empty_summary(entity_id: str) -> EntityOpinionSummary:
    """The zero-evidence summary used for entities no cycle has touched."""
    return EntityOpinionSummary(
        entity_id=entity_id,
        n_explicit_reviews=0,
        explicit_mean=None,
        explicit_histogram=[0] * 5,
        n_inferred_opinions=0,
        inferred_mean=None,
        inferred_histogram=[0] * 5,
        n_interacting_users=0,
        effective_interactions=0.0,
        raw_interactions=0,
    )


class QueryEngine:
    """Ranks index candidates under the serve-path scoring spec."""

    def __init__(
        self, index: SummaryIndex, ranking: RankingConfig = DEFAULT_RANKING
    ) -> None:
        self.index = index
        self.ranking = ranking

    def rank(
        self, query: ServeQuery, summaries: dict[str, EntityOpinionSummary]
    ) -> list[ServeResult]:
        """Every match, best first (total order — see ``repro.serve.ranking``)."""
        results: list[ServeResult] = []
        for entity, distance in self.index.candidates(
            query.category, query.near, query.radius_km, query.attribute
        ):
            summary = summaries.get(entity.entity_id)
            if summary is None:
                summary = empty_summary(entity.entity_id)
            results.append(
                ServeResult(
                    entity=entity,
                    distance_km=distance,
                    summary=summary,
                    score=serve_score(summary, self.ranking),
                )
            )
        results.sort(
            key=lambda r: rank_key(r.score, r.distance_km, r.entity.entity_id)
        )
        return results

    def respond(
        self,
        query: ServeQuery,
        summaries: dict[str, EntityOpinionSummary],
        histories: dict[str, list[InteractionHistory]],
    ) -> ServeResponse:
        """Rank, cut to ``limit``, and attach Figure-3 panels for the top."""
        ranked = self.rank(query, summaries)
        visualization: ComparativeVisualization | None = None
        top = [r.entity.entity_id for r in ranked[: query.compare_top]]
        if top:
            visualization = compare_entities(
                {entity_id: histories.get(entity_id, []) for entity_id in top}
            )
        return ServeResponse(
            query=query,
            results=tuple(ranked[: query.limit]),
            n_matches=len(ranked),
            visualization=visualization,
        )
