"""The serving layer's ranking function — the spec lives in docs/SERVING.md.

A ranked result's score blends three signals from one
:class:`~repro.core.aggregation.EntityOpinionSummary`:

* **smoothed quality** — the Bayesian-smoothed combined mean of explicit
  and inferred opinions (same prior discipline as
  :func:`repro.core.discovery.opinion_score`): entities with little
  evidence shrink toward the prior, so one 5-star review does not outrank
  forty 4.2-star inferences;
* **evidence volume** — ``log1p(total opinions)``, a logarithmic bonus so
  well-covered entities win ties without drowning quality;
* **helpfulness** — the fraction of the entity's opinions that carry full
  influence weight (PAPERS.md: the Amazon helpfulness-votes study).
  Explicit reviews count as fully helpful; an inferred opinion counts by
  its :func:`~repro.core.aggregation.influence_weight`, so an entity
  whose score rests on mature interaction histories outranks one propped
  up by thin (sybil-shaped) histories with the same mean.

``serve_score`` is monotone in the helpfulness signal by construction
(the signal enters linearly with a non-negative weight), and
:func:`helpfulness_signal` is monotone in ``inferred_weight`` holding
the counts fixed — ``tests/serve/test_ranking.py`` pins both.

**Tie-breaking is total**: results sort by ``(-score, distance_km,
entity_id)``.  Scores and distances are floats and may collide;
``entity_id`` is unique, so the composite key is a strict total order —
any permutation of the input produces the identical ranking, which is
what makes rendered responses byte-comparable across deployments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.aggregation import EntityOpinionSummary


@dataclass(frozen=True)
class RankingConfig:
    """Knobs of the serve-path score (defaults are the documented spec)."""

    #: Prior the smoothed mean shrinks toward with little evidence.
    prior_mean: float = 2.5
    #: Pseudo-observations behind the prior.
    prior_weight: float = 5.0
    #: Coefficient of the ``log1p(n)`` evidence-volume bonus.
    volume_weight: float = 0.15
    #: Coefficient of the helpfulness signal (must be >= 0 to keep the
    #: score monotone in helpfulness).
    helpfulness_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.prior_weight < 0 or self.volume_weight < 0:
            raise ValueError("weights must be non-negative")
        if self.helpfulness_weight < 0:
            raise ValueError("helpfulness_weight must be non-negative")


#: The documented default used by every serving layer.
DEFAULT_RANKING = RankingConfig()


def helpfulness_signal(summary: EntityOpinionSummary) -> float:
    """Fraction of the entity's opinions carrying full influence, in [0, 1].

    Explicit reviews are attributed and quota-bounded, so each counts as
    one fully helpful vote; inferred opinions count by their summed
    influence weight (thin histories contribute fractionally — Section
    4.3).  No opinions at all yields 0.
    """
    total = summary.n_explicit_reviews + summary.n_inferred_opinions
    if total == 0:
        return 0.0
    helpful = summary.n_explicit_reviews + min(
        summary.inferred_weight, float(summary.n_inferred_opinions)
    )
    return helpful / total


def serve_score(
    summary: EntityOpinionSummary, config: RankingConfig = DEFAULT_RANKING
) -> float:
    """The serve-path ranking score (see the module docstring for the spec)."""
    mean = summary.combined_mean
    n = summary.total_opinions
    if mean is None or n == 0:
        smoothed = config.prior_mean
    else:
        smoothed = (mean * n + config.prior_mean * config.prior_weight) / (
            n + config.prior_weight
        )
    return (
        smoothed
        + config.volume_weight * math.log1p(n)
        + config.helpfulness_weight * helpfulness_signal(summary)
    )


def rank_key(score: float, distance_km: float, entity_id: str) -> tuple:
    """The total sort key: score desc, then distance, then entity id.

    ``entity_id`` is unique within a catalog, so two distinct results
    never compare equal — the ranking is a strict total order.
    """
    return (-score, distance_km, entity_id)
