"""Read-side load generation: a Zipf stream of "best X near Y" queries.

The write side already has :mod:`repro.ingest.loadgen`; this is its read
mirror, built from the same primitives (labelled streams via
:func:`repro.util.rng.make_rng`, popularity via
:func:`repro.util.distributions.bounded_zipf`) so a query workload is
exactly reproducible.  Real search traffic is heavy-tailed the same way
visits are — everyone asks for the popular category near the popular
part of town — so queries are drawn Zipf-ranked from a finite pool of
distinct queries.  The pool size bounds the cold-miss count, which is
what makes the ≥90% cache-hit-rate gate of ``BENCH_9.json`` a property
of the workload shape rather than a tuning fluke.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.engine import ServeQuery
from repro.serve.index import price_tag
from repro.util.distributions import bounded_zipf
from repro.util.rng import make_rng
from repro.world.entities import Entity
from repro.world.geography import CityGrid


@dataclass(frozen=True)
class QueryWorkload:
    """Shape of one synthetic query stream."""

    #: Distinct queries in the pool (bounds cold misses).
    n_distinct: int = 64
    #: Zipf popularity exponent over query rank.
    zipf_exponent: float = 1.1
    radius_km: float = 8.0
    #: Fraction of pool queries carrying a ``price:N`` attribute filter.
    attribute_fraction: float = 0.25
    limit: int = 10
    compare_top: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_distinct < 1:
            raise ValueError("need at least one distinct query")
        if self.radius_km <= 0:
            raise ValueError("radius must be positive")
        if not 0.0 <= self.attribute_fraction <= 1.0:
            raise ValueError("attribute_fraction must lie in [0, 1]")


class SyntheticQueries:
    """A deterministic, resumable stream of :class:`ServeQuery` draws.

    The pool is fixed at construction from the catalog's categories and
    the grid's zone centres; :meth:`batch` draws Zipf-ranked indices from
    the labelled stream, so — exactly like
    :class:`repro.ingest.loadgen.SyntheticTraffic` — the generator's
    cursor is the workload state and any batching of the same total
    yields the same query prefix.
    """

    def __init__(
        self,
        catalog: list[Entity],
        config: QueryWorkload | None = None,
        grid: CityGrid | None = None,
    ) -> None:
        if not catalog:
            raise ValueError("catalog must be non-empty")
        self.config = config or QueryWorkload()
        self.grid = grid or CityGrid()
        self._gen = make_rng(self.config.seed, "serve/queries")
        self.pool: tuple[ServeQuery, ...] = self._build_pool(catalog)
        #: Total queries drawn so far.
        self.generated = 0

    def _build_pool(self, catalog: list[Entity]) -> tuple[ServeQuery, ...]:
        config = self.config
        categories = sorted({entity.category for entity in catalog})
        zones = self.grid.zones
        gen = self._gen
        category_picks = gen.integers(0, len(categories), size=config.n_distinct)
        zone_picks = gen.integers(0, len(zones), size=config.n_distinct)
        attribute_rolls = gen.random(size=config.n_distinct)
        price_picks = gen.integers(1, 5, size=config.n_distinct)
        pool = []
        for i in range(config.n_distinct):
            zone = zones[int(zone_picks[i])]
            attribute = (
                price_tag(int(price_picks[i]))
                if attribute_rolls[i] < config.attribute_fraction
                else None
            )
            pool.append(
                ServeQuery(
                    category=categories[int(category_picks[i])],
                    near=zone.center,
                    radius_km=config.radius_km,
                    attribute=attribute,
                    limit=config.limit,
                    compare_top=config.compare_top,
                )
            )
        return tuple(pool)

    @property
    def n_distinct(self) -> int:
        """Distinct queries actually in the pool (draws can collide)."""
        return len(set(self.pool))

    def batch(self, size: int) -> list[ServeQuery]:
        """The next ``size`` queries, popularity-ranked by pool order."""
        if size <= 0:
            return []
        ranks = bounded_zipf(
            self._gen, self.config.zipf_exponent, len(self.pool), size
        )
        self.generated += size
        return [self.pool[int(rank)] for rank in ranks]
