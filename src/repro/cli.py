"""Command-line interface: ``python -m repro <command>``.

One subcommand per major experiment, all running the same library code the
benchmarks exercise:

* ``measure``  — regenerate the Section 2 measurement study (Table 1, Figure 1)
* ``pipeline`` — run the full Figure 2 architecture and report coverage/accuracy
* ``search``   — run the pipeline, then answer one query like the RSP would
* ``query``    — run the pipeline, then query the indexed serving layer (cached)
* ``epochs``   — operate the service over periodic client syncs
* ``figure3``  — the three-dentist comparative-visualization scenario
* ``audit``    — de-anonymization attacks against naive vs hardened clients
* ``redteam``  — the fraud attacker zoo vs the typical-user detector
* ``recover``  — rebuild a crashed service from its durable WAL + snapshots
* ``lint``     — the AST invariant analyzer (privacy, determinism, layering)
* ``analyze``  — the whole-program analyzer (call graph, interprocedural taint)
* ``telemetry`` — run the service and render its observability dashboard
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence


def _cmd_measure(args: argparse.Namespace) -> int:
    from repro.measurement import (
        all_service_specs,
        crawl_service,
        figure1a,
        figure1b,
        figure1c,
        google_play_spec,
        measure_engagement,
        table1,
        youtube_spec,
    )

    crawls = [crawl_service(spec, seed=args.seed) for spec in all_service_specs()]
    print(table1(crawls).render())
    print("\nFigure 1(a): reviews per entity")
    print(figure1a(crawls).render())
    print("\nFigure 1(b): entities with >= 50 reviews per query")
    print(figure1b(crawls).render())
    engagement = [
        measure_engagement(google_play_spec(), seed=args.seed),
        measure_engagement(youtube_spec(), seed=args.seed),
    ]
    print("\nFigure 1(c): explicit vs implicit interaction")
    print(figure1c(engagement).render())
    return 0


def _build_world(args: argparse.Namespace):
    from repro.world.behavior import BehaviorConfig, BehaviorSimulator
    from repro.world.population import TownConfig, build_town

    town = build_town(TownConfig(n_users=args.users), seed=args.seed)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=args.days), seed=args.seed
    ).run()
    return town, result


def _run_pipeline(args: argparse.Namespace):
    from repro.orchestration.pipeline import PipelineConfig, run_full_pipeline

    town, result = _build_world(args)
    outcome = run_full_pipeline(
        town, result, PipelineConfig(horizon_days=float(args.days), seed=args.seed)
    )
    return town, result, outcome


def _cmd_pipeline(args: argparse.Namespace) -> int:
    town, result, outcome = _run_pipeline(args)
    server = outcome.server
    print(f"users: {len(town.users)}   simulated days: {args.days}")
    print(f"ground-truth interactions: {len(result.events)}")
    print(f"explicit reviews:          {server.n_explicit_reviews}")
    print(f"inferred opinions:         {server.n_opinions}")
    print(f"anonymous histories:       {server.history_store.n_histories}")
    print(f"opinion gain:              {outcome.coverage_gain():.1f}x")
    print(f"inference MAE:             {outcome.mean_absolute_error:.2f} stars")
    print(f"abstention rate:           {outcome.abstention_rate:.2f}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.core.discovery import Query
    from repro.world.geography import Point

    town, _, outcome = _run_pipeline(args)
    near = (
        Point(args.x, args.y)
        if args.x is not None and args.y is not None
        else town.grid.zones[len(town.grid.zones) // 2].center
    )
    response = outcome.server.search(
        Query(category=args.category, near=near, radius_km=args.radius)
    )
    print(response.render())
    if args.visualize and response.visualization is not None:
        print()
        print(response.visualization.render())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serve.engine import ServeQuery
    from repro.world.geography import Point

    town, _, outcome = _run_pipeline(args)
    server = outcome.server
    server.attach_serving(grid=town.grid)
    near = (
        Point(args.x, args.y)
        if args.x is not None and args.y is not None
        else town.grid.zones[len(town.grid.zones) // 2].center
    )
    query = ServeQuery(
        category=args.category,
        near=near,
        radius_km=args.radius,
        attribute=args.attribute,
        limit=args.limit,
    )
    for _ in range(args.repeat):
        response = server.query(query)
    print(response.render())
    stats = server.serving.stats
    print(
        f"\ncache: {stats.hits} hits / {stats.misses} misses "
        f"({stats.hit_rate():.0%} hit rate), "
        f"{stats.invalidations} invalidations"
    )
    return 0


def _build_fault_plan(args: argparse.Namespace, horizon: float, epoch_length: float):
    """Translate the chaos flags into a FaultPlan (None when all are off)."""
    from repro.faults import (
        ClientCrash,
        DropFault,
        FaultPlan,
        IssuerOutage,
        PrimaryCrash,
        ReplicaOutage,
        ServerOutage,
        Window,
    )

    drops = ()
    if args.drop > 0:
        drops = (DropFault(Window(0.0, horizon + 30 * 24 * 3600.0), args.drop),)
    server_outages = ()
    if args.server_outage_epoch is not None:
        e = args.server_outage_epoch
        # Cover the epoch's ingestion point too (epoch end + 2 days).
        server_outages = (
            ServerOutage(Window((e - 1) * epoch_length, e * epoch_length + 3 * 24 * 3600.0)),
        )
    issuer_outages = ()
    if args.issuer_outage_epoch is not None:
        e = args.issuer_outage_epoch
        issuer_outages = (IssuerOutage(Window((e - 1) * epoch_length, e * epoch_length)),)
    crashes = ()
    if args.crash_epoch is not None:
        crashes = (ClientCrash(time=(args.crash_epoch - 0.5) * epoch_length),)
    primary_crashes = ()
    primary_epoch = getattr(args, "primary_crash_epoch", None)
    if primary_epoch is not None:
        primary_crashes = (
            PrimaryCrash(time=(primary_epoch - 0.5) * epoch_length, torn_bytes=7),
        )
    replica_outages = ()
    replica_epoch = getattr(args, "replica_outage_epoch", None)
    if replica_epoch is not None:
        e = replica_epoch
        # Cover the epoch's ingestion point (epoch end + 2 days), where the
        # driver ships the log, so the shipment is actually deferred.
        replica_outages = (
            ReplicaOutage(Window((e - 1) * epoch_length, e * epoch_length + 3 * 24 * 3600.0)),
        )
    plan = FaultPlan(
        seed=args.fault_seed,
        drops=drops,
        server_outages=server_outages,
        issuer_outages=issuer_outages,
        crashes=crashes,
        primary_crashes=primary_crashes,
        replica_outages=replica_outages,
    )
    return None if plan.is_empty else plan


def _cmd_epochs(args: argparse.Namespace) -> int:
    from repro.orchestration.epochs import run_epochs
    from repro.orchestration.pipeline import PipelineConfig
    from repro.privacy.uploads import RetransmitPolicy

    town, result = _build_world(args)
    horizon = args.days * 24 * 3600.0
    plan = _build_fault_plan(args, horizon, horizon / args.epochs)
    retransmit = RetransmitPolicy(max_attempts=args.retransmit) if args.retransmit > 1 else None
    reshard_schedule = None
    if args.reshard:
        from repro.reshard import parse_schedule

        reshard_schedule = parse_schedule(args.reshard)
    autoscale = None
    if args.autoscale_split is not None:
        from repro.reshard import AutoscalePolicy

        autoscale = AutoscalePolicy(
            split_above=args.autoscale_split, merge_below=args.autoscale_merge
        )
    outcome = run_epochs(
        town,
        result,
        PipelineConfig(horizon_days=float(args.days), seed=args.seed, retransmit=retransmit),
        n_epochs=args.epochs,
        fault_plan=plan,
        n_shards=args.shards,
        workers=args.workers,
        durable_dir=args.durable_dir,
        replicate=args.replicate,
        snapshot_every=args.snapshot_every,
        ingest_batch=args.ingest_batch,
        queue_depth=args.queue_depth,
        reshard_schedule=reshard_schedule,
        autoscale=autoscale,
    )
    if outcome.reshard_ops:
        applied = ", ".join(
            f"epoch {epoch}: {op.describe()}" for epoch, op in outcome.reshard_ops
        )
        print(f"resharding: {applied}")
    if args.ingest_batch or args.queue_depth is not None:
        front = "batched" if args.ingest_batch else "per-record"
        bound = (
            f"bounded queue depth {args.queue_depth}"
            if args.queue_depth is not None
            else "unbounded intake"
        )
        print(f"ingest: {front} front end, {bound}")
    if plan is not None:
        print(f"fault injection: {plan.describe()}")
    if args.durable_dir is not None:
        mode = "primary/replica" if args.replicate else "WAL + snapshots"
        print(f"durability: {mode} under {args.durable_dir}")
    if args.shards > 1 or args.workers > 0:
        print(
            f"deployment: {args.shards} shards, "
            f"{args.workers} maintenance workers (0 = serial)"
        )
    print(f"{'epoch':>5} {'new records':>12} {'total':>7} "
          f"{'histories':>10} {'opinions':>9} {'rejected':>9} "
          f"{'dropped':>8} {'bounced':>8} {'dup-sup':>8} {'resent':>7}")
    for report in outcome.reports:
        rejected_histories = (
            f"{report.maintenance.n_rejected_histories:>9}"
            if report.maintenance is not None
            else f"{'deferred':>9}"
        )
        print(
            f"{report.epoch:>5} {report.new_records:>12} {report.total_records:>7} "
            f"{report.total_histories:>10} {report.n_opinions:>9} "
            f"{rejected_histories} "
            f"{report.dropped_messages:>8} {report.rejected_envelopes:>8} "
            f"{report.duplicates_suppressed:>8} {report.retransmissions:>7}"
        )
    pair = outcome.replication
    if pair is not None:
        status = "PROMOTED (replica is now serving)" if pair.promoted else "standing by"
        print(
            f"replica: {status} — lag {pair.lag} record(s), "
            f"peak {pair.max_lag}, {pair.deferred_batches} shipment(s) deferred"
        )
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.orchestration.epochs import run_epochs
    from repro.orchestration.pipeline import PipelineConfig
    from repro.telemetry import AGGREGATE
    from repro.telemetry.dashboard import render_dashboard

    town, result = _build_world(args)
    horizon = args.days * 24 * 3600.0
    plan = _build_fault_plan(args, horizon, horizon / args.epochs)
    outcome = run_epochs(
        town,
        result,
        PipelineConfig(horizon_days=float(args.days), seed=args.seed),
        n_epochs=args.epochs,
        fault_plan=plan,
        n_shards=args.shards,
        workers=args.workers,
    )
    telemetry = outcome.telemetry
    scope = AGGREGATE if args.aggregate_only else None
    if args.json:
        print(telemetry.export_json(scope=scope, indent=2))
        return 0
    if plan is not None:
        print(f"fault injection: {plan.describe()}\n")
    print(
        f"deployment: {args.shards} shard(s), {args.workers} worker(s) — "
        f"aggregate digest {telemetry.digest(scope=AGGREGATE)[:16]}…\n"
    )
    print(render_dashboard(telemetry, scope=scope))
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    from collections import defaultdict

    import numpy as np

    from repro.util.stats import pearson
    from repro.world.scenarios import (
        DENTIST_A,
        DENTIST_B,
        DENTIST_C,
        Figure3Config,
        run_figure3,
    )

    _, result = run_figure3(Figure3Config(seed=args.seed))
    per_user: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
    distances: dict[str, dict[str, list]] = defaultdict(lambda: defaultdict(list))
    for event in result.events:
        per_user[event.entity_id][event.user_id] += 1
        distances[event.entity_id][event.user_id].append(event.distance_km)
    for dentist in (DENTIST_A, DENTIST_B, DENTIST_C):
        counts = [c for c in per_user[dentist].values()]
        repeat = [c for c in counts if c >= 2]
        avg_distance = [
            float(np.mean(distances[dentist][u]))
            for u, c in per_user[dentist].items()
            if c >= 2
        ]
        correlation = pearson(repeat, avg_distance)
        print(
            f"{dentist}: {len(counts):3d} patients, "
            f"repeat fraction {np.mean([c > 1 for c in counts]):.2f}, "
            f"distance-visits correlation {correlation:+.2f}"
        )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.privacy.anonymity import batching_network, immediate_network
    from repro.privacy.attacks import linkage_attack, timing_attack
    from repro.privacy.identifiers import DeviceIdentity
    from repro.privacy.uploads import UploadScheduler, hardened_config, naive_config
    from repro.sensing.policy import duty_cycled_policy
    from repro.sensing.resolution import EntityResolver
    from repro.sensing.sensors import generate_trace
    from repro.util.clock import DAY

    town, result = _build_world(args)
    horizon = args.days * DAY
    resolver = EntityResolver(town.entities)

    for label, config, network in (
        ("naive", naive_config(), immediate_network(seed=args.seed)),
        ("hardened", hardened_config(), batching_network(seed=args.seed)),
    ):
        true_owner, activity = {}, {}
        for index, user in enumerate(town.users):
            trace = generate_trace(
                user.user_id, town, result, horizon, duty_cycled_policy(), seed=args.seed
            )
            interactions = resolver.resolve(trace)
            identity = DeviceIdentity.create(user.user_id, seed=index)
            UploadScheduler(identity, config, seed=index).submit_all(interactions, network)
            for interaction in interactions:
                true_owner[identity.history_id(interaction.entity_id)] = user.user_id
            activity[user.user_id] = [i.time + i.duration for i in interactions]
        deliveries = network.deliveries_until(horizon + 3 * DAY)
        link = linkage_attack(deliveries, true_owner)
        timing = timing_attack(deliveries, activity, true_owner)
        print(
            f"{label:9s} linkage recall {link.recall:.2f}   "
            f"timing attribution {timing.accuracy:.2f} "
            f"(chance {timing.random_baseline:.3f})"
        )
    return 0


def _cmd_redteam(args: argparse.Namespace) -> int:
    from repro.fraud.attackers import CallSpamAttacker, EmployeeAttacker, MimicAttacker
    from repro.fraud.detector import FraudDetector
    from repro.fraud.profiles import build_profiles
    from repro.privacy.anonymity import batching_network
    from repro.privacy.history_store import HistoryStore
    from repro.privacy.identifiers import DeviceIdentity
    from repro.privacy.uploads import UploadScheduler, hardened_config
    from repro.sensing.policy import duty_cycled_policy
    from repro.sensing.resolution import EntityResolver
    from repro.sensing.sensors import generate_trace
    from repro.util.clock import DAY
    from repro.world.entities import EntityKind

    town, result = _build_world(args)
    horizon = args.days * DAY
    resolver = EntityResolver(town.entities)
    network = batching_network(seed=args.seed)
    store = HistoryStore()
    for index, user in enumerate(town.users):
        trace = generate_trace(
            user.user_id, town, result, horizon, duty_cycled_policy(), seed=args.seed
        )
        UploadScheduler(
            DeviceIdentity.create(user.user_id, seed=index), hardened_config(), seed=index
        ).submit_all(resolver.resolve(trace), network)
    for delivery in network.deliveries_until(horizon + 3 * DAY):
        store.append(delivery.payload, arrival_time=delivery.arrival_time)

    kinds = {entity.entity_id: entity.kind.label for entity in town.entities}
    profiles = build_profiles(store, kinds)
    detector = FraudDetector(profiles, kinds)

    def judge(uploads):
        attack_store = HistoryStore()
        for upload in uploads:
            attack_store.append(upload, arrival_time=upload.event_time)
        [history] = attack_store.all_histories()
        return detector.judge(history)

    plumber = town.entities_of_kind(EntityKind.PLUMBER)[0].entity_id
    restaurant = town.entities_of_kind(EntityKind.RESTAURANT)[0].entity_id
    dentist = town.entities_of_kind(EntityKind.DENTIST)[0].entity_id

    spam = CallSpamAttacker().generate(DeviceIdentity.create("s", seed=1), plumber, 10 * DAY)
    employee = EmployeeAttacker().generate(DeviceIdentity.create("e", seed=2), restaurant, 0.0)
    print(f"call-spam: {'DETECTED' if judge(spam.uploads).suspicious else 'evaded'}")
    print(f"employee:  {'DETECTED' if judge(employee.uploads).suspicious else 'evaded'}")
    if "dentist" in profiles:
        mimic = MimicAttacker().generate(
            DeviceIdentity.create("m", seed=3), dentist, 0.0, profiles["dentist"]
        )
        verdict = judge(mimic.uploads)
        print(
            f"mimic:     {'detected' if verdict.suspicious else 'EVADED'} "
            f"(cost: {mimic.cost.wall_clock_days:.0f} days of realistic behaviour)"
        )
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    import hashlib
    from pathlib import Path

    from repro.durability.recovery import recover_server
    from repro.orchestration.pipeline import PipelineConfig
    from repro.scale.server import ShardedRSPServer
    from repro.service.server import RSPServer
    from repro.util.clock import DAY
    from repro.world.population import TownConfig, build_town

    town = build_town(TownConfig(n_users=args.users), seed=args.seed)
    config = PipelineConfig(horizon_days=float(args.days), seed=args.seed)
    if args.shards > 1:
        server = ShardedRSPServer(
            catalog=town.entities,
            quota_per_day=config.quota_per_day,
            key_seed=config.seed,
            key_bits=config.key_bits,
            n_shards=args.shards,
        )
    else:
        server = RSPServer(
            catalog=town.entities,
            quota_per_day=config.quota_per_day,
            key_seed=config.seed,
            key_bits=config.key_bits,
        )
    # ``repro epochs --durable-dir D`` journals under D/primary (and a
    # promoted replica under D/promoted); accept either D or the lane
    # directory itself.
    base = Path(args.durable_dir)
    directory = base / "primary" if (base / "primary").is_dir() else base
    report = recover_server(server, directory)
    print(f"recovered from: {directory}")
    print(f"snapshot seq:   {report.snapshot_seq}")
    print(f"replayed:       {report.n_replayed} WAL record(s)")
    print(f"torn tail:      {'yes (discarded)' if report.torn_tail else 'no'}")
    print(f"next seq:       {report.next_seq}")
    print(
        f"state: {server.n_records} records, {server.n_histories} histories, "
        f"{server.accepted_envelopes} accepted envelopes"
    )
    maintenance = server.run_maintenance(now=args.days * DAY + 2 * DAY)
    digest = hashlib.sha256(repr(maintenance).encode("utf-8")).hexdigest()
    print(
        f"post-recovery maintenance: {server.n_opinions} opinions, "
        f"report digest {digest[:16]}…"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_analyze

    return run_analyze(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Towards Comprehensive Repositories of Opinions' (HotNets-XV 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_world_args(p):
        p.add_argument("--users", type=int, default=80, help="population size")
        p.add_argument("--days", type=float, default=120.0, help="simulated days")
        p.add_argument("--seed", type=int, default=42, help="simulation seed")

    measure = sub.add_parser("measure", help="regenerate the Section 2 measurement study")
    measure.add_argument("--seed", type=int, default=2016)
    measure.set_defaults(func=_cmd_measure)

    pipeline = sub.add_parser("pipeline", help="run the full Figure 2 architecture")
    add_world_args(pipeline)
    pipeline.set_defaults(func=_cmd_pipeline)

    search = sub.add_parser("search", help="run the pipeline, then answer one query")
    add_world_args(search)
    search.add_argument("--category", default="thai", help="category to search")
    search.add_argument("--x", type=float, default=None, help="query x (km)")
    search.add_argument("--y", type=float, default=None, help="query y (km)")
    search.add_argument("--radius", type=float, default=10.0, help="radius (km)")
    search.add_argument("--visualize", action="store_true", help="print Figure 3 panels")
    search.set_defaults(func=_cmd_search)

    query = sub.add_parser(
        "query", help="run the pipeline, then query the indexed serving layer"
    )
    add_world_args(query)
    query.add_argument("--category", default="thai")
    query.add_argument("--radius", type=float, default=8.0)
    query.add_argument("--x", type=float, default=None)
    query.add_argument("--y", type=float, default=None)
    query.add_argument(
        "--attribute", default=None, help="attribute filter, e.g. price:2"
    )
    query.add_argument("--limit", type=int, default=10)
    query.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="ask the same query N times (N>1 exercises the result cache)",
    )
    query.set_defaults(func=_cmd_query)

    epochs = sub.add_parser("epochs", help="operate the service over periodic syncs")
    add_world_args(epochs)
    epochs.add_argument("--epochs", type=int, default=6, help="number of sync epochs")
    epochs.add_argument(
        "--drop", type=float, default=0.0, help="injected network drop rate [0, 1]"
    )
    epochs.add_argument(
        "--server-outage-epoch", type=int, default=None,
        help="epoch (1-based) during which the upload endpoint is down",
    )
    epochs.add_argument(
        "--issuer-outage-epoch", type=int, default=None,
        help="epoch (1-based) during which the token issuer is down",
    )
    epochs.add_argument(
        "--crash-epoch", type=int, default=None,
        help="epoch (1-based) mid-way through which every client crashes and restores",
    )
    epochs.add_argument(
        "--retransmit", type=int, default=1,
        help="max send attempts per record (1 = fire-and-forget once)",
    )
    epochs.add_argument("--fault-seed", type=int, default=0, help="fault-plan seed")
    epochs.add_argument(
        "--shards", type=int, default=1,
        help="store partitions (1 = monolithic server; >1 = repro.scale)",
    )
    epochs.add_argument(
        "--workers", type=int, default=0,
        help="maintenance worker processes (0 = serial in-process)",
    )
    epochs.add_argument(
        "--durable-dir", default=None,
        help="WAL + snapshot directory (enables durable journaling)",
    )
    epochs.add_argument(
        "--replicate", action="store_true",
        help="run a log-shipped warm standby (requires --durable-dir)",
    )
    epochs.add_argument(
        "--snapshot-every", type=int, default=1,
        help="take a snapshot every N epochs (with --durable-dir)",
    )
    epochs.add_argument(
        "--primary-crash-epoch", type=int, default=None,
        help="epoch (1-based) mid-way through which the primary RSP dies "
        "with a torn WAL tail (requires --replicate)",
    )
    epochs.add_argument(
        "--replica-outage-epoch", type=int, default=None,
        help="epoch (1-based) during which log shipping is down",
    )
    epochs.add_argument(
        "--ingest-batch", action="store_true",
        help="route intake through the batched front end (repro.ingest)",
    )
    epochs.add_argument(
        "--queue-depth", type=int, default=None,
        help="bound intake behind a shedding queue of this capacity",
    )
    epochs.add_argument(
        "--reshard", action="append", default=None,
        metavar="EPOCH:split:SHARD|EPOCH:merge:A:B",
        help="apply a live topology change at the start of the given epoch "
        "(repeatable; requires a sharded deployment)",
    )
    epochs.add_argument(
        "--autoscale-split", type=int, default=None,
        help="split the hottest shard when its history count exceeds this "
        "(enables the telemetry-driven autoscaler)",
    )
    epochs.add_argument(
        "--autoscale-merge", type=int, default=0,
        help="merge the two coldest shards when their combined history "
        "count stays under this (with --autoscale-split)",
    )
    epochs.set_defaults(func=_cmd_epochs)

    telemetry = sub.add_parser(
        "telemetry", help="run the service, then render its telemetry dashboard"
    )
    add_world_args(telemetry)
    telemetry.add_argument("--epochs", type=int, default=6, help="number of sync epochs")
    telemetry.add_argument(
        "--drop", type=float, default=0.0, help="injected network drop rate [0, 1]"
    )
    telemetry.add_argument(
        "--server-outage-epoch", type=int, default=None,
        help="epoch (1-based) during which the upload endpoint is down",
    )
    telemetry.add_argument(
        "--issuer-outage-epoch", type=int, default=None,
        help="epoch (1-based) during which the token issuer is down",
    )
    telemetry.add_argument(
        "--crash-epoch", type=int, default=None,
        help="epoch (1-based) mid-way through which every client crashes and restores",
    )
    telemetry.add_argument("--fault-seed", type=int, default=0, help="fault-plan seed")
    telemetry.add_argument(
        "--shards", type=int, default=1,
        help="store partitions (1 = monolithic server; >1 = repro.scale)",
    )
    telemetry.add_argument(
        "--workers", type=int, default=0,
        help="maintenance worker processes (0 = serial in-process)",
    )
    telemetry.add_argument(
        "--json", action="store_true", help="print the canonical JSON export instead"
    )
    telemetry.add_argument(
        "--aggregate-only", action="store_true",
        help="restrict to the deployment-invariant (aggregate) scope",
    )
    telemetry.set_defaults(func=_cmd_telemetry)

    figure3 = sub.add_parser("figure3", help="the three-dentist scenario")
    figure3.add_argument("--seed", type=int, default=42)
    figure3.set_defaults(func=_cmd_figure3)

    audit = sub.add_parser("audit", help="de-anonymization attacks, naive vs hardened")
    add_world_args(audit)
    audit.set_defaults(func=_cmd_audit)

    redteam = sub.add_parser("redteam", help="fraud attacker zoo vs the detector")
    add_world_args(redteam)
    redteam.set_defaults(func=_cmd_redteam)

    recover = sub.add_parser(
        "recover", help="rebuild a crashed service from its WAL + snapshots"
    )
    add_world_args(recover)
    recover.add_argument(
        "--durable-dir", required=True,
        help="the --durable-dir a previous `repro epochs` run journaled into",
    )
    recover.add_argument(
        "--shards", type=int, default=1,
        help="deployment shape of the crashed run (must match)",
    )
    recover.set_defaults(func=_cmd_recover)

    from repro.lint.cli import add_lint_arguments

    lint = sub.add_parser(
        "lint", help="check privacy/determinism/layering invariants statically"
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    from repro.analysis.cli import add_analyze_arguments

    analyze = sub.add_parser(
        "analyze",
        help="whole-program analysis: interprocedural taint, pool/merge/"
        "determinism checkers",
    )
    add_analyze_arguments(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
