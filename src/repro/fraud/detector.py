"""The fake-activity detector: does this history look like a real user?

Section 4.3: "an RSP's implicit inference of a user's recommendation of an
entity should verify whether the user's engagement with that entity
reflects that of a typical user" — calls should be "appropriately spaced
apart and of reasonable duration"; an employee's daily presence should not
read as endorsement.  The detector scores each anonymous history against
the :class:`~repro.fraud.profiles.TypicalProfile` for its entity kind and
flags the specific violations, so verdicts are explainable.

Histories too short to judge are left alone, exactly as the paper argues:
"though it is hard to evaluate whether the interactions ... are fake if the
number of interactions is small, such an interaction history will have
limited influence on others."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.fraud.profiles import TypicalProfile
from repro.privacy.history_store import HistoryStore, InteractionHistory
from repro.util.clock import DAY


class FraudFlag(enum.Enum):
    """Specific ways a history deviates from typical behaviour."""

    #: Interactions packed closer than any honest user's (back-to-back calls).
    BURST = "burst"
    #: More interactions per unit time than the honest 99th percentile.
    RATE = "rate"
    #: Interactions far shorter than honest ones (hang-up-after-dial calls).
    SHORT_DURATION = "short_duration"
    #: Metronomic or daily-presence regularity (employees, scripted bots).
    REGULARITY = "regularity"
    #: More total interactions than any plausible customer accumulates.
    VOLUME = "volume"


@dataclass(frozen=True)
class HistoryVerdict:
    """The detector's judgement of one history."""

    history_id: str
    entity_id: str
    n_interactions: int
    flags: tuple[FraudFlag, ...]
    judged: bool  # False when the history was too short to evaluate

    @property
    def suspicious(self) -> bool:
        return self.judged and bool(self.flags)


@dataclass(frozen=True)
class DetectorConfig:
    """Detection thresholds."""

    #: Histories with fewer interactions are not judged (limited influence).
    min_interactions_to_judge: int = 3
    #: Gap regularity: flag if the coefficient of variation of gaps falls
    #: below this with at least ``regularity_min_interactions`` events.
    regularity_cv_threshold: float = 0.15
    regularity_min_interactions: int = 8
    #: Daily-presence detection: median gap within this fraction of 24 h.
    daily_gap_tolerance: float = 0.15

    def __post_init__(self) -> None:
        if self.min_interactions_to_judge < 1:
            raise ValueError("min_interactions_to_judge must be >= 1")


class FraudDetector:
    """Scores histories against per-kind typical profiles."""

    def __init__(
        self,
        profiles: dict[str, TypicalProfile],
        entity_kinds: dict[str, str],
        config: DetectorConfig | None = None,
    ) -> None:
        self.profiles = profiles
        self.entity_kinds = entity_kinds
        self.config = config or DetectorConfig()

    def judge(self, history: InteractionHistory) -> HistoryVerdict:
        """Judge one history; returns an explainable verdict."""
        config = self.config
        if history.n_interactions < config.min_interactions_to_judge:
            return HistoryVerdict(
                history_id=history.history_id,
                entity_id=history.entity_id,
                n_interactions=history.n_interactions,
                flags=(),
                judged=False,
            )
        kind = self.entity_kinds.get(history.entity_id)
        profile = self.profiles.get(kind) if kind is not None else None
        if profile is None:
            return HistoryVerdict(
                history_id=history.history_id,
                entity_id=history.entity_id,
                n_interactions=history.n_interactions,
                flags=(),
                judged=False,
            )

        flags: list[FraudFlag] = []
        gaps = history.gaps()
        durations = history.durations()

        positive_gaps = [g for g in gaps if g > 0]
        min_gap = min(positive_gaps) if positive_gaps else 0.0
        if gaps and (not positive_gaps or profile.gaps.below_floor(min_gap)):
            flags.append(FraudFlag.BURST)

        times = sorted(history.event_times())
        span = max(times[-1] - times[0], DAY)
        rate = history.n_interactions / span
        typical_rate_ceiling = profile.counts.p99 / max(profile.gaps.median, DAY)
        if rate > typical_rate_ceiling and history.n_interactions > profile.counts.median:
            flags.append(FraudFlag.RATE)

        if durations and float(np.median(durations)) < profile.durations.p01:
            flags.append(FraudFlag.SHORT_DURATION)

        if len(gaps) + 1 >= config.regularity_min_interactions and positive_gaps:
            gap_array = np.asarray(positive_gaps)
            mean_gap = float(gap_array.mean())
            cv = float(gap_array.std() / mean_gap) if mean_gap > 0 else 0.0
            metronomic = cv < config.regularity_cv_threshold
            daily = abs(mean_gap - DAY) < config.daily_gap_tolerance * DAY and cv < 0.5
            if metronomic or daily:
                flags.append(FraudFlag.REGULARITY)

        if profile.counts.above_ceiling(float(history.n_interactions)):
            flags.append(FraudFlag.VOLUME)

        return HistoryVerdict(
            history_id=history.history_id,
            entity_id=history.entity_id,
            n_interactions=history.n_interactions,
            flags=tuple(flags),
            judged=True,
        )

    def filter_store(self, store: HistoryStore) -> tuple[list[InteractionHistory], list[HistoryVerdict]]:
        """Split a store into accepted histories and the suspicious verdicts.

        Accepted histories (including unjudgeable short ones) feed
        aggregation; suspicious ones are discarded, per Section 4.3.
        """
        accepted: list[InteractionHistory] = []
        rejected: list[HistoryVerdict] = []
        for history in store.all_histories():
            verdict = self.judge(history)
            if verdict.suspicious:
                rejected.append(verdict)
            else:
                accepted.append(history)
        return accepted, rejected
