"""Typical-user activity profiles, merged from anonymous histories.

Section 4.3's key observation: "the vast majority of users are not
malicious", so the anonymously stored per-(user, entity) histories can be
merged into a profile of how a *typical* user interacts with entities of a
given kind — how far apart the interactions fall, how long they last, how
many accumulate.  Nothing in this computation names a user; it only pools
feature values across histories, which is exactly the access the store's
update-only design permits.

Profiles are represented as percentile bands rather than parametric fits:
interaction gaps are multi-modal (a dentist history mixes 6-month cleanings
with next-day follow-ups) and the detector only needs calibrated extremes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np

from repro.privacy.history_store import HistoryStore, InteractionHistory


@dataclass(frozen=True)
class FeatureBand:
    """Percentile summary of one feature across the honest population."""

    p01: float
    p05: float
    median: float
    p95: float
    p99: float
    n_samples: int

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "FeatureBand":
        # Sharded maintenance hands over float64 arrays; reuse them rather
        # than round-tripping through a 10^5-element Python list.  The
        # percentiles are identical either way (same multiset of floats).
        if isinstance(values, np.ndarray):
            array = np.asarray(values, dtype=np.float64)
        else:
            array = np.asarray(list(values), dtype=np.float64)
        if array.size == 0:
            raise ValueError("cannot build a band from no samples")
        return cls(
            p01=float(np.percentile(array, 1)),
            p05=float(np.percentile(array, 5)),
            median=float(np.percentile(array, 50)),
            p95=float(np.percentile(array, 95)),
            p99=float(np.percentile(array, 99)),
            n_samples=int(array.size),
        )

    def below_floor(self, value: float) -> bool:
        """Is ``value`` beneath the 1st percentile of honest behaviour?"""
        return value < self.p01

    def above_ceiling(self, value: float) -> bool:
        """Is ``value`` beyond the 99th percentile of honest behaviour?"""
        return value > self.p99


@dataclass(frozen=True)
class TypicalProfile:
    """How typical users interact with entities of one kind.

    ``gaps`` — seconds between consecutive interactions in one history;
    ``durations`` — per-interaction durations;
    ``counts`` — interactions accumulated per history over the window.
    """

    kind_label: str
    gaps: FeatureBand
    durations: FeatureBand
    counts: FeatureBand
    n_histories: int


def _kind_of(entity_id: str, entity_kinds: dict[str, str]) -> str | None:
    return entity_kinds.get(entity_id)


@dataclass
class ProfilePools:
    """Per-kind feature-value pools, not yet reduced to percentile bands.

    This is the mergeable intermediate of profile building: pools from
    disjoint subsets of the store concatenate into the pools of the whole
    store, and every percentile taken from a pool depends only on the
    *multiset* of values (``np.percentile`` sorts its input), never on the
    order they were collected in.  That pair of facts is what lets the
    sharded maintenance path (:mod:`repro.scale`) profile each shard
    independently and still land on bit-identical global profiles.

    Values may be held as Python lists or as NumPy float64 arrays; both
    feed :class:`FeatureBand.from_values` identically.
    """

    gaps: dict[str, Sequence[float]] = field(default_factory=dict)
    durations: dict[str, Sequence[float]] = field(default_factory=dict)
    counts: dict[str, Sequence[float]] = field(default_factory=dict)
    n_histories: dict[str, int] = field(default_factory=dict)


def collect_profile_pools(
    histories: Iterable[InteractionHistory],
    entity_kinds: dict[str, str],
    min_history_length: int = 2,
) -> ProfilePools:
    """Pool the per-kind feature values of ``histories``.

    Histories shorter than ``min_history_length`` contribute counts but no
    gap statistics (they have none).
    """
    pools = ProfilePools()
    gaps: dict[str, list[float]] = pools.gaps
    durations: dict[str, list[float]] = pools.durations
    counts: dict[str, list[float]] = pools.counts
    for history in histories:
        kind = _kind_of(history.entity_id, entity_kinds)
        if kind is None:
            continue
        pools.n_histories[kind] = pools.n_histories.get(kind, 0) + 1
        counts.setdefault(kind, []).append(float(history.n_interactions))
        durations.setdefault(kind, []).extend(history.durations())
        if history.n_interactions >= min_history_length:
            gaps.setdefault(kind, []).extend(history.gaps())
    return pools


def profiles_from_pools(pools: ProfilePools) -> dict[str, TypicalProfile]:
    """Reduce pooled feature values to per-kind percentile profiles.

    A kind with no gap or duration samples yields no profile (its
    histories stay unjudged), mirroring the long-standing behaviour of
    :func:`build_profiles`.
    """
    profiles: dict[str, TypicalProfile] = {}
    for kind, n_histories in pools.n_histories.items():
        kind_gaps = pools.gaps.get(kind)
        kind_durations = pools.durations.get(kind)
        if kind_gaps is None or len(kind_gaps) == 0:
            continue
        if kind_durations is None or len(kind_durations) == 0:
            continue
        profiles[kind] = TypicalProfile(
            kind_label=kind,
            gaps=FeatureBand.from_values(kind_gaps),
            durations=FeatureBand.from_values(kind_durations),
            counts=FeatureBand.from_values(pools.counts[kind]),
            n_histories=n_histories,
        )
    return profiles


def build_profiles(
    store: HistoryStore,
    entity_kinds: dict[str, str],
    min_history_length: int = 2,
) -> dict[str, TypicalProfile]:
    """Merge every stored history into per-kind typical profiles.

    ``entity_kinds`` maps entity_id -> kind label (public catalog data).
    Composed from :func:`collect_profile_pools` and
    :func:`profiles_from_pools` so partitioned deployments can run the
    collection phase per shard and the reduction once, globally.
    """
    pools = collect_profile_pools(
        store.all_histories(), entity_kinds, min_history_length
    )
    return profiles_from_pools(pools)


def profile_from_histories(
    kind_label: str, histories: list[InteractionHistory]
) -> TypicalProfile:
    """Build one profile directly from a list of histories (test helper and
    building block for per-entity profiles)."""
    if not histories:
        raise ValueError("need at least one history")
    all_gaps: list[float] = []
    all_durations: list[float] = []
    all_counts: list[float] = []
    for history in histories:
        all_counts.append(float(history.n_interactions))
        all_durations.extend(history.durations())
        all_gaps.extend(history.gaps())
    if not all_gaps:
        raise ValueError("histories contain no repeat interactions; no gap statistics")
    return TypicalProfile(
        kind_label=kind_label,
        gaps=FeatureBand.from_values(all_gaps),
        durations=FeatureBand.from_values(all_durations),
        counts=FeatureBand.from_values(all_counts),
        n_histories=len(histories),
    )
