"""Fake-activity detection (Section 4.3) and the attacker zoo.

Typical-user profiles merged from anonymous histories, a deviation-based
detector with explainable verdicts, and the attack strategies the paper
names — so the economics of fraud against implicit inference can be
measured rather than asserted.
"""

from repro.fraud.attackers import (
    AttackCost,
    AttackResult,
    CallSpamAttacker,
    EmployeeAttacker,
    MimicAttacker,
    SybilAttacker,
)
from repro.fraud.attestation import (
    AttestationQuote,
    AttestationVerifier,
    PlatformVendor,
    SensorInputVerifier,
    SignedLocationSample,
    TrustedSensorStack,
    client_build_hash,
    forge_quote_without_key,
    spoof_location_samples,
)
from repro.fraud.detector import (
    DetectorConfig,
    FraudDetector,
    FraudFlag,
    HistoryVerdict,
)
from repro.fraud.profiles import (
    FeatureBand,
    TypicalProfile,
    build_profiles,
    profile_from_histories,
)

__all__ = [
    "AttackCost",
    "AttestationQuote",
    "AttestationVerifier",
    "PlatformVendor",
    "SensorInputVerifier",
    "SignedLocationSample",
    "TrustedSensorStack",
    "client_build_hash",
    "forge_quote_without_key",
    "spoof_location_samples",
    "AttackResult",
    "CallSpamAttacker",
    "DetectorConfig",
    "EmployeeAttacker",
    "FeatureBand",
    "FraudDetector",
    "FraudFlag",
    "HistoryVerdict",
    "MimicAttacker",
    "SybilAttacker",
    "TypicalProfile",
    "build_profiles",
    "profile_from_histories",
]
