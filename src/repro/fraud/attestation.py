"""Remote attestation and trustworthy sensing (Section 4.3).

"To combat such attacks, RSPs can employ remote attestation [31, 26] to
confirm that the client has not been modified and use techniques for
trustworthy sensing [22, 21, 29, 23, 33] to ensure that the sensor inputs
received by the client are legitimate."

Simulated with the same trust structure the cited systems provide:

* **Attestation** — every device carries a build measurement (the hash of
  the client code it runs) signed against a per-device key provisioned by
  the platform.  The RSP keeps a registry of genuine build hashes; a
  modified client produces a quote with the wrong measurement and is
  refused token issuance — cutting it off from uploading anything at all.
* **Trustworthy sensing** — sensor readings carry an HMAC from a key that
  (in the cited designs) lives in trusted hardware and never reaches the
  app.  A client can therefore prove its GPS fixes came from the sensor
  stack; fabricated readings carry no valid tag and are rejected before
  they influence inference.

Both are *simulations of trust roots*, not of cryptographic novelty: keys
are provisioned by an in-simulation platform vendor, and the adversaries
(modified client, sensor spoofing) are modelled as actors without access
to those keys — the precise assumption the cited hardware provides.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.sensing.traces import LocationSample


def _hmac(key: bytes, payload: bytes) -> bytes:
    return hmac.new(key, payload, hashlib.sha256).digest()


# ------------------------------------------------------------ attestation


@dataclass(frozen=True)
class AttestationQuote:
    """A device's signed statement of the client build it is running."""

    device_id: str
    build_hash: str
    nonce: bytes
    tag: bytes  # HMAC(device_key, device_id || build_hash || nonce)


class PlatformVendor:
    """The trusted-hardware root: provisions per-device attestation keys.

    The RSP talks to the vendor only to validate quotes; devices hold their
    key inside the (simulated) secure element — the adversary models below
    never receive it.
    """

    def __init__(self, vendor_secret: bytes = b"platform-vendor-root") -> None:
        self._vendor_secret = vendor_secret

    def device_key(self, device_id: str) -> bytes:
        return _hmac(self._vendor_secret, f"device:{device_id}".encode())

    def make_quote(self, device_id: str, build_hash: str, nonce: bytes) -> AttestationQuote:
        """What the secure element signs for a device running ``build_hash``.

        The element measures the *actually running* client; a modified
        client cannot ask it to sign the genuine hash.
        """
        payload = f"{device_id}|{build_hash}|".encode() + nonce
        return AttestationQuote(
            device_id=device_id,
            build_hash=build_hash,
            nonce=nonce,
            tag=_hmac(self.device_key(device_id), payload),
        )


class AttestationVerifier:
    """The RSP's attestation endpoint."""

    def __init__(self, vendor: PlatformVendor, genuine_builds: set[str]) -> None:
        if not genuine_builds:
            raise ValueError("need at least one genuine build hash")
        self._vendor = vendor
        self._genuine = set(genuine_builds)
        self._used_nonces: set[bytes] = set()

    def register_build(self, build_hash: str) -> None:
        """Add a new genuine client release."""
        self._genuine.add(build_hash)

    def verify(self, quote: AttestationQuote) -> bool:
        """Accept a quote once: correct key, genuine build, fresh nonce."""
        if quote.nonce in self._used_nonces:
            return False
        payload = f"{quote.device_id}|{quote.build_hash}|".encode() + quote.nonce
        expected = _hmac(self._vendor.device_key(quote.device_id), payload)
        if not hmac.compare_digest(expected, quote.tag):
            return False
        if quote.build_hash not in self._genuine:
            return False
        self._used_nonces.add(quote.nonce)
        return True


def client_build_hash(client_code: str) -> str:
    """Measure a client build (stand-in for a real binary measurement)."""
    return hashlib.sha256(client_code.encode()).hexdigest()


# ------------------------------------------------------ trustworthy sensing


@dataclass(frozen=True)
class SignedLocationSample:
    """A GPS fix with its trusted-sensor authenticity tag."""

    sample: LocationSample
    device_id: str
    tag: bytes


class TrustedSensorStack:
    """The (simulated) sensor hub that tags every reading it produces."""

    def __init__(self, vendor: PlatformVendor, device_id: str) -> None:
        self._key = _hmac(vendor.device_key(device_id), b"sensor-subkey")
        self.device_id = device_id

    def _payload(self, sample: LocationSample) -> bytes:
        return (
            f"{self.device_id}|{sample.time:.3f}|{sample.point.x:.6f}|"
            f"{sample.point.y:.6f}|{sample.accuracy_km:.4f}"
        ).encode()

    def emit(self, sample: LocationSample) -> SignedLocationSample:
        """Produce an authenticated reading (only the real stack can)."""
        return SignedLocationSample(
            sample=sample, device_id=self.device_id, tag=_hmac(self._key, self._payload(sample))
        )

    def verify(self, signed: SignedLocationSample) -> bool:
        """Check a reading's tag (run by the verifying party with the key
        derivable from the vendor root)."""
        if signed.device_id != self.device_id:
            return False
        return hmac.compare_digest(self._key, self._key) and hmac.compare_digest(
            _hmac(self._key, self._payload(signed.sample)), signed.tag
        )


class SensorInputVerifier:
    """RSP- or client-side filter: drop readings without valid sensor tags."""

    def __init__(self, vendor: PlatformVendor) -> None:
        self._vendor = vendor
        self.rejected = 0

    def filter_authentic(
        self, signed_samples: list[SignedLocationSample]
    ) -> list[LocationSample]:
        """Keep only readings the device's real sensor stack produced."""
        authentic: list[LocationSample] = []
        stacks: dict[str, TrustedSensorStack] = {}
        for signed in signed_samples:
            stack = stacks.get(signed.device_id)
            if stack is None:
                stack = TrustedSensorStack(self._vendor, signed.device_id)
                stacks[signed.device_id] = stack
            if stack.verify(signed):
                authentic.append(signed.sample)
            else:
                self.rejected += 1
        return authentic


# ------------------------------------------------------------- adversaries


def forge_quote_without_key(device_id: str, build_hash: str, nonce: bytes) -> AttestationQuote:
    """A modified client guessing a quote tag (it has no device key)."""
    return AttestationQuote(
        device_id=device_id,
        build_hash=build_hash,
        nonce=nonce,
        tag=hashlib.sha256(b"hopeful-forgery" + nonce).digest(),
    )


def spoof_location_samples(
    device_id: str, samples: list[LocationSample]
) -> list[SignedLocationSample]:
    """Fabricated GPS readings from a fake-location app (no sensor key)."""
    return [
        SignedLocationSample(
            sample=sample,
            device_id=device_id,
            tag=hashlib.sha256(f"spoof|{sample.time}".encode()).digest(),
        )
        for sample in samples
    ]
