"""The attacker zoo: fake-activity strategies from Section 4.3.

Each attacker fabricates the interaction history it wants the RSP to
believe, together with the *cost* of staging it — because the paper's
defense is economic: "raise the bar ... fraudulent users will have to incur
significant cost and effort to mimic the activities of a typical user."

* :class:`CallSpamAttacker` — "make several back-to-back phone calls to the
  electrician, hanging up immediately after calling" (paper's own example).
  Cheap (minutes of effort) and loud; the BURST/SHORT_DURATION checks catch it.
* :class:`EmployeeAttacker` — "any employee at a restaurant can use his
  presence at the restaurant daily as evidence" (paper's second example).
  Free for an employee; the REGULARITY/VOLUME checks catch it.
* :class:`SybilAttacker` — many registered devices each contribute one or
  two plausible interactions.  Individually unjudgeable, but each tiny
  history has limited influence and every device needs token issuance.
* :class:`MimicAttacker` — samples spacing and duration from the typical
  profile itself: statistically undetectable by construction, and therefore
  the cost bound — faking one dentist endorsement means showing up for
  realistic appointment durations spread over months to years.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fraud.profiles import TypicalProfile
from repro.privacy.history_store import InteractionUpload
from repro.privacy.identifiers import DeviceIdentity
from repro.util.clock import DAY, HOUR, MINUTE
from repro.util.rng import make_rng


@dataclass(frozen=True)
class AttackCost:
    """What staging the fake activity costs the attacker."""

    #: Calendar time the campaign spans, seconds.
    wall_clock: float
    #: Time physically spent interacting (on the phone, on premises), seconds.
    active_effort: float
    #: Number of fabricated interactions.
    n_interactions: int
    #: Devices/accounts the attacker must control.
    n_devices: int = 1

    @property
    def wall_clock_days(self) -> float:
        return self.wall_clock / DAY


@dataclass(frozen=True)
class AttackResult:
    """The uploads an attack produces plus its cost."""

    name: str
    uploads: list[InteractionUpload]
    cost: AttackCost


def _upload(
    identity: DeviceIdentity,
    entity_id: str,
    interaction_type: str,
    t: float,
    duration: float,
    travel_km: float,
) -> InteractionUpload:
    return InteractionUpload(
        history_id=identity.history_id(entity_id),
        entity_id=entity_id,
        interaction_type=interaction_type,
        event_time=t,
        duration=duration,
        travel_km=travel_km,
    )


@dataclass(frozen=True)
class CallSpamAttacker:
    """Back-to-back short calls over a couple of days."""

    n_calls: int = 25
    campaign_days: float = 2.0
    call_duration: float = 8.0  # hang up almost immediately

    def generate(
        self, identity: DeviceIdentity, entity_id: str, start_time: float, seed: int = 0
    ) -> AttackResult:
        rng = make_rng(seed, "call-spam")
        uploads = []
        t = start_time
        for _ in range(self.n_calls):
            uploads.append(
                _upload(identity, entity_id, "call", t, self.call_duration, 0.0)
            )
            t += float(rng.uniform(2 * MINUTE, self.campaign_days * DAY / self.n_calls))
        return AttackResult(
            name="call-spam",
            uploads=uploads,
            cost=AttackCost(
                wall_clock=t - start_time,
                active_effort=self.n_calls * self.call_duration,
                n_interactions=self.n_calls,
            ),
        )


@dataclass(frozen=True)
class EmployeeAttacker:
    """Daily long presence at the entity (e.g. a waiter at the restaurant)."""

    n_days: int = 45
    shift_hours: float = 8.0

    def generate(
        self, identity: DeviceIdentity, entity_id: str, start_time: float, seed: int = 0
    ) -> AttackResult:
        rng = make_rng(seed, "employee")
        uploads = []
        for day in range(self.n_days):
            t = start_time + day * DAY + float(rng.uniform(-20 * MINUTE, 20 * MINUTE))
            uploads.append(
                _upload(identity, entity_id, "visit", t, self.shift_hours * HOUR, 0.2)
            )
        return AttackResult(
            name="employee",
            uploads=uploads,
            cost=AttackCost(
                wall_clock=self.n_days * DAY,
                # Presence is free for a real employee, but the *history*
                # still exists only because they are there daily.
                active_effort=0.0,
                n_interactions=self.n_days,
            ),
        )


@dataclass(frozen=True)
class SybilAttacker:
    """Many devices, each a tiny plausible history."""

    n_devices: int = 20
    interactions_per_device: int = 2
    gap_days: float = 30.0
    visit_duration: float = 1.2 * HOUR

    def generate_all(
        self, entity_id: str, start_time: float, seed: int = 0
    ) -> list[AttackResult]:
        results = []
        for index in range(self.n_devices):
            identity = DeviceIdentity.create(f"sybil-{index:03d}", seed=seed * 1000 + index)
            rng = make_rng(seed, f"sybil/{index}")
            uploads = []
            t = start_time + float(rng.uniform(0, 10 * DAY))
            for _ in range(self.interactions_per_device):
                uploads.append(
                    _upload(identity, entity_id, "visit", t, self.visit_duration, 3.0)
                )
                t += self.gap_days * DAY * float(rng.uniform(0.6, 1.4))
            results.append(
                AttackResult(
                    name="sybil",
                    uploads=uploads,
                    cost=AttackCost(
                        wall_clock=t - start_time,
                        active_effort=0.0,  # fabricated remotely per device
                        n_interactions=self.interactions_per_device,
                        n_devices=1,
                    ),
                )
            )
        return results


@dataclass(frozen=True)
class MimicAttacker:
    """Statistically faithful forgery: sample the typical profile itself.

    Undetectable by a profile-based detector — which is the point: the cost
    of undetectable fraud *is* the cost of behaving like a real customer.
    A competent mimic respects every band of the profile, including the
    total interaction count (``n_interactions=None`` stays at the honest
    median so the VOLUME check cannot fire).
    """

    n_interactions: int | None = None

    def generate(
        self,
        identity: DeviceIdentity,
        entity_id: str,
        start_time: float,
        profile: TypicalProfile,
        seed: int = 0,
    ) -> AttackResult:
        rng = make_rng(seed, "mimic")
        count = self.n_interactions
        if count is None:
            count = max(2, int(round(profile.counts.median)))
        count = min(count, max(2, int(profile.counts.p95)))
        uploads = []
        t = start_time
        active = 0.0
        for index in range(count):
            duration = float(
                rng.uniform(profile.durations.p05, profile.durations.p95)
            )
            uploads.append(_upload(identity, entity_id, "visit", t, duration, 4.0))
            active += duration
            if index + 1 < count:
                t += float(rng.uniform(profile.gaps.p05, profile.gaps.p95))
        return AttackResult(
            name="mimic",
            uploads=uploads,
            cost=AttackCost(
                wall_clock=t - start_time,
                active_effort=active,
                n_interactions=count,
            ),
        )
