"""The wire protocol between the RSP's client and service.

Two record kinds travel over the anonymity network, each wrapped in an
:class:`Envelope` carrying one rate-limiting upload token:

* :class:`~repro.privacy.history_store.InteractionUpload` — one inferred
  user-entity interaction (feeds histories, fraud profiles, and the
  comparative visualizations);
* :class:`~repro.core.aggregation.OpinionUpload` — one inferred rating
  (feeds the inferred-opinion summaries).

Explicit reviews are *not* anonymous — users post them under their account
exactly as on today's services — so they go through
:meth:`repro.service.server.RSPServer.post_review` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregation import OpinionUpload
from repro.privacy.history_store import InteractionUpload
from repro.privacy.tokens import UploadToken

AnonymousRecord = InteractionUpload | OpinionUpload


@dataclass(frozen=True)
class Envelope:
    """One anonymous upload: a record plus its spend-once token.

    ``nonce`` is a per-*record* random identifier (not per-attempt): every
    retransmission of the same record carries the same nonce inside a fresh
    envelope (fresh token, fresh channel tag, re-randomized delay), and the
    server accepts each nonce at most once.  That makes bounded
    retransmission over the ack-free anonymous channel safe — duplicates
    are suppressed idempotently instead of double-counting opinions.  The
    nonce is drawn from the device's seeded RNG and carries no identity or
    payload structure; dedup keyed on a payload or ``hash(Ru, e)`` digest
    would either drop legitimate identical records or hand the server a
    linkable identifier (see ``docs/RELIABILITY.md``).  ``None`` preserves
    the legacy no-dedup wire format.
    """

    record: AnonymousRecord
    token: UploadToken | None
    nonce: bytes | None = None
