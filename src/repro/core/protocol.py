"""The wire protocol between the RSP's client and service.

Two record kinds travel over the anonymity network, each wrapped in an
:class:`Envelope` carrying one rate-limiting upload token:

* :class:`~repro.privacy.history_store.InteractionUpload` — one inferred
  user-entity interaction (feeds histories, fraud profiles, and the
  comparative visualizations);
* :class:`~repro.core.aggregation.OpinionUpload` — one inferred rating
  (feeds the inferred-opinion summaries).

Explicit reviews are *not* anonymous — users post them under their account
exactly as on today's services — so they go through
:meth:`repro.service.server.RSPServer.post_review` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregation import OpinionUpload
from repro.privacy.history_store import InteractionUpload
from repro.privacy.tokens import UploadToken

AnonymousRecord = InteractionUpload | OpinionUpload


@dataclass(frozen=True)
class Envelope:
    """One anonymous upload: a record plus its spend-once token."""

    record: AnonymousRecord
    token: UploadToken | None
