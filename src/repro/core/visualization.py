"""Comparative visualizations — Section 4.1's second approach, Figure 3.

Instead of inferring individual opinions, "the aggregate statistics about
users' interactions with an entity can often be quite revealing".  From the
anonymous histories alone (each history = one anonymous user) this module
computes the two panels the paper sketches:

* :func:`visits_per_user_histogram` — Figure 3(a): how many users visited
  once, twice, three-to-five times, more — the repeat-patronage shape that
  separates dentist A from B and C;
* :func:`distance_vs_visits` — Figure 3(b): per anonymous user, (number of
  visits, average distance travelled), whose correlation separates earned
  loyalty (B) from captive convenience (C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.privacy.history_store import InteractionHistory
from repro.util.ascii_plot import render_histogram
from repro.util.stats import pearson


#: Figure 3(a) bucket edges for visits-per-user.
VISIT_BUCKETS: tuple[tuple[int, float], ...] = (
    (1, 1),
    (2, 2),
    (3, 5),
    (6, 10),
    (11, float("inf")),
)


def _bucket_label(lo: int, hi: float) -> str:
    if hi == float("inf"):
        return f"{lo}+"
    if lo == hi:
        return str(lo)
    return f"{lo}-{int(hi)}"


@dataclass(frozen=True)
class VisitsHistogram:
    """Figure 3(a) for one entity."""

    entity_id: str
    labels: tuple[str, ...]
    counts: tuple[int, ...]
    n_users: int

    @property
    def repeat_fraction(self) -> float:
        """Fraction of users with more than one visit."""
        if self.n_users == 0:
            return 0.0
        return 1.0 - self.counts[0] / self.n_users

    def render(self) -> str:
        return render_histogram(
            list(self.labels),
            list(self.counts),
            title=f"Visits per user — {self.entity_id}",
        )


def visits_per_user_histogram(
    entity_id: str, histories: list[InteractionHistory]
) -> VisitsHistogram:
    """Histogram of per-anonymous-user visit counts (Figure 3(a))."""
    counts = [history.n_interactions for history in histories]
    bucketed = []
    labels = []
    for lo, hi in VISIT_BUCKETS:
        labels.append(_bucket_label(lo, hi))
        bucketed.append(sum(1 for c in counts if lo <= c <= hi))
    return VisitsHistogram(
        entity_id=entity_id,
        labels=tuple(labels),
        counts=tuple(bucketed),
        n_users=len(counts),
    )


@dataclass(frozen=True)
class DistanceVisitsSeries:
    """Figure 3(b) for one entity."""

    entity_id: str
    visit_counts: tuple[int, ...]
    avg_distances_km: tuple[float, ...]
    #: Pearson correlation over repeat users; the comparative statistic.
    correlation: float
    n_users: int

    def render(self) -> str:
        lines = [f"Avg distance vs visits — {self.entity_id} (r={self.correlation:+.2f})"]
        order = np.argsort(self.visit_counts)
        for index in order:
            v = self.visit_counts[index]
            d = self.avg_distances_km[index]
            lines.append(f"  {v:3d} visits | {'=' * min(60, int(d * 8))} {d:.1f} km")
        return "\n".join(lines)


def distance_vs_visits(
    entity_id: str,
    histories: list[InteractionHistory],
    min_visits: int = 2,
) -> DistanceVisitsSeries:
    """Per-user (visits, avg distance travelled) series (Figure 3(b)).

    Only repeat users enter the correlation: the RSP infers recommendations
    from *repeated* interaction (Section 3.1), and one-time visitors carry
    no repeat signal.
    """
    counts: list[int] = []
    distances: list[float] = []
    for history in histories:
        if history.n_interactions < min_visits:
            continue
        travels = [t for t in history.travel_kms() if t > 0]
        counts.append(history.n_interactions)
        distances.append(float(np.mean(travels)) if travels else 0.0)
    correlation = pearson(counts, distances) if len(counts) >= 2 else 0.0
    return DistanceVisitsSeries(
        entity_id=entity_id,
        visit_counts=tuple(counts),
        avg_distances_km=tuple(distances),
        correlation=correlation,
        n_users=len(counts),
    )


@dataclass(frozen=True)
class ComparativeVisualization:
    """The side-by-side comparison the search interface attaches to results."""

    histograms: dict[str, VisitsHistogram]
    distance_series: dict[str, DistanceVisitsSeries]

    def render(self) -> str:
        parts = [h.render() for h in self.histograms.values()]
        parts += [s.render() for s in self.distance_series.values()]
        return "\n\n".join(parts)


def compare_entities(
    histories_by_entity: dict[str, list[InteractionHistory]],
) -> ComparativeVisualization:
    """Build both Figure 3 panels for a set of competing entities."""
    return ComparativeVisualization(
        histograms={
            entity_id: visits_per_user_histogram(entity_id, histories)
            for entity_id, histories in histories_by_entity.items()
        },
        distance_series={
            entity_id: distance_vs_visits(entity_id, histories)
            for entity_id, histories in histories_by_entity.items()
        },
    )
