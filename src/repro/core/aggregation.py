"""Server-side aggregation: opinion summaries with group-visit deflation.

The RSP never sees individual users, only anonymous per-(user, entity)
histories and anonymous inferred-opinion uploads.  This module turns those
into the per-entity summaries the search interface shows:

* a histogram of inferred ratings next to the explicit-review histogram
  (the paper's "summary of inferred opinions");
* aggregate activity statistics (how many anonymous users interact, how
  often, from how far) feeding the comparative visualizations;
* **group deflation** (Section 4.1): "when a set of users interact with the
  same entity as a group ... an RSP must explicitly account for such
  instances to ensure that the collective recommendation power of groups
  does not artificially inflate the aggregate activity."  Interactions from
  different histories that share an arrival signature (same quantized event
  time, same duration) are collapsed into a single effective interaction;
* **influence weighting** (Section 4.3): "though it is hard to evaluate
  whether the interactions between a user and an entity are fake if the
  number of interactions is small, such an interaction history will have
  limited influence on others."  An inferred opinion's weight grows with
  its history's interaction count up to a maturity threshold, so a sybil
  swarm of two-visit histories moves an aggregate far less than the same
  number of established customers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.privacy.history_store import InteractionHistory


@dataclass(frozen=True)
class OpinionUpload:
    """An anonymously uploaded inferred opinion for one entity.

    ``seq`` is a per-history upload version: the client bumps it every
    time it re-uploads a changed inference for the same ``history_id``.
    The server keeps the highest ``seq`` per slot (ties keep the existing
    record), so a delayed or reordered stale re-upload can never clobber
    a newer inference — arrival order carries no meaning on an anonymous,
    at-least-once channel.  It counts uploads, not wall-clock time, so it
    leaks nothing beyond what the upload itself already reveals.
    """

    history_id: str
    entity_id: str
    rating: float
    seq: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rating <= 5.0:
            raise ValueError("rating must lie in [0, 5]")
        if self.seq < 0:
            raise ValueError("seq must be >= 0")


#: Star-bucket edges for rating histograms (5 buckets: [0,1), ..., [4,5]).
RATING_EDGES = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0001)


def rating_histogram(ratings: list[float]) -> list[int]:
    """Count ratings into the five star buckets."""
    counts, _ = np.histogram(np.asarray(ratings, dtype=np.float64), bins=RATING_EDGES)
    return [int(c) for c in counts]


@dataclass(frozen=True)
class EntityOpinionSummary:
    """Everything the search interface shows for one entity."""

    entity_id: str
    n_explicit_reviews: int
    explicit_mean: float | None
    explicit_histogram: list[int]
    n_inferred_opinions: int
    inferred_mean: float | None
    inferred_histogram: list[int]
    #: Anonymous users with at least one interaction.
    n_interacting_users: int
    #: Effective interactions after group deflation.
    effective_interactions: float
    #: Raw interactions before deflation.
    raw_interactions: int
    #: Sum of inferred-opinion influence weights (<= n_inferred_opinions);
    #: thin histories contribute fractionally (Section 4.3).
    inferred_weight: float = 0.0

    @property
    def total_opinions(self) -> int:
        """The coverage statistic of the A2 benchmark."""
        return self.n_explicit_reviews + self.n_inferred_opinions

    @property
    def combined_mean(self) -> float | None:
        values: list[float] = []
        weights: list[float] = []
        if self.explicit_mean is not None and self.n_explicit_reviews:
            values.append(self.explicit_mean)
            weights.append(self.n_explicit_reviews)
        if self.inferred_mean is not None and self.inferred_weight > 0:
            values.append(self.inferred_mean)
            weights.append(self.inferred_weight)
        if not values:
            return None
        return float(np.average(values, weights=weights))


def deflate_groups(
    histories: list[InteractionHistory],
    time_quantum: float = 1.0,
) -> tuple[float, int]:
    """Collapse group co-visits into effective interaction counts.

    Two interactions in *different* histories with the same quantized event
    time and identical duration are almost surely the same physical group
    outing observed from several phones.  Each such cluster counts once.

    Returns ``(effective_interactions, raw_interactions)``.
    """
    raw = sum(len(history.records) for history in histories)
    if raw == 0:
        return 0.0, 0
    times = np.empty(raw, dtype=np.float64)
    durations = np.empty(raw, dtype=np.float64)
    cursor = 0
    for history in histories:
        for record in history.records:
            times[cursor] = record.upload.event_time
            durations[cursor] = record.upload.duration
            cursor += 1
    return deflate_groups_arrays(times, durations, time_quantum), raw


def deflate_groups_arrays(
    times: "np.ndarray", durations: "np.ndarray", time_quantum: float = 1.0
) -> float:
    """Count distinct ``(quantized time, rounded duration)`` signatures.

    This is the single definition of a group signature: every caller —
    the monolithic server and the sharded maintenance path alike — must
    quantize through here, so re-partitioning the stores can never change
    which interactions collapse into one group (the merge-determinism
    contract of ``docs/SCALING.md``).
    """
    if times.size == 0:
        return 0.0
    signatures = np.column_stack(
        (np.round(times / time_quantum), np.round(durations, 3))
    )
    return float(np.unique(signatures, axis=0).shape[0])


def influence_weight(n_interactions: int, maturity_interactions: int = 3) -> float:
    """How much one anonymous history's opinion counts (Section 4.3).

    Grows linearly with the history's interaction count and saturates at 1
    once the history reaches ``maturity_interactions`` — a two-visit sybil
    history carries 2/3 of a vote, an established customer exactly one.
    """
    if maturity_interactions < 1:
        raise ValueError("maturity must be >= 1")
    if n_interactions < 0:
        raise ValueError("interaction count must be non-negative")
    return min(1.0, n_interactions / maturity_interactions)


def summarize_entity(
    entity_id: str,
    histories: list[InteractionHistory],
    inferred: list[OpinionUpload],
    explicit_ratings: list[float],
    group_time_quantum: float = 1.0,
    maturity_interactions: int = 3,
) -> EntityOpinionSummary:
    """Build the full opinion summary for one entity.

    ``histories`` must already be fraud-filtered; ``inferred`` are the
    opinion uploads whose ``history_id`` survived filtering.  Each kept
    opinion is weighted by its history's :func:`influence_weight`, so thin
    histories (including sybil micro-histories) move the mean less.
    """
    depth_by_id = {history.history_id: history.n_interactions for history in histories}
    kept: list[tuple[float, float]] = []  # (rating, weight)
    for upload in inferred:
        depth = depth_by_id.get(upload.history_id)
        if depth is None:
            continue
        kept.append((upload.rating, influence_weight(depth, maturity_interactions)))
    raw = sum(len(history.records) for history in histories)
    times = np.empty(raw, dtype=np.float64)
    durations = np.empty(raw, dtype=np.float64)
    cursor = 0
    for history in histories:
        for record in history.records:
            times[cursor] = record.upload.event_time
            durations[cursor] = record.upload.duration
            cursor += 1
    return summarize_entity_from_parts(
        entity_id=entity_id,
        n_histories=len(histories),
        raw_interactions=raw,
        times=times,
        durations=durations,
        kept=kept,
        explicit_ratings=explicit_ratings,
        group_time_quantum=group_time_quantum,
    )


def summarize_entity_from_parts(
    entity_id: str,
    n_histories: int,
    raw_interactions: int,
    times: "np.ndarray",
    durations: "np.ndarray",
    kept: list[tuple[float, float]],
    explicit_ratings: list[float],
    group_time_quantum: float = 1.0,
) -> EntityOpinionSummary:
    """Assemble a summary from pre-extracted columns.

    This is the single definition of the summary math.
    :func:`summarize_entity` extracts the columns from history/opinion
    objects; the sharded maintenance path
    (:func:`repro.scale.kernel.summarize_partition_frame`) extracts the
    identical columns from its cached frames — both funnel through here,
    so the two deployments cannot drift apart.  ``kept`` must be the
    ``(rating, weight)`` pairs in canonical (history-id-sorted) order:
    the weight sum and ``np.average`` are order-dependent float
    reductions, and this ordering is the contract that makes them a pure
    function of store content (docs/SCALING.md).
    """
    kept_ratings = [rating for rating, _ in kept]
    weight_sum = sum(weight for _, weight in kept)
    inferred_mean = (
        float(np.average([r for r, _ in kept], weights=[w for _, w in kept]))
        if kept and weight_sum > 0
        else (float(np.mean(kept_ratings)) if kept_ratings else None)
    )
    effective = (
        deflate_groups_arrays(times, durations, group_time_quantum)
        if raw_interactions
        else 0.0
    )
    return EntityOpinionSummary(
        entity_id=entity_id,
        n_explicit_reviews=len(explicit_ratings),
        explicit_mean=float(np.mean(explicit_ratings)) if explicit_ratings else None,
        explicit_histogram=rating_histogram(explicit_ratings),
        n_inferred_opinions=len(kept_ratings),
        inferred_mean=inferred_mean,
        inferred_histogram=rating_histogram(kept_ratings),
        n_interacting_users=n_histories,
        effective_interactions=effective,
        raw_interactions=raw_interactions,
        inferred_weight=weight_sum,
    )
