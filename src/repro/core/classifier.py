"""The effort-is-endorsement opinion predictor, with abstention.

Section 4.1's first approach: "infer a predictive classifier that takes as
input observations of a user's interactions with an entity and either
outputs a numerical rating between 0 and 5 or declares it infeasible to
accurately gauge the user's opinion", trained by "correlating observations
of user-entity interactions with user-provided ratings for the subset of
users who do provide explicit input".

Implementation is deliberately transparent: ridge regression over the
standardized :class:`~repro.core.features.OpinionFeatures` vector, solved
in closed form with numpy — no opaque dependencies, inspectable weights
(``feature_weights`` shows *why* effort features carry the prediction).
Abstention is two-layered, as the paper's footnote demands:

* an evidence gate — too few interactions, or a history whose complaint
  markers dominate, is declared un-inferrable rather than guessed at;
* a confidence gate — the training residuals are bucketed by interaction
  count, and a prediction abstains when its bucket's residual spread says
  the model cannot beat ``max_expected_error`` stars.

:class:`RepeatCountBaseline` is the strawman the A1 benchmark compares
against: "more visits = higher rating", no effort features — exactly the
naive inference the paper argues is confounded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import OpinionFeatures


@dataclass(frozen=True)
class InferredOpinion:
    """The classifier's output for one (user, entity) pair."""

    rating: float | None  # None when abstaining
    confidence: float  # expected |error| proxy in stars, lower is better

    @property
    def abstained(self) -> bool:
        return self.rating is None


@dataclass(frozen=True)
class ClassifierConfig:
    """Training and abstention settings."""

    #: Default is deliberately strong: local training sets are small (the
    #: posting minority of one deployment), and heavy shrinkage beats both
    #: overfitting and padding with a mismatched synthetic prior.
    ridge_lambda: float = 5.0
    #: Evidence gate: abstain below this many interactions.
    min_interactions: int = 2
    #: Confidence gate: abstain when the residual-based expected error for
    #: this evidence level exceeds this many stars.
    max_expected_error: float = 1.1

    def __post_init__(self) -> None:
        if self.ridge_lambda < 0:
            raise ValueError("ridge_lambda must be non-negative")
        if self.min_interactions < 1:
            raise ValueError("min_interactions must be >= 1")


class NotFittedError(RuntimeError):
    """The classifier was used before training."""


class OpinionClassifier:
    """Ridge regression over opinion features, with calibrated abstention.

    The design matrix augments the raw feature vector with a nonlinear
    basis over the interaction count (log count and threshold indicators),
    so the model strictly nests the best count-only predictor — any
    advantage over :class:`RepeatCountBaseline` is then attributable to the
    effort/exploration/choice-set features, not to functional form.
    """

    #: Residuals are bucketed by interaction count at these edges.
    _BUCKET_EDGES = (2, 3, 5, 8, np.inf)
    #: Count thresholds for the nonlinear basis.
    _COUNT_KNOTS = (2.0, 3.0, 5.0, 8.0)

    def __init__(self, config: ClassifierConfig | None = None) -> None:
        self.config = config or ClassifierConfig()
        self._weights: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._bucket_error: dict[int, float] = {}

    # ------------------------------------------------------------- training

    def fit(
        self, features: list[OpinionFeatures], ratings: list[float]
    ) -> "OpinionClassifier":
        """Train on (features, explicit rating) pairs from posting users."""
        if len(features) != len(ratings):
            raise ValueError("features and ratings must align")
        if len(features) < 10:
            raise ValueError("need at least 10 training examples")
        X = np.vstack([f.as_vector() for f in features])
        y = np.asarray(ratings, dtype=np.float64)
        if np.any((y < 0) | (y > 5)):
            raise ValueError("ratings must lie in [0, 5]")

        X = np.hstack([X, self._count_basis(X[:, 0])])
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0] = 1.0
        Xs = (X - self._mean) / self._std
        Xs = np.hstack([Xs, np.ones((Xs.shape[0], 1))])  # bias column

        lam = self.config.ridge_lambda
        regularizer = lam * np.eye(Xs.shape[1])
        regularizer[-1, -1] = 0.0  # never shrink the bias
        self._weights = np.linalg.solve(Xs.T @ Xs + regularizer, Xs.T @ y)

        # Calibrate abstention from training residuals, bucketed by evidence.
        # Bucket means are shrunk toward the global mean (James-Stein
        # style): a bucket with three lucky training examples must not
        # claim near-zero expected error.
        predictions = Xs @ self._weights
        residuals = np.abs(predictions - y)
        counts = X[:, 0]  # n_interactions is the first feature
        global_mean = float(np.mean(residuals))
        shrinkage = 15.0
        self._bucket_error = {}
        for bucket, (lo, hi) in enumerate(zip((0,) + self._BUCKET_EDGES[:-1], self._BUCKET_EDGES)):
            mask = (counts >= lo) & (counts < hi)
            n_bucket = int(mask.sum())
            if n_bucket >= 3:
                bucket_mean = float(np.mean(residuals[mask]))
                self._bucket_error[bucket] = (
                    n_bucket * bucket_mean + shrinkage * global_mean
                ) / (n_bucket + shrinkage)
        if not self._bucket_error:
            self._bucket_error[0] = global_mean
        return self

    @classmethod
    def _count_basis(cls, counts: np.ndarray) -> np.ndarray:
        """Nonlinear interaction-count basis: log count + knot indicators."""
        counts = np.atleast_1d(np.asarray(counts, dtype=np.float64))
        columns = [np.log1p(counts)]
        columns += [(counts >= knot).astype(np.float64) for knot in cls._COUNT_KNOTS]
        return np.column_stack(columns)

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    def feature_weights(self) -> dict[str, float]:
        """Standardized regression weights per feature (for inspection).

        Includes the nonlinear count-basis columns under ``count:*`` names.
        """
        if self._weights is None:
            raise NotFittedError("fit() first")
        names = OpinionFeatures.feature_names()
        names = names + ["count:log1p"] + [
            f"count:>={int(knot)}" for knot in self._COUNT_KNOTS
        ]
        return {name: float(w) for name, w in zip(names, self._weights[:-1])}

    # ------------------------------------------------------------ inference

    def _bucket_of(self, n_interactions: float) -> int:
        edges = (0,) + self._BUCKET_EDGES[:-1]
        bucket = 0
        for index, lo in enumerate(edges):
            if n_interactions >= lo:
                bucket = index
        return bucket

    def _expected_error(self, n_interactions: float) -> float:
        bucket = self._bucket_of(n_interactions)
        while bucket >= 0:
            if bucket in self._bucket_error:
                return self._bucket_error[bucket]
            bucket -= 1
        return max(self._bucket_error.values())

    def predict(self, features: OpinionFeatures) -> InferredOpinion:
        """Predict a rating or abstain."""
        if self._weights is None or self._mean is None or self._std is None:
            raise NotFittedError("fit() first")
        expected_error = self._expected_error(features.n_interactions)
        if features.n_interactions < self.config.min_interactions:
            return InferredOpinion(rating=None, confidence=expected_error)
        if expected_error > self.config.max_expected_error:
            return InferredOpinion(rating=None, confidence=expected_error)
        raw = features.as_vector()
        raw = np.concatenate([raw, self._count_basis(raw[0])[0]])
        x = (raw - self._mean) / self._std
        x = np.append(x, 1.0)
        rating = float(np.clip(x @ self._weights, 0.0, 5.0))
        return InferredOpinion(rating=rating, confidence=expected_error)

    def predict_many(
        self, features: dict[str, OpinionFeatures]
    ) -> dict[str, InferredOpinion]:
        return {entity_id: self.predict(f) for entity_id, f in features.items()}


class RepeatCountBaseline:
    """The naive strawman: rating rises with interaction count, nothing else.

    Calibrated on the training set's count-vs-rating relation (isotonic in
    spirit: bucket means), so it is the *best possible* count-only model —
    the A1 comparison is fair.
    """

    _EDGES = (1, 2, 3, 5, 8, 13, np.inf)

    def __init__(self) -> None:
        self._bucket_means: list[float] | None = None

    def fit(
        self, features: list[OpinionFeatures], ratings: list[float]
    ) -> "RepeatCountBaseline":
        if len(features) != len(ratings):
            raise ValueError("features and ratings must align")
        counts = np.asarray([f.n_interactions for f in features])
        y = np.asarray(ratings, dtype=np.float64)
        means: list[float] = []
        overall = float(y.mean()) if y.size else 2.5
        for lo, hi in zip((0,) + self._EDGES[:-1], self._EDGES):
            mask = (counts >= lo) & (counts < hi)
            means.append(float(y[mask].mean()) if mask.any() else overall)
        self._bucket_means = means
        return self

    def predict(self, features: OpinionFeatures) -> InferredOpinion:
        if self._bucket_means is None:
            raise NotFittedError("fit() first")
        edges = (0,) + self._EDGES[:-1]
        bucket = 0
        for index, lo in enumerate(edges):
            if features.n_interactions >= lo:
                bucket = index
        return InferredOpinion(
            rating=float(np.clip(self._bucket_means[bucket], 0.0, 5.0)),
            confidence=1.0,
        )


def synthetic_training_pairs(
    n: int, seed: int = 0
) -> tuple[list[OpinionFeatures], list[float]]:
    """Cold-start training pairs from a behavioural prior.

    A freshly deployed RSP has no posting users to learn from in a new
    market; real systems bootstrap from their global population.  This
    generator stands in for that global data: it samples (features, rating)
    pairs from the behavioural regularities the paper postulates — liked
    entities attract more interactions, longer travel, exploration followed
    by settling; disliked ones show churn and complaint markers.  The
    pipeline mixes these in only when locally collected training data is
    too thin (see :func:`repro.orchestration.pipeline.train_classifier`).
    """
    from repro.util.rng import make_rng

    if n < 1:
        raise ValueError("n must be >= 1")
    rng = make_rng(seed, "classifier-bootstrap")
    features: list[OpinionFeatures] = []
    ratings: list[float] = []
    for _ in range(n):
        opinion = float(rng.uniform(0.5, 5.0))
        liked = opinion / 5.0
        count = max(1, int(rng.poisson(1 + 6 * liked)))
        travel = float(rng.uniform(0.5, 1.0 + 6.0 * liked))
        features.append(
            OpinionFeatures(
                n_interactions=float(count),
                span_days=float(rng.uniform(5, 150) * (0.3 + liked)),
                mean_gap_days=float(rng.uniform(5, 60)),
                mean_travel_km=travel,
                max_travel_km=travel * float(rng.uniform(1.0, 1.5)),
                mean_duration_min=float(rng.uniform(30, 90)),
                total_duration_hours=count * float(rng.uniform(0.5, 1.5)),
                excess_travel_km=travel - float(rng.uniform(0.5, 2.0)),
                n_alternatives_tried=float(rng.integers(0, 4)),
                tried_before_settling=float(rng.random() < 0.3 + 0.4 * liked),
                switched_away=float(rng.random() < 0.7 * (1 - liked)),
                n_similar_nearby=float(rng.integers(0, 10)),
                call_fraction=0.0,
                short_call_fraction=float((1 - liked) * rng.random() * 0.5),
                burst_fraction=float((1 - liked) * rng.random() * 0.5),
            )
        )
        ratings.append(float(np.clip(round(opinion + rng.normal(0, 0.3)), 0, 5)))
    return features, ratings
