"""Item-based collaborative filtering — the baseline the paper argues against.

Section 3.1: "Unlike the use of collaborative filtering [30] to suggest
recommendations based on the entities that a user has interacted with, a
search-based interface is more widely applicable.  For example, any
particular user is likely to have interacted with only one or at most a
few doctors and plumbers, preempting the inference of the user's
preferences."

This module implements the cited technique — item-item cosine similarity
over the user-rating matrix (Sarwar et al., WWW '01) — so the claim can be
measured: the A9 benchmark compares how often CF can produce *any*
recommendation for a (user, category) need against the search-based
discovery interface, per entity kind.  CF works passably for restaurants
(dense co-rating) and collapses for doctors and service providers (nobody
co-rates two plumbers), which is precisely the paper's point.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CFRecommendation:
    """One collaborative-filtering recommendation."""

    entity_id: str
    score: float


class ItemBasedCF:
    """Item-item cosine-similarity collaborative filtering.

    Ratings are mean-centered per user (the standard adjusted-cosine
    variant); prediction for an unseen item is the similarity-weighted
    average of the user's own ratings on similar items.
    """

    def __init__(
        self,
        min_corated: int = 2,
        item_groups: dict[str, str] | None = None,
    ) -> None:
        """``item_groups`` optionally scopes similarity to within-group
        item pairs (e.g. only plumber-plumber edges) — how a deployed
        vertical recommender is configured.  Without it, vanilla item CF
        bridges categories through co-rating users."""
        if min_corated < 1:
            raise ValueError("min_corated must be >= 1")
        self.min_corated = min_corated
        self.item_groups = dict(item_groups or {})
        self._ratings: dict[str, dict[str, float]] = {}  # user -> item -> rating
        self._similarity: dict[tuple[str, str], float] = {}
        self._items: set[str] = set()
        self._fitted = False

    def add_rating(self, user_id: str, entity_id: str, rating: float) -> None:
        """Record one explicit rating (training signal)."""
        if not 0.0 <= rating <= 5.0:
            raise ValueError("rating must lie in [0, 5]")
        self._ratings.setdefault(user_id, {})[entity_id] = rating
        self._items.add(entity_id)
        self._fitted = False

    @property
    def n_ratings(self) -> int:
        return sum(len(items) for items in self._ratings.values())

    def fit(self) -> "ItemBasedCF":
        """Compute adjusted-cosine item-item similarities."""
        by_item: dict[str, dict[str, float]] = defaultdict(dict)
        means: dict[str, float] = {}
        for user_id, items in self._ratings.items():
            if not items:
                continue
            means[user_id] = float(np.mean(list(items.values())))
            for entity_id, rating in items.items():
                by_item[entity_id][user_id] = rating - means[user_id]

        self._similarity = {}
        item_list = sorted(by_item)
        for i, item_a in enumerate(item_list):
            users_a = by_item[item_a]
            for item_b in item_list[i + 1 :]:
                if self.item_groups and self.item_groups.get(
                    item_a
                ) != self.item_groups.get(item_b):
                    continue
                users_b = by_item[item_b]
                common = users_a.keys() & users_b.keys()
                if len(common) < self.min_corated:
                    continue
                va = np.asarray([users_a[u] for u in common])
                vb = np.asarray([users_b[u] for u in common])
                na, nb = np.linalg.norm(va), np.linalg.norm(vb)
                if na == 0 or nb == 0:
                    continue
                similarity = float(va @ vb / (na * nb))
                self._similarity[(item_a, item_b)] = similarity
                self._similarity[(item_b, item_a)] = similarity
        self._fitted = True
        return self

    def similar_items(self, entity_id: str) -> list[tuple[str, float]]:
        """Items with a defined similarity to ``entity_id``."""
        if not self._fitted:
            raise RuntimeError("fit() first")
        return sorted(
            (
                (other, sim)
                for (a, other), sim in self._similarity.items()
                if a == entity_id
            ),
            key=lambda pair: -pair[1],
        )

    def recommend(
        self,
        user_id: str,
        candidates: list[str],
        top_k: int = 5,
    ) -> list[CFRecommendation]:
        """Recommend among ``candidates`` for ``user_id``.

        Returns an empty list when CF has nothing to say — no ratings from
        this user, or no similarity edges connecting their rated items to
        any candidate.  That emptiness is the statistic the paper's
        argument rests on.
        """
        if not self._fitted:
            raise RuntimeError("fit() first")
        own = self._ratings.get(user_id, {})
        if not own:
            return []
        scored: list[CFRecommendation] = []
        for candidate in candidates:
            if candidate in own:
                continue
            numerator = 0.0
            denominator = 0.0
            for rated_item, rating in own.items():
                similarity = self._similarity.get((candidate, rated_item))
                if similarity is None or similarity <= 0:
                    continue
                numerator += similarity * rating
                denominator += similarity
            if denominator > 0:
                scored.append(CFRecommendation(candidate, numerator / denominator))
        scored.sort(key=lambda r: -r.score)
        return scored[:top_k]

    def can_recommend(self, user_id: str, candidates: list[str]) -> bool:
        """Does CF produce at least one recommendation for this need?"""
        return bool(self.recommend(user_id, candidates, top_k=1))


@dataclass(frozen=True)
class ApplicabilityReport:
    """How often an approach can serve a (user, category) need at all."""

    approach: str
    by_kind: dict[str, tuple[int, int]]  # kind -> (servable, total)

    def rate(self, kind: str) -> float:
        servable, total = self.by_kind.get(kind, (0, 0))
        return servable / total if total else 0.0


def cf_applicability(
    cf: ItemBasedCF,
    needs: list[tuple[str, str, list[str]]],
    kind_of: dict[str, str],
) -> ApplicabilityReport:
    """Measure CF coverage over ``(user_id, category, candidate_ids)`` needs."""
    counts: dict[str, list[int]] = defaultdict(lambda: [0, 0])
    for user_id, category, candidates in needs:
        kind = kind_of.get(category, category)
        counts[kind][1] += 1
        if cf.can_recommend(user_id, candidates):
            counts[kind][0] += 1
    return ApplicabilityReport(
        approach="item-based CF",
        by_kind={kind: (s, t) for kind, (s, t) in counts.items()},
    )
