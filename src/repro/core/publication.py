"""Safe publication of aggregate summaries — defeating differencing.

Section 4.2 warns that an RSP "could change its interface in a manner that
enables other users to infer the entities with which a particular user has
interacted" (citing Calandrino et al.'s "You Might Also Like" attacks
[15]).  The sharpest instance is *differencing*: if the interface shows
exact inferred-opinion counts and refreshes continuously, an observer who
suspects Alice visited dentist D just watches D's count tick from 17 to 18
the day after her appointment.

The defense is to publish coarsened snapshots:

* **thresholding** — no inferred summary is shown at all until at least
  ``min_count`` anonymous users back it (small counts are both noisy and
  identifying);
* **rounding** — published counts are rounded to multiples of
  ``round_to``, so a single user's contribution is invisible;
* **batched publication** — summaries refresh on a schedule, not on every
  upload, so an increment cannot be timed against one person's behaviour.

:func:`differencing_attack` implements the adversary so the A13 benchmark
can show exact/continuous publication leaking and the coarsened policy
reducing the leak to (near) nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregation import EntityOpinionSummary


@dataclass(frozen=True)
class PublicationPolicy:
    """How aggregate summaries are coarsened before publication."""

    #: Minimum backing users before any inferred aggregate is shown.
    min_count: int = 5
    #: Published counts are rounded down to multiples of this.
    round_to: int = 5
    #: Published means are rounded to this many decimals (star precision).
    mean_decimals: int = 1

    def __post_init__(self) -> None:
        if self.min_count < 1:
            raise ValueError("min_count must be >= 1")
        if self.round_to < 1:
            raise ValueError("round_to must be >= 1")


def exact_policy() -> PublicationPolicy:
    """The strawman: publish exact counts and means immediately."""
    return PublicationPolicy(min_count=1, round_to=1, mean_decimals=6)


def coarsened_policy() -> PublicationPolicy:
    """The safe default: threshold at 5, round counts to 5, 0.1-star means."""
    return PublicationPolicy(min_count=5, round_to=5, mean_decimals=1)


@dataclass(frozen=True)
class PublishedSummary:
    """What the interface actually shows for one entity."""

    entity_id: str
    shown: bool
    n_opinions: int  # rounded; 0 when not shown
    mean: float | None  # rounded; None when not shown


def publish(summary: EntityOpinionSummary, policy: PublicationPolicy) -> PublishedSummary:
    """Coarsen one entity's summary for display."""
    backing = summary.n_inferred_opinions + summary.n_explicit_reviews
    if backing < policy.min_count:
        return PublishedSummary(entity_id=summary.entity_id, shown=False, n_opinions=0, mean=None)
    rounded_count = (backing // policy.round_to) * policy.round_to
    mean = summary.combined_mean
    rounded_mean = round(mean, policy.mean_decimals) if mean is not None else None
    return PublishedSummary(
        entity_id=summary.entity_id,
        shown=True,
        n_opinions=rounded_count,
        mean=rounded_mean,
    )


@dataclass(frozen=True)
class DifferencingReport:
    """Outcome of a differencing campaign across published snapshots."""

    n_targets: int
    n_confirmed: int  # targets whose activity the observer confirmed

    @property
    def success_rate(self) -> float:
        if self.n_targets == 0:
            return 0.0
        return self.n_confirmed / self.n_targets


def differencing_attack(
    snapshots_before: dict[str, PublishedSummary],
    snapshots_after: dict[str, PublishedSummary],
    suspected: list[tuple[str, str]],
) -> DifferencingReport:
    """Confirm suspicions by differencing two published snapshots.

    ``suspected`` holds (user, entity) guesses; a guess is *confirmed* when
    the entity's published opinion count visibly increased between the
    snapshots the observer knows bracket the user's suspected interaction.
    (With several users active per entity per interval the increment is
    ambiguous; this models the worst case where the observer knows the
    target was the only candidate — the defense must work even then.)
    """
    confirmed = 0
    for _, entity_id in suspected:
        before = snapshots_before.get(entity_id)
        after = snapshots_after.get(entity_id)
        count_before = before.n_opinions if before is not None and before.shown else 0
        count_after = after.n_opinions if after is not None and after.shown else 0
        if count_after > count_before:
            confirmed += 1
    return DifferencingReport(n_targets=len(suspected), n_confirmed=confirmed)
