"""Feature extraction for the effort-is-endorsement classifier.

Section 4.1 names three families of input features, all computed *on the
client* (only the client can see across its own entities):

1. **Effort** — what the user gives up to interact: distance travelled,
   time spent on premises.
2. **Exploration** — did the user settle on this entity after trying
   alternatives, or stick with it out of inertia?  "A user's repeated
   interactions with an electrician mean more if he has availed the
   services of other electricians previously."
3. **Choice set** — how many similar options the user passed over: an
   entity chosen among twenty comparable neighbours carries more signal
   than a monopoly.

Plus the repetition backbone (counts, spans, gaps) and the complaint
markers the paper warns about (short, tightly spaced calls are the
*opposite* of endorsement).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.sensing.resolution import InteractionType, ObservedInteraction
from repro.util.clock import DAY, HOUR, MINUTE
from repro.world.entities import Entity
from repro.world.geography import Point


@dataclass(frozen=True)
class OpinionFeatures:
    """The feature vector for one (user, entity) pair.

    All fields are floats so ``as_vector`` is a cheap, stable mapping; the
    classifier never sees anything but this.
    """

    # Repetition backbone
    n_interactions: float
    span_days: float
    mean_gap_days: float
    # Effort
    mean_travel_km: float
    max_travel_km: float
    mean_duration_min: float
    total_duration_hours: float
    #: Mean travel minus distance to the nearest similar alternative —
    #: positive means the user systematically passes closer options.
    excess_travel_km: float
    # Exploration
    n_alternatives_tried: float
    tried_before_settling: float  # 0/1: alternatives tried before the last switch here
    #: 1 when the user's most recent interaction in the category was with a
    #: *different* entity — they have moved on (negative signal).
    switched_away: float
    # Choice set
    n_similar_nearby: float
    # Complaint markers
    call_fraction: float
    short_call_fraction: float  # calls under a minute
    burst_fraction: float  # gaps under 3 days
    # Optional wearable affect channel (Section 3.1's scoped-out idea;
    # 0.0 when no wearable data is available — see repro.sensing.wearables).
    mean_valence: float = 0.0

    def as_vector(self) -> np.ndarray:
        return np.asarray(
            [getattr(self, field.name) for field in fields(self)], dtype=np.float64
        )

    @staticmethod
    def feature_names() -> list[str]:
        return [field.name for field in fields(OpinionFeatures)]


#: Radius within which another entity counts as a "similar nearby option".
SIMILAR_RADIUS_KM = 4.0
#: Attribute-similarity floor for the choice-set feature.
SIMILARITY_FLOOR = 0.5
#: A call shorter than this reads as a hang-up/complaint, seconds.
SHORT_CALL_SECONDS = 60.0
#: Gaps under this many days count toward the burst fraction.
BURST_GAP_DAYS = 3.0


def extract_features(
    entity: Entity,
    own_interactions: list[ObservedInteraction],
    all_interactions: list[ObservedInteraction],
    catalog: dict[str, Entity],
    home: Point,
    emotion_valence: float | None = None,
) -> OpinionFeatures:
    """Compute the feature vector for one entity from the client's view.

    ``own_interactions`` are with ``entity``; ``all_interactions`` are the
    user's full observed stream (used for exploration features);
    ``catalog`` is the public entity directory; ``home`` the user's primary
    anchor as the client inferred it.  ``emotion_valence`` is the optional
    wearable affect mean for this entity (defaults to neutral 0).
    """
    if not own_interactions:
        raise ValueError("cannot extract features without interactions")

    times = sorted(i.time for i in own_interactions)
    n = len(own_interactions)
    span = times[-1] - times[0]
    gaps = np.diff(times)
    travels = [i.travel_km for i in own_interactions if i.travel_km > 0]
    durations = [i.duration for i in own_interactions]
    calls = [i for i in own_interactions if i.interaction_type is InteractionType.CALL]
    short_calls = [c for c in calls if c.duration < SHORT_CALL_SECONDS]

    comparable = [
        other
        for other in catalog.values()
        if other.entity_id != entity.entity_id
        and entity.similarity_to(other) >= SIMILARITY_FLOOR
    ]
    # Choice set: comparable options in the entity's own neighbourhood.
    similar = [
        other
        for other in comparable
        if other.location.distance_to(entity.location) <= SIMILAR_RADIUS_KM
    ]
    # Excess travel compares against the alternative most convenient *to
    # the user*, wherever it is — that is the option the user passes over.
    nearest_alternative_km = min(
        (home.distance_to(other.location) for other in comparable),
        default=home.distance_to(entity.location),
    )

    same_category_ids = {
        other.entity_id
        for other in catalog.values()
        if other.kind is entity.kind and other.category == entity.category
    }
    category_stream = [
        i for i in all_interactions if i.entity_id in same_category_ids
    ]
    alternatives_tried = {
        i.entity_id for i in category_stream if i.entity_id != entity.entity_id
    }
    first_own = times[0]
    tried_before = any(
        i.entity_id != entity.entity_id and i.time < first_own for i in category_stream
    )
    last_in_category = max(category_stream, key=lambda i: i.time, default=None)
    switched_away = (
        1.0
        if last_in_category is not None and last_in_category.entity_id != entity.entity_id
        else 0.0
    )

    mean_travel = float(np.mean(travels)) if travels else 0.0
    return OpinionFeatures(
        n_interactions=float(n),
        span_days=span / DAY,
        mean_gap_days=float(np.mean(gaps)) / DAY if gaps.size else 0.0,
        mean_travel_km=mean_travel,
        max_travel_km=float(max(travels)) if travels else 0.0,
        mean_duration_min=float(np.mean(durations)) / MINUTE,
        total_duration_hours=float(np.sum(durations)) / HOUR,
        excess_travel_km=mean_travel - nearest_alternative_km if travels else 0.0,
        n_alternatives_tried=float(len(alternatives_tried)),
        tried_before_settling=1.0 if tried_before else 0.0,
        switched_away=switched_away,
        n_similar_nearby=float(len(similar)),
        call_fraction=len(calls) / n,
        short_call_fraction=len(short_calls) / n,
        burst_fraction=float(np.mean(gaps < BURST_GAP_DAYS * DAY)) if gaps.size else 0.0,
        mean_valence=emotion_valence if emotion_valence is not None else 0.0,
    )


def extract_all_features(
    interactions: list[ObservedInteraction],
    catalog: dict[str, Entity],
    home: Point,
    emotion: dict[str, float] | None = None,
) -> dict[str, OpinionFeatures]:
    """Feature vectors for every entity in one user's interaction stream.

    ``emotion`` optionally maps entity_id -> mean wearable valence (see
    :mod:`repro.sensing.wearables`).
    """
    by_entity: dict[str, list[ObservedInteraction]] = {}
    for interaction in interactions:
        by_entity.setdefault(interaction.entity_id, []).append(interaction)
    features: dict[str, OpinionFeatures] = {}
    for entity_id, own in by_entity.items():
        entity = catalog.get(entity_id)
        if entity is None:
            continue
        features[entity_id] = extract_features(
            entity,
            own,
            interactions,
            catalog,
            home,
            emotion_valence=(emotion or {}).get(entity_id),
        )
    return features
