"""Client-side personalization — the install incentive of Section 5.

"A user is more likely to install the app if she herself benefits from it
... for any search query issued by a user, the RSP could tailor results
based on the user's history."

Crucially this happens *on the device*: the server returns its normal
anonymous ranking, and the client re-ranks it against the user's own
transparency log — entities the user already likes float up, entities they
avoided sink, and their revealed preferences (price point, how far they
actually travel) adjust the rest.  Nothing about the user's history leaves
the phone to make this work, so the incentive costs no privacy.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.core.discovery import RankedResult, SearchResponse
from repro.world.geography import Point

if TYPE_CHECKING:  # avoid a core -> client import cycle at runtime
    from repro.client.transparency import TransparencyLog


@dataclass(frozen=True)
class PersonalizationWeights:
    """How strongly personal signals move the server ranking."""

    #: Added per star of the user's own (inferred or corrected) rating,
    #: relative to a neutral 2.5.
    own_opinion: float = 0.6
    #: Penalty per km beyond the user's typical travel tolerance.
    distance: float = 0.15
    #: The user's typical acceptable trip, km.
    travel_tolerance_km: float = 3.0

    def __post_init__(self) -> None:
        if self.travel_tolerance_km <= 0:
            raise ValueError("travel tolerance must be positive")


@dataclass(frozen=True)
class PersonalizedResult:
    """A server result with its client-side adjustment broken out."""

    base: RankedResult
    personal_adjustment: float

    @property
    def score(self) -> float:
        return self.base.score + self.personal_adjustment

    @property
    def entity_id(self) -> str:
        return self.base.entity.entity_id


def personalize(
    response: SearchResponse,
    transparency: "TransparencyLog",
    home: Point,
    weights: PersonalizationWeights | None = None,
) -> list[PersonalizedResult]:
    """Re-rank a server response against the user's own inference log.

    The adjustment is explainable per result: the user's own opinion of the
    entity (if the client inferred or the user stated one) and the trip
    length from the user's anchor.
    """
    weights = weights or PersonalizationWeights()
    entries = {entry.entity_id: entry for entry in transparency.audit()}
    personalized: list[PersonalizedResult] = []
    for result in response.results:
        adjustment = 0.0
        entry = entries.get(result.entity.entity_id)
        if entry is not None and entry.effective_rating is not None:
            adjustment += weights.own_opinion * (entry.effective_rating - 2.5)
        trip = home.distance_to(result.entity.location)
        if trip > weights.travel_tolerance_km:
            adjustment -= weights.distance * (trip - weights.travel_tolerance_km)
        personalized.append(PersonalizedResult(base=result, personal_adjustment=adjustment))
    personalized.sort(key=lambda r: (-r.score, r.base.distance_km, r.entity_id))
    return personalized
