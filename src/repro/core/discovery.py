"""Recommendation discovery: the search interface of Figure 2.

"For every search result, the RSP can show not only reviews explicitly
contributed by users but also a summary of inferred opinions" (Section
3.1).  A query names a category and a location; results carry the explicit
reviews, the inferred-opinion summary, and the comparative visualizations,
ranked by a blend of opinion quality and evidence volume.

The paper argues a search interface beats collaborative filtering here
because any one user interacts with too few doctors or plumbers for
preference inference — so ranking uses only per-entity aggregates, never
the querying user's history.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.aggregation import EntityOpinionSummary
from repro.core.visualization import ComparativeVisualization
from repro.world.entities import Entity
from repro.world.geography import Point


@dataclass(frozen=True)
class Query:
    """A user's search: category near a location."""

    category: str
    near: Point
    radius_km: float = 8.0

    def __post_init__(self) -> None:
        if self.radius_km <= 0:
            raise ValueError("radius must be positive")


@dataclass(frozen=True)
class RankedResult:
    """One search result with its evidence."""

    entity: Entity
    distance_km: float
    summary: EntityOpinionSummary
    score: float


@dataclass(frozen=True)
class SearchResponse:
    """What the user gets back: ranked results plus comparative context."""

    query: Query
    results: tuple[RankedResult, ...]
    visualization: ComparativeVisualization | None

    @property
    def n_results(self) -> int:
        return len(self.results)

    def render(self, limit: int = 10) -> str:
        lines = [
            f"Results for {self.query.category!r} within "
            f"{self.query.radius_km:g} km ({self.n_results} matches)"
        ]
        for rank, result in enumerate(self.results[:limit], start=1):
            summary = result.summary
            explicit = (
                f"{summary.explicit_mean:.1f}* x{summary.n_explicit_reviews}"
                if summary.explicit_mean is not None
                else "no reviews"
            )
            inferred = (
                f"{summary.inferred_mean:.1f}* x{summary.n_inferred_opinions} inferred"
                if summary.inferred_mean is not None
                else "no inferences"
            )
            lines.append(
                f"{rank:2d}. {result.entity.entity_id:24s} "
                f"{result.distance_km:4.1f} km  [{explicit} | {inferred}]"
            )
        return "\n".join(lines)


def opinion_score(summary: EntityOpinionSummary, prior_mean: float = 2.5, prior_weight: float = 5.0) -> float:
    """Bayesian-smoothed quality score from all opinions (explicit + inferred).

    Entities with few opinions shrink toward the prior, so a single 5-star
    review does not outrank forty 4.2-star inferences; evidence volume
    enters logarithmically as a tie-breaker.
    """
    mean = summary.combined_mean
    n = summary.total_opinions
    if mean is None or n == 0:
        smoothed = prior_mean
    else:
        smoothed = (mean * n + prior_mean * prior_weight) / (n + prior_weight)
    return smoothed + 0.15 * math.log1p(n)


class DiscoveryService:
    """Executes queries over the catalog and the aggregated summaries."""

    def __init__(self, catalog: list[Entity]) -> None:
        if not catalog:
            raise ValueError("catalog must be non-empty")
        self._catalog = list(catalog)

    def matching_entities(self, query: Query) -> list[tuple[Entity, float]]:
        matches: list[tuple[Entity, float]] = []
        for entity in self._catalog:
            if entity.category != query.category:
                continue
            distance = query.near.distance_to(entity.location)
            if distance <= query.radius_km:
                matches.append((entity, distance))
        return matches

    def search(
        self,
        query: Query,
        summaries: dict[str, EntityOpinionSummary],
        visualization: ComparativeVisualization | None = None,
    ) -> SearchResponse:
        """Rank matching entities by opinion score (distance as tiebreak)."""
        results: list[RankedResult] = []
        for entity, distance in self.matching_entities(query):
            summary = summaries.get(entity.entity_id)
            if summary is None:
                summary = EntityOpinionSummary(
                    entity_id=entity.entity_id,
                    n_explicit_reviews=0,
                    explicit_mean=None,
                    explicit_histogram=[0] * 5,
                    n_inferred_opinions=0,
                    inferred_mean=None,
                    inferred_histogram=[0] * 5,
                    n_interacting_users=0,
                    effective_interactions=0.0,
                    raw_interactions=0,
                )
            results.append(
                RankedResult(
                    entity=entity,
                    distance_km=distance,
                    summary=summary,
                    score=opinion_score(summary),
                )
            )
        results.sort(key=lambda r: (-r.score, r.distance_km, r.entity.entity_id))
        return SearchResponse(
            query=query, results=tuple(results), visualization=visualization
        )
