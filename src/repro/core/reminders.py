"""Review reminders — the alternative Section 3 considers and dismisses.

"If an RSP attempts to increase the chances of its users posting reviews
by reminding them to do so ... an RSP will need the ability to track a
user's interactions in the physical world in order to even identify when a
user should be sent a reminder."  So reminders require the same sensing
substrate as implicit inference, keep the explicit-input bottleneck, and
add prompt fatigue on top.

This module models the reminder strategy so the A15 benchmark can compare
it fairly against implicit inference *on the same detected interactions*:

* after each detected visit the app may prompt (rate-limited);
* a prompt converts to a review with probability proportional to the
  user's posting propensity, boosted by the nudge — reminders genuinely
  help the users who were already inclined;
* every prompt risks annoying the user into uninstalling
  (``churn_per_prompt``), after which the RSP gets nothing from them —
  no reviews *and* no implicit inferences.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.clock import WEEK
from repro.util.rng import make_rng


@dataclass(frozen=True)
class ReminderPolicy:
    """How aggressively the app prompts."""

    #: Probability of prompting after a detected visit (before rate limit).
    prompt_probability: float = 1.0
    #: At most this many prompts per user per week.
    max_prompts_per_week: float = 2.0
    #: Multiplier on the user's spontaneous posting propensity when nudged.
    acceptance_boost: float = 5.0
    #: Probability each prompt annoys the user into uninstalling.
    churn_per_prompt: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.prompt_probability <= 1.0:
            raise ValueError("prompt_probability must lie in [0, 1]")
        if self.max_prompts_per_week <= 0:
            raise ValueError("max_prompts_per_week must be positive")
        if self.acceptance_boost < 1.0:
            raise ValueError("a reminder cannot make posting less likely than baseline")
        if not 0.0 <= self.churn_per_prompt <= 1.0:
            raise ValueError("churn_per_prompt must lie in [0, 1]")


@dataclass(frozen=True)
class ReminderOutcome:
    """What a reminder campaign produced across a population."""

    n_users: int
    n_prompts: int
    n_reviews_gained: int
    n_churned_users: int

    @property
    def churn_rate(self) -> float:
        if self.n_users == 0:
            return 0.0
        return self.n_churned_users / self.n_users

    @property
    def reviews_per_prompt(self) -> float:
        if self.n_prompts == 0:
            return 0.0
        return self.n_reviews_gained / self.n_prompts


def simulate_reminders(
    visit_times_by_user: dict[str, list[float]],
    posting_propensity: dict[str, float],
    horizon: float,
    policy: ReminderPolicy | None = None,
    seed: int = 0,
) -> ReminderOutcome:
    """Run a reminder campaign over each user's detected visit stream.

    ``visit_times_by_user`` is what the app's sensing layer detected (the
    same input implicit inference gets); ``posting_propensity`` is each
    user's spontaneous likelihood of posting, which the nudge multiplies.
    Returns the aggregate campaign outcome, counting only reviews *gained*
    (prompted posts; spontaneous posting is accounted elsewhere).
    """
    policy = policy or ReminderPolicy()
    n_prompts = 0
    n_reviews = 0
    n_churned = 0
    for user_id, visit_times in visit_times_by_user.items():
        rng = make_rng(seed, f"reminders/{user_id}")
        propensity = posting_propensity.get(user_id, 0.0)
        accept_probability = min(0.9, propensity * policy.acceptance_boost)
        churned = False
        window_start = 0.0
        prompts_in_window = 0
        for visit_time in sorted(visit_times):
            if churned or visit_time > horizon:
                break
            if visit_time - window_start >= WEEK:
                window_start = visit_time
                prompts_in_window = 0
            if prompts_in_window >= policy.max_prompts_per_week:
                continue
            if rng.random() >= policy.prompt_probability:
                continue
            prompts_in_window += 1
            n_prompts += 1
            if rng.random() < accept_probability:
                n_reviews += 1
            if rng.random() < policy.churn_per_prompt:
                churned = True
                n_churned += 1
    return ReminderOutcome(
        n_users=len(visit_times_by_user),
        n_prompts=n_prompts,
        n_reviews_gained=n_reviews,
        n_churned_users=n_churned,
    )
