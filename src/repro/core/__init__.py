"""The paper's primary contribution: implicit opinion inference and discovery.

Effort/exploration/choice-set features (Section 4.1), the
effort-is-endorsement classifier with abstention, aggregate opinion
summaries with group deflation, the Figure 3 comparative visualizations,
and the search interface that surfaces all of it (Section 3.1).
"""

from repro.core.aggregation import (
    EntityOpinionSummary,
    OpinionUpload,
    RATING_EDGES,
    deflate_groups,
    influence_weight,
    rating_histogram,
    summarize_entity,
)
from repro.core.collabfilter import (
    ApplicabilityReport,
    CFRecommendation,
    ItemBasedCF,
    cf_applicability,
)
from repro.core.personalization import (
    PersonalizationWeights,
    PersonalizedResult,
    personalize,
)
from repro.core.classifier import (
    ClassifierConfig,
    InferredOpinion,
    NotFittedError,
    OpinionClassifier,
    RepeatCountBaseline,
    synthetic_training_pairs,
)
from repro.core.discovery import (
    DiscoveryService,
    Query,
    RankedResult,
    SearchResponse,
    opinion_score,
)
from repro.core.reminders import ReminderOutcome, ReminderPolicy, simulate_reminders
from repro.core.publication import (
    DifferencingReport,
    PublicationPolicy,
    PublishedSummary,
    coarsened_policy,
    differencing_attack,
    exact_policy,
    publish,
)
from repro.core.protocol import AnonymousRecord, Envelope
from repro.core.features import (
    OpinionFeatures,
    extract_all_features,
    extract_features,
)
from repro.core.visualization import (
    ComparativeVisualization,
    DistanceVisitsSeries,
    VisitsHistogram,
    compare_entities,
    distance_vs_visits,
    visits_per_user_histogram,
)

__all__ = [
    "RATING_EDGES",
    "ClassifierConfig",
    "ComparativeVisualization",
    "DiscoveryService",
    "Envelope",
    "AnonymousRecord",
    "ApplicabilityReport",
    "CFRecommendation",
    "ItemBasedCF",
    "PersonalizationWeights",
    "PersonalizedResult",
    "PublicationPolicy",
    "PublishedSummary",
    "ReminderOutcome",
    "ReminderPolicy",
    "simulate_reminders",
    "DifferencingReport",
    "coarsened_policy",
    "differencing_attack",
    "exact_policy",
    "publish",
    "cf_applicability",
    "personalize",
    "DistanceVisitsSeries",
    "EntityOpinionSummary",
    "InferredOpinion",
    "NotFittedError",
    "OpinionClassifier",
    "OpinionFeatures",
    "OpinionUpload",
    "Query",
    "RankedResult",
    "RepeatCountBaseline",
    "SearchResponse",
    "VisitsHistogram",
    "compare_entities",
    "deflate_groups",
    "influence_weight",
    "distance_vs_visits",
    "extract_all_features",
    "extract_features",
    "opinion_score",
    "rating_histogram",
    "summarize_entity",
    "synthetic_training_pairs",
    "visits_per_user_histogram",
]
