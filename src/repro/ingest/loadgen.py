"""Sustained-traffic load generation: millions of synthetic users.

The differential suites exercise intake with fully simulated towns — a
few dozen on-device clients, real token wallets, a real mixnet.  That is
the right substrate for *correctness*, but it tops out far below the
scale ROADMAP item 1 asks about.  This module generates the traffic
shape of a million-user deployment directly at the wire format:
:class:`Delivery`-wrapped :class:`Envelope` streams whose entity
popularity follows the Zipf law the measurement study observed (a few
restaurants get most of the visits — :func:`repro.util.distributions.bounded_zipf`),
whose per-slot opinion ``seq`` numbers advance like real client
re-uploads, and whose nonces behave like real per-record retransmission
identifiers.

Everything is generated from one labelled seeded stream
(:func:`repro.util.rng.make_rng`), so a workload is exactly reproducible:
the soak harness (:mod:`repro.ingest.soak`), the differential tests, and
the benchmark all replay identical traffic for identical configs.

Synthetic senders are plain integer indices — no identity-bearing names
exist here, and the history identifiers they map to are opaque formatted
slugs, mirroring how real ``hash(Ru, e)`` identifiers carry no structure
the server can link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregation import OpinionUpload
from repro.core.protocol import Envelope
from repro.privacy.anonymity import Delivery
from repro.privacy.history_store import InteractionUpload
from repro.util.distributions import bounded_zipf
from repro.util.rng import make_rng
from repro.world.entities import DEFAULT_CATEGORIES, Entity, EntityKind
from repro.world.geography import Point

#: Event times are back-dated up to this much from arrival (one upload
#: quantization window), keeping ``rsp.ingest_lag`` in its first buckets.
_MAX_EVENT_LAG = 3600.0


def synthetic_catalog(n_entities: int, seed: int = 0) -> list[Entity]:
    """A catalog of ``n_entities`` plausible entities on a grid.

    Kinds cycle through the full :class:`EntityKind` enum so every
    interaction style is represented; qualities are drawn from the
    labelled stream so two catalogs with the same seed are identical.
    """
    if n_entities < 1:
        raise ValueError("need at least one entity")
    gen = make_rng(seed, "ingest/catalog")
    kinds = list(EntityKind)
    qualities = gen.uniform(0.5, 5.0, size=n_entities)
    entities = []
    for index in range(n_entities):
        kind = kinds[index % len(kinds)]
        categories = DEFAULT_CATEGORIES[kind]
        entities.append(
            Entity(
                entity_id=f"soak-{kind.label}-{index:05d}",
                kind=kind,
                category=categories[index % len(categories)],
                location=Point(x=float(index % 100) * 0.1, y=float(index // 100) * 0.1),
                quality=float(qualities[index]),
                price_level=1 + index % 4,
            )
        )
    return entities


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of one synthetic traffic stream."""

    #: Size of the synthetic population; senders are indices in
    #: ``[0, n_users)``, so millions cost nothing to "create".
    n_users: int = 1_000_000
    n_entities: int = 400
    #: Zipf popularity exponent over entity rank (1.0–1.2 matches the
    #: heavy-tailed interaction counts of the measurement study).
    zipf_exponent: float = 1.1
    #: Fraction of envelopes carrying an :class:`OpinionUpload`.
    opinion_fraction: float = 0.25
    #: Fraction re-delivered verbatim (same record, same nonce) — the
    #: at-least-once network duplicate intake must suppress.
    duplicate_fraction: float = 0.0
    #: Fraction of opinions re-uploaded under an already-used ``seq``
    #: (delayed/reordered copies the per-slot resolution must drop).
    stale_fraction: float = 0.0
    #: Fraction of envelopes naming an entity outside the catalog.
    invalid_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_entities < 1:
            raise ValueError("need at least one user and one entity")
        for name in (
            "opinion_fraction",
            "duplicate_fraction",
            "stale_fraction",
            "invalid_fraction",
        ):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")


class SyntheticTraffic:
    """A deterministic, resumable stream of wire-format deliveries.

    Each :meth:`batch` call draws the next ``size`` envelopes from the
    labelled stream; the generator's cursor *is* the workload state, so
    interleaving batch sizes differently still yields the same total
    traffic prefix.
    """

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self.catalog = synthetic_catalog(config.n_entities, seed=config.seed)
        self._entity_ids = [entity.entity_id for entity in self.catalog]
        self._gen = make_rng(config.seed, "ingest/traffic")
        self._nonce_counter = 0
        #: Highest opinion ``seq`` uploaded per (sender, entity) slot.
        self._slot_seq: dict[tuple[int, int], int] = {}
        self._last_delivery: Delivery | None = None
        #: Total envelopes generated (duplicates included).
        self.generated = 0

    def _history_slug(self, sender: int, entity_index: int) -> str:
        # Opaque per-(sender, entity) slug standing in for hash(Ru, e);
        # formatted decimal, so it never looks like a linkable hex digest.
        return f"soak-h-{sender:08d}-{entity_index:05d}"

    def batch(self, size: int, now: float) -> list[Delivery]:
        """The next ``size`` deliveries, all arriving at ``now``."""
        if size <= 0:
            return []
        config = self.config
        gen = self._gen
        entity_indices = bounded_zipf(
            gen, config.zipf_exponent, config.n_entities, size
        )
        senders = gen.integers(0, config.n_users, size=size)
        rolls = gen.random(size=size)
        stale_rolls = gen.random(size=size)
        dup_rolls = gen.random(size=size)
        invalid_rolls = gen.random(size=size)
        event_lags = gen.uniform(0.0, _MAX_EVENT_LAG, size=size)
        ratings = gen.integers(0, 6, size=size)
        durations = gen.uniform(120.0, 5400.0, size=size)
        travels = gen.uniform(0.0, 12.0, size=size)

        entity_ids = self._entity_ids
        deliveries: list[Delivery] = []
        append = deliveries.append
        for i in range(size):
            if (
                config.duplicate_fraction > 0.0
                and self._last_delivery is not None
                and dup_rolls[i] < config.duplicate_fraction
            ):
                previous = self._last_delivery
                append(
                    Delivery(
                        payload=previous.payload,
                        arrival_time=now,
                        channel_tag=previous.channel_tag,
                    )
                )
                self.generated += 1
                continue
            sender = int(senders[i])
            entity_index = int(entity_indices[i])
            entity_id = entity_ids[entity_index]
            if config.invalid_fraction > 0.0 and invalid_rolls[i] < config.invalid_fraction:
                entity_id = "soak-unknown-entity"
            slug = self._history_slug(sender, entity_index)
            if rolls[i] < config.opinion_fraction:
                slot = (sender, entity_index)
                last_seq = self._slot_seq.get(slot)
                if (
                    last_seq is not None
                    and config.stale_fraction > 0.0
                    and stale_rolls[i] < config.stale_fraction
                ):
                    seq = last_seq  # a delayed copy of the current slot value
                else:
                    seq = 0 if last_seq is None else last_seq + 1
                    self._slot_seq[slot] = seq
                record: InteractionUpload | OpinionUpload = OpinionUpload(
                    history_id=slug,
                    entity_id=entity_id,
                    rating=float(ratings[i]),
                    seq=seq,
                )
            else:
                record = InteractionUpload(
                    history_id=slug,
                    entity_id=entity_id,
                    interaction_type="visit" if sender % 2 else "call",
                    event_time=max(0.0, now - float(event_lags[i])),
                    duration=float(durations[i]),
                    travel_km=float(travels[i]),
                )
            # Unique per record; the multiplicative mix spreads the
            # leading bytes (which shard nonce buckets key on) without
            # spending any randomness.
            counter = self._nonce_counter
            self._nonce_counter += 1
            mixed = (counter * 0x9E3779B97F4A7C15) % (1 << 64)
            nonce = mixed.to_bytes(8, "big") + counter.to_bytes(8, "big")
            delivery = Delivery(
                payload=Envelope(record=record, token=None, nonce=nonce),
                arrival_time=now,
                channel_tag="loadgen",
            )
            self._last_delivery = delivery
            self.generated += 1
            append(delivery)
        return deliveries
