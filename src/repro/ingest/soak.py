"""Sustained-traffic soak harness: the intake path under steady load.

The differential suites prove the batched intake path is *correct*; this
module measures whether it *holds up*: a tick loop drives Zipf-shaped
synthetic traffic (:mod:`repro.ingest.loadgen`) through the bounded
queue (:mod:`repro.ingest.queue`) into a tokenless :class:`RSPServer`
via :func:`repro.ingest.columnar.ingest_all`, and reports steady-state
events/sec and p99 intake latency after a warmup window.

Simulated time advances ``tick_seconds`` per tick (arrival times, outage
windows, ingest-lag telemetry all live on the simulated clock);
throughput and latency are measured on the host's monotonic clock, which
is the one deliberate wall-clock dependency in the package — the numbers
*are* the measurement, like the spans in :mod:`repro.durability.journal`.

Overload comes in through the same duck-typed ``fault_hook`` seam the
production servers use: the harness asks ``fault_hook.surge_factor(now)``
for an offered-load multiplier each tick (see
:class:`repro.faults.plan.IngestSurge`), so this module never imports
:mod:`repro.faults` and the ``faults-only-in-harness`` lint rule holds.
Callers that want a flash crowd pass a
:class:`~repro.faults.injector.FaultInjector` built from
:func:`~repro.faults.plan.overload_plan`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.ingest.columnar import ingest_all
from repro.ingest.loadgen import SyntheticTraffic, WorkloadConfig
from repro.ingest.queue import BoundedIntakeQueue
from repro.service.server import RSPServer
from repro.telemetry import Telemetry


def _stamp() -> float:
    """Monotonic wall-clock stamp for throughput/latency measurement."""
    return time.perf_counter()  # repro: allow[det-wall-clock]


@dataclass(frozen=True)
class SoakConfig:
    """One soak scenario: workload shape plus intake-path sizing."""

    # ----------------------------------------------------- workload shape
    n_users: int = 1_000_000
    n_entities: int = 300
    zipf_exponent: float = 1.1
    opinion_fraction: float = 0.25
    #: Small impurity fractions keep the dedup / seq-resolution / validation
    #: branches warm during the soak instead of measuring a clean-path lie.
    duplicate_fraction: float = 0.01
    stale_fraction: float = 0.01
    invalid_fraction: float = 0.01
    seed: int = 0
    # ------------------------------------------------------- intake sizing
    #: Total ticks; simulated time advances ``tick_seconds`` per tick.
    ticks: int = 60
    #: Ticks excluded from steady-state throughput / latency figures.
    warmup_ticks: int = 10
    #: Baseline envelopes offered per tick (scaled by any surge factor).
    arrivals_per_tick: int = 2_000
    #: Maximum envelopes handed to the server per drain.
    drain_limit: int = 2_500
    #: Bounded-queue capacity; the shed threshold under overload.
    queue_depth: int = 5_000
    tick_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ValueError("need at least one tick")
        if not 0 <= self.warmup_ticks < self.ticks:
            raise ValueError("warmup_ticks must lie in [0, ticks)")
        if self.arrivals_per_tick < 1 or self.drain_limit < 1:
            raise ValueError("arrivals_per_tick and drain_limit must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")

    def workload(self) -> WorkloadConfig:
        return WorkloadConfig(
            n_users=self.n_users,
            n_entities=self.n_entities,
            zipf_exponent=self.zipf_exponent,
            opinion_fraction=self.opinion_fraction,
            duplicate_fraction=self.duplicate_fraction,
            stale_fraction=self.stale_fraction,
            invalid_fraction=self.invalid_fraction,
            seed=self.seed,
        )


@dataclass(frozen=True)
class SoakReport:
    """What one soak run offered, shed, processed, and measured."""

    ticks: int
    offered: int
    admitted: int
    shed: int
    drained: int
    accepted: int
    rejected: int
    duplicates: int
    stale: int
    #: Deepest the bounded queue ever got.
    max_queue_depth: int
    #: Did the queue ever shed?  The overload scenarios assert this.
    shed_engaged: bool
    #: Envelopes ingested per wall-clock second, post-warmup ticks only.
    steady_events_per_sec: float
    #: 99th-percentile offer→ingested latency, wall-clock milliseconds,
    #: post-warmup ticks only (queue wait plus service time).
    p99_latency_ms: float
    wall_seconds: float

    def as_dict(self) -> dict:
        return {
            "ticks": self.ticks,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "drained": self.drained,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "duplicates": self.duplicates,
            "stale": self.stale,
            "max_queue_depth": self.max_queue_depth,
            "shed_engaged": self.shed_engaged,
            "steady_events_per_sec": round(self.steady_events_per_sec, 1),
            "p99_latency_ms": round(self.p99_latency_ms, 3),
            "wall_seconds": round(self.wall_seconds, 3),
        }


def run_soak(
    config: SoakConfig,
    telemetry: Telemetry | None = None,
    fault_hook=None,
) -> SoakReport:
    """Drive one soak scenario end to end and measure it.

    Event counts (offered/admitted/shed/accepted/…) are pure functions of
    the config and the hook — byte-for-byte reproducible.  Only the
    throughput and latency figures depend on the host.
    """
    telemetry = Telemetry() if telemetry is None else telemetry
    traffic = SyntheticTraffic(config.workload())
    server = RSPServer(traffic.catalog, require_tokens=False)
    server.attach_telemetry(telemetry)
    queue = BoundedIntakeQueue(config.queue_depth, telemetry=telemetry)

    #: Offer-time stamp per queued envelope, FIFO like the queue itself.
    offer_stamps: deque[float] = deque()
    latencies: list[float] = []
    steady_events = 0
    steady_wall = 0.0
    offered = 0
    now = 0.0

    def pump(now: float, in_steady: bool) -> None:
        """One drain → ingest step, with its measurement bookkeeping."""
        nonlocal steady_events, steady_wall
        start = _stamp()
        batch = queue.drain(config.drain_limit)
        if batch:
            ingest_all(server, batch, now=now)
        end = _stamp()
        for _ in batch:
            queued_at = offer_stamps.popleft()
            if in_steady:
                latencies.append(end - queued_at)
        if in_steady:
            steady_events += len(batch)
            steady_wall += end - start

    wall_start = _stamp()
    for tick in range(config.ticks):
        now = tick * config.tick_seconds
        surge = 1.0 if fault_hook is None else fault_hook.surge_factor(now)
        arrivals = traffic.batch(int(config.arrivals_per_tick * surge), now)
        offered += len(arrivals)
        queued_at = _stamp()
        admitted = queue.offer_all(arrivals)
        offer_stamps.extend([queued_at] * admitted)
        pump(now, in_steady=tick >= config.warmup_ticks)
    # Drain the backlog so every admitted envelope is accounted for.
    while queue.depth:
        now += config.tick_seconds
        pump(now, in_steady=True)
    wall_seconds = _stamp() - wall_start

    p99 = float(np.percentile(latencies, 99)) if latencies else 0.0
    return SoakReport(
        ticks=config.ticks,
        offered=offered,
        admitted=queue.admitted,
        shed=queue.shed,
        drained=queue.admitted - queue.depth,
        accepted=server.accepted_envelopes,
        rejected=server.rejected_envelopes,
        duplicates=server.duplicates_suppressed,
        stale=server.opinions_stale,
        max_queue_depth=queue.high_watermark,
        shed_engaged=queue.shed > 0,
        steady_events_per_sec=(steady_events / steady_wall) if steady_wall else 0.0,
        p99_latency_ms=p99 * 1000.0,
        wall_seconds=wall_seconds,
    )
