"""``repro.ingest`` — the million-user intake front end.

Three pieces, composable but independent:

* :mod:`repro.ingest.columnar` — :func:`ingest_all`, the batched
  decode/validate/dedup/dispatch kernel.  Byte-identical to per-record
  :meth:`RSPServer.receive_all` (reports, counters, telemetry exports,
  WAL bytes) at a fraction of the per-envelope overhead; works against
  both the monolith and the sharded deployment.
* :mod:`repro.ingest.queue` — :class:`BoundedIntakeQueue`, admission
  control with deterministic shed-before-journal load-shedding and
  ``rsp.ingest.*`` telemetry.
* :mod:`repro.ingest.loadgen` / :mod:`repro.ingest.soak` — Zipf-shaped
  synthetic wire traffic at million-user scale and the sustained-traffic
  soak harness that measures steady-state events/sec and p99 intake
  latency over it.

This is harness-facing front-end code: it sits *in front of* the service
layer (it may import :mod:`repro.service` and :mod:`repro.scale`, never
the other way around) and it never imports :mod:`repro.faults` — overload
scenarios come in through the same duck-typed ``fault_hook`` seam the
servers use.  See ``docs/SCALING.md`` (ingest path) and
``docs/OBSERVABILITY.md`` (metric catalog).
"""

from __future__ import annotations

from repro.ingest.columnar import ingest_all
from repro.ingest.loadgen import SyntheticTraffic, WorkloadConfig, synthetic_catalog
from repro.ingest.queue import BoundedIntakeQueue
from repro.ingest.soak import SoakConfig, SoakReport, run_soak

__all__ = [
    "BoundedIntakeQueue",
    "SoakConfig",
    "SoakReport",
    "SyntheticTraffic",
    "WorkloadConfig",
    "ingest_all",
    "run_soak",
    "synthetic_catalog",
]
