"""The batched intake front end: whole-batch decode, dedup, dispatch.

:func:`ingest_all` is a drop-in replacement for
:meth:`repro.service.server.RSPServer.receive_all` /
:meth:`repro.scale.server.ShardedRSPServer.receive_batch` that processes
the same deliveries **byte-identically** — same accept/reject/duplicate
classification for every envelope, same store mutations in the same
order, same WAL frames with the same global sequence numbers, same
telemetry export — while amortizing everything per-record intake pays per
envelope:

* attribute and method lookups are hoisted out of the loop (the columnar
  idiom of :mod:`repro.scale.kernel`, applied to intake);
* record-kind dispatch is memoized per concrete class instead of running
  two ``isinstance`` checks per record;
* telemetry is accumulated in plain locals and emitted once per batch —
  counters and histogram state are commutative integer arithmetic
  (:mod:`repro.telemetry.registry`), so batch-aggregated emission is
  export-identical to per-record emission as long as the totals match,
  and instruments are only touched when their total is non-zero (exactly
  the instruments per-record intake would have created).

The durability contract is untouched: accepted mutations are journaled
through the server's installed ``journal`` *before* the acceptance commit
(WAL-before-ack), in the same per-record order as the baseline path, and
the batch boundary group-commits with ``sync_to_disk``.  Fault hooks are
also honoured call-for-call — ``server_down`` has per-call side effects
inside an outage window, so the batched path probes it once per delivery
whenever a hook is installed.

Server counters and batched telemetry are committed in a ``finally``
block: a journal failure mid-batch must propagate (the process dies
rather than acknowledge unlogged state), but everything processed before
the failing record is already store-mutated exactly as the per-record
path would have left it — the flush keeps the counters telling the same
story.
"""

from __future__ import annotations

from repro.core.aggregation import OpinionUpload
from repro.privacy.history_store import (
    HistoryStore,
    InteractionHistory,
    InteractionUpload,
    StoredRecord,
)
from repro.telemetry.catalog import (
    INGEST_LAG_BUCKETS,
    INTAKE_BATCH_BUCKETS,
    SHARD_BATCH_BUCKETS,
)
from repro.telemetry.registry import DEPLOYMENT

#: Record-kind memo shared across batches: concrete class -> "interaction",
#: "opinion", or None (malformed).  Keyed on the class object, so
#: subclasses resolve through one ``isinstance`` pass on first sighting —
#: the same predicate order the per-record path applies to every envelope.
_KIND_MEMO: dict[type, str | None] = {}

#: Distinguishes "class not yet memoized" from the memoized ``None``
#: (malformed) entry in the hot loops' direct memo probes.
_UNSEEN = object()


def _kind_of(record) -> str | None:
    cls = record.__class__
    try:
        return _KIND_MEMO[cls]
    except KeyError:
        if isinstance(record, InteractionUpload):
            kind = "interaction"
        elif isinstance(record, OpinionUpload):
            kind = "opinion"
        else:
            kind = None
        _KIND_MEMO[cls] = kind
        return kind


class _BatchTally:
    """Local accumulators for one batch, flushed once at the end."""

    __slots__ = (
        "accepted_interactions",
        "accepted_opinions",
        "duplicates",
        "outage_dropped",
        "stale",
        "mismatches",
        "rejected",
        "lags",
    )

    def __init__(self) -> None:
        self.accepted_interactions = 0
        self.accepted_opinions = 0
        self.duplicates = 0
        self.outage_dropped = 0
        self.stale = 0
        self.mismatches = 0
        self.rejected: dict[str, int] = {}
        self.lags: list[float] = []

    @property
    def accepted(self) -> int:
        return self.accepted_interactions + self.accepted_opinions

    @property
    def n_rejected(self) -> int:
        return sum(self.rejected.values())

    def flush(self, server, telemetry) -> None:
        """Commit the tally to the server counters and the telemetry sink.

        Emission is guarded per instrument: an instrument the per-record
        path never touched must not appear in the export with a zero
        value, or the batched export would stop being byte-identical.
        """
        server.accepted_envelopes += self.accepted
        server.rejected_envelopes += self.n_rejected
        server.duplicates_suppressed += self.duplicates
        server.dropped_by_outage += self.outage_dropped
        server.opinions_stale += self.stale
        server.history_mismatches += self.mismatches
        inc = telemetry.inc
        if self.accepted_interactions:
            inc("rsp.envelopes.accepted", self.accepted_interactions, record="interaction")
        if self.accepted_opinions:
            inc("rsp.envelopes.accepted", self.accepted_opinions, record="opinion")
        for reason, count in self.rejected.items():
            inc("rsp.envelopes.rejected", count, reason=reason)
        if self.duplicates:
            inc("rsp.envelopes.duplicate", self.duplicates)
        if self.outage_dropped:
            inc("rsp.envelopes.outage_dropped", self.outage_dropped)
        if self.stale:
            inc("rsp.opinions.stale", self.stale)
        if self.lags:
            telemetry.observe_many(
                "rsp.ingest_lag", self.lags, buckets=INGEST_LAG_BUCKETS
            )


def _inline_tables(store: HistoryStore):
    """The store's internal maps, when appends can be inlined.

    The server-side intake configuration builds its :class:`HistoryStore`
    with no redeemer (tokens are checked at the envelope layer) and no
    per-history fold bound — in that configuration ``append`` reduces to
    two dict operations and a record append, which the batch loop inlines
    to fuse the ``bound_entity`` lookup with the write (one dict probe
    per record instead of two, no call overhead).  Any other store
    configuration returns ``None`` and takes the ``append`` method, so
    semantics never fork.
    """
    if store._redeemer is None and store.max_records_per_history is None:
        return store._histories, store._by_entity
    return None


def ingest_all(server, deliveries, now: float | None = None) -> int:
    """Batched intake against either server deployment.

    Dispatches on the duck-typed deployment shape (the sharded server
    carries ``shards``), exactly like the drivers in
    :mod:`repro.orchestration.epochs` do — this module imports neither
    server class.  Returns the number of accepted envelopes, like
    ``receive_all``.
    """
    if getattr(server, "shards", None) is not None:
        return _ingest_sharded(server, deliveries, now)
    return _ingest_monolith(server, deliveries, now)


def _ingest_monolith(server, deliveries, now: float | None) -> int:
    telemetry = server.telemetry
    telemetry.observe(
        "rsp.intake.batch", len(deliveries), buckets=INTAKE_BATCH_BUCKETS
    )
    hook = server.fault_hook
    journal = server.journal
    require_tokens = server.require_tokens
    if (
        hook is None
        and journal is None
        and not require_tokens
        and _inline_tables(server.history_store) is not None
    ):
        # The common service configuration (no fault hook, envelope-layer
        # tokens off, durability detached, inline-appendable store) takes
        # a lean loop with the per-record no-op branches stripped.
        return _ingest_monolith_lean(server, deliveries)
    redeem = server._redeemer.redeem
    seen = server._seen_nonces
    seen_add = seen.add
    catalog = server.catalog
    store = server.history_store
    store_append = store.append
    bound_entity = store.bound_entity
    tables = _inline_tables(store)
    histories_get = None if tables is None else tables[0].get
    opinions = server._opinions
    opinions_get = opinions.get
    # ``mark_dirty`` is a single set-add (repro.service.incremental); the
    # hot loop binds the add directly.
    mark_dirty = server._engine._dirty.add
    note_opinion = server._engine.note_opinion
    kind_memo = _KIND_MEMO
    kind_of = _kind_of
    stored_record = StoredRecord

    tally = _BatchTally()
    rejected = tally.rejected
    lag = tally.lags.append
    # Hot counters live in locals; the ``finally`` below commits them to
    # the tally (and the tally to the server) even when a journal failure
    # aborts the loop mid-batch.
    outage_dropped = duplicates = stale = mismatches = 0
    accepted_interactions = accepted_opinions = 0
    try:
        for delivery in deliveries:
            envelope = delivery.payload
            arrival = delivery.arrival_time
            if hook is not None and hook.server_down(
                arrival if now is None else now
            ):
                outage_dropped += 1
                continue
            # try/except over getattr-with-default: attribute access is
            # free when it hits (the wire Envelope always carries nonce),
            # and the exception path only fires for foreign payloads.
            try:
                nonce = envelope.nonce
            except AttributeError:
                nonce = None
            if require_tokens:
                token = envelope.token
                if token is None or not redeem(token):
                    # Token failure on a seen nonce is a network-level
                    # duplicate of the accepted copy, not a fraud bounce
                    # (same nuance as RSPServer.receive).
                    if nonce is not None and nonce in seen:
                        duplicates += 1
                    else:
                        rejected["token"] = rejected.get("token", 0) + 1
                    continue
            if nonce is not None and nonce in seen:
                duplicates += 1
                continue
            record = envelope.record
            try:
                kind = kind_memo[record.__class__]
            except KeyError:
                kind = kind_of(record)
            try:
                if kind == "interaction":
                    if record.entity_id not in catalog:
                        rejected["unknown-entity"] = (
                            rejected.get("unknown-entity", 0) + 1
                        )
                        continue
                    if histories_get is not None:
                        # Fused probe: the mismatch check and the append
                        # share one dict lookup (bound_entity + append
                        # would probe the same map twice).
                        history = histories_get(record.history_id)
                        if history is None:
                            history = InteractionHistory(
                                history_id=record.history_id,
                                entity_id=record.entity_id,
                            )
                            tables[0][record.history_id] = history
                            tables[1].setdefault(record.entity_id, []).append(
                                history
                            )
                        elif history.entity_id != record.entity_id:
                            mismatches += 1
                            rejected["history-mismatch"] = (
                                rejected.get("history-mismatch", 0) + 1
                            )
                            continue
                        history.records.append(stored_record(record, arrival))
                        stored = True
                    else:
                        bound = bound_entity(record.history_id)
                        if bound is not None and bound != record.entity_id:
                            mismatches += 1
                            rejected["history-mismatch"] = (
                                rejected.get("history-mismatch", 0) + 1
                            )
                            continue
                        stored = store_append(record, arrival_time=arrival)
                    if stored:
                        mark_dirty(record.entity_id)
                elif kind == "opinion":
                    if record.entity_id not in catalog:
                        rejected["unknown-entity"] = (
                            rejected.get("unknown-entity", 0) + 1
                        )
                        continue
                    existing = opinions_get(record.history_id)
                    if existing is None or record.seq > existing.seq:
                        opinions[record.history_id] = record
                        if histories_get is not None:
                            owner_history = histories_get(record.history_id)
                            owner = (
                                None
                                if owner_history is None
                                else owner_history.entity_id
                            )
                        else:
                            owner = bound_entity(record.history_id)
                        note_opinion(existing, record, owner=owner)
                    else:
                        stale += 1
                    stored = True
                else:
                    rejected["malformed"] = rejected.get("malformed", 0) + 1
                    continue
            except Exception:
                # Store dispatch blew up: nothing durably written, so
                # nothing may be marked accepted (mirrors RSPServer).
                rejected["store-error"] = rejected.get("store-error", 0) + 1
                continue
            if stored:
                # WAL-before-ack, in per-record order — global WAL seq
                # assignment must match the baseline path byte for byte.
                if journal is not None:
                    token_id = (
                        envelope.token.token_id
                        if require_tokens and envelope.token is not None
                        else None
                    )
                    if kind == "interaction":
                        journal.log_interaction(record, arrival, nonce, token_id)
                    else:
                        journal.log_opinion(record, nonce, token_id)
                if nonce is not None:
                    seen_add(nonce)
                if kind == "interaction":
                    accepted_interactions += 1
                    lag(arrival - record.event_time)
                else:
                    accepted_opinions += 1
            else:
                rejected["unstored"] = rejected.get("unstored", 0) + 1
    finally:
        tally.outage_dropped = outage_dropped
        tally.duplicates = duplicates
        tally.stale = stale
        tally.mismatches = mismatches
        tally.accepted_interactions = accepted_interactions
        tally.accepted_opinions = accepted_opinions
        tally.flush(server, telemetry)
    if journal is not None:
        # Group commit at the batch boundary (see RSPServer.receive_all).
        journal.sync_to_disk()
    return tally.accepted


def _ingest_monolith_lean(server, deliveries) -> int:
    """The full monolith loop minus the branches its caller proved dead.

    Semantically identical to :func:`_ingest_monolith` when there is no
    fault hook (so ``now`` is never consulted), no journal (nothing to
    log or group-commit), tokens are off, and the store is
    inline-appendable.  Every classification branch and counter is the
    same; only the per-record probes of those four dead configurations
    are gone.
    """
    telemetry = server.telemetry
    seen = server._seen_nonces
    seen_add = seen.add
    catalog = server.catalog
    store = server.history_store
    tables = _inline_tables(store)
    histories, by_entity = tables
    histories_get = histories.get
    opinions = server._opinions
    opinions_get = opinions.get
    mark_dirty = server._engine._dirty.add
    note_opinion = server._engine.note_opinion
    kind_memo = _KIND_MEMO
    kind_of = _kind_of
    stored_record = StoredRecord

    tally = _BatchTally()
    rejected = tally.rejected
    lag = tally.lags.append
    duplicates = stale = mismatches = 0
    accepted_interactions = accepted_opinions = 0
    try:
        for delivery in deliveries:
            envelope = delivery.payload
            arrival = delivery.arrival_time
            try:
                nonce = envelope.nonce
            except AttributeError:
                nonce = None
            if nonce is not None and nonce in seen:
                duplicates += 1
                continue
            record = envelope.record
            try:
                kind = kind_memo[record.__class__]
            except KeyError:
                kind = kind_of(record)
            try:
                if kind == "interaction":
                    if record.entity_id not in catalog:
                        rejected["unknown-entity"] = (
                            rejected.get("unknown-entity", 0) + 1
                        )
                        continue
                    history = histories_get(record.history_id)
                    if history is None:
                        history = InteractionHistory(
                            history_id=record.history_id,
                            entity_id=record.entity_id,
                        )
                        histories[record.history_id] = history
                        by_entity.setdefault(record.entity_id, []).append(
                            history
                        )
                    elif history.entity_id != record.entity_id:
                        mismatches += 1
                        rejected["history-mismatch"] = (
                            rejected.get("history-mismatch", 0) + 1
                        )
                        continue
                    history.records.append(stored_record(record, arrival))
                    mark_dirty(record.entity_id)
                    if nonce is not None:
                        seen_add(nonce)
                    accepted_interactions += 1
                    lag(arrival - record.event_time)
                elif kind == "opinion":
                    if record.entity_id not in catalog:
                        rejected["unknown-entity"] = (
                            rejected.get("unknown-entity", 0) + 1
                        )
                        continue
                    existing = opinions_get(record.history_id)
                    if existing is None or record.seq > existing.seq:
                        opinions[record.history_id] = record
                        owner_history = histories_get(record.history_id)
                        note_opinion(
                            existing,
                            record,
                            owner=(
                                None
                                if owner_history is None
                                else owner_history.entity_id
                            ),
                        )
                    else:
                        stale += 1
                    if nonce is not None:
                        seen_add(nonce)
                    accepted_opinions += 1
                else:
                    rejected["malformed"] = rejected.get("malformed", 0) + 1
            except Exception:
                rejected["store-error"] = rejected.get("store-error", 0) + 1
    finally:
        tally.duplicates = duplicates
        tally.stale = stale
        tally.mismatches = mismatches
        tally.accepted_interactions = accepted_interactions
        tally.accepted_opinions = accepted_opinions
        tally.flush(server, telemetry)
    return tally.accepted


def _ingest_sharded(server, deliveries, now: float | None) -> int:
    telemetry = server.telemetry
    telemetry.observe(
        "rsp.intake.batch", len(deliveries), buckets=INTAKE_BATCH_BUCKETS
    )
    router = server.router
    shard_of = router.shard_of
    shard_of_bytes = router.shard_of_bytes
    shards = server.shards
    nonce_buckets = server._nonce_buckets
    hook = server.fault_hook
    journal = server.journal
    require_tokens = server.require_tokens
    redeem = server._redeemer.redeem
    catalog = server.catalog
    note_opinion = server._engine.note_opinion
    kind_of = _kind_of
    inline = [_inline_tables(shard.store) for shard in shards]

    # Route once per envelope and group per shard, mirroring
    # receive_batch: within a shard, delivery order is preserved; a
    # ``None`` route (no string history_id) sorts into shard 0 but leaves
    # the store dispatch to re-derive — and fail — like the baseline.
    groups: list[list] = [[] for _ in range(router.n_shards)]
    for delivery in deliveries:
        key = getattr(delivery.payload.record, "history_id", None)
        route = shard_of(key) if isinstance(key, str) else None
        groups[0 if route is None else route].append((delivery, route))

    tally = _BatchTally()
    rejected = tally.rejected
    lag = tally.lags.append
    try:
        for shard_index, group in enumerate(groups):
            if group:
                telemetry.observe(
                    "rsp.shard.batch",
                    len(group),
                    buckets=SHARD_BATCH_BUCKETS,
                    scope=DEPLOYMENT,
                    shard=shard_index,
                )
            for delivery, route in group:
                envelope = delivery.payload
                if hook is not None and hook.server_down(
                    delivery.arrival_time if now is None else now
                ):
                    tally.outage_dropped += 1
                    continue
                nonce = getattr(envelope, "nonce", None)
                nonce_bucket = (
                    None if nonce is None else nonce_buckets[shard_of_bytes(nonce)]
                )
                if require_tokens:
                    token = envelope.token
                    if token is None or not redeem(token):
                        if nonce_bucket is not None and nonce in nonce_bucket:
                            tally.duplicates += 1
                        else:
                            rejected["token"] = rejected.get("token", 0) + 1
                        continue
                if nonce_bucket is not None and nonce in nonce_bucket:
                    tally.duplicates += 1
                    continue
                record = envelope.record
                kind = kind_of(record)
                try:
                    if kind == "interaction":
                        if record.entity_id not in catalog:
                            rejected["unknown-entity"] = (
                                rejected.get("unknown-entity", 0) + 1
                            )
                            continue
                        shard_index = (
                            shard_of(record.history_id) if route is None else route
                        )
                        shard = shards[shard_index]
                        tables = inline[shard_index]
                        if tables is not None:
                            history = tables[0].get(record.history_id)
                            if history is None:
                                history = InteractionHistory(
                                    history_id=record.history_id,
                                    entity_id=record.entity_id,
                                )
                                tables[0][record.history_id] = history
                                tables[1].setdefault(record.entity_id, []).append(
                                    history
                                )
                            elif history.entity_id != record.entity_id:
                                tally.mismatches += 1
                                rejected["history-mismatch"] = (
                                    rejected.get("history-mismatch", 0) + 1
                                )
                                continue
                            history.records.append(
                                StoredRecord(
                                    upload=record,
                                    arrival_time=delivery.arrival_time,
                                )
                            )
                            stored = True
                        else:
                            bound = shard.store.bound_entity(record.history_id)
                            if bound is not None and bound != record.entity_id:
                                tally.mismatches += 1
                                rejected["history-mismatch"] = (
                                    rejected.get("history-mismatch", 0) + 1
                                )
                                continue
                            stored = shard.store.append(
                                record, arrival_time=delivery.arrival_time
                            )
                        if stored:
                            shard.store_version += 1
                            shard.version += 1
                            shard.dirty_entities.add(record.entity_id)
                    elif kind == "opinion":
                        if record.entity_id not in catalog:
                            rejected["unknown-entity"] = (
                                rejected.get("unknown-entity", 0) + 1
                            )
                            continue
                        shard_index = (
                            shard_of(record.history_id) if route is None else route
                        )
                        shard = shards[shard_index]
                        existing = shard.opinions.get(record.history_id)
                        if existing is None or record.seq > existing.seq:
                            shard.opinions[record.history_id] = record
                            shard.version += 1
                            tables = inline[shard_index]
                            if tables is not None:
                                owner_history = tables[0].get(record.history_id)
                                owner = (
                                    None
                                    if owner_history is None
                                    else owner_history.entity_id
                                )
                            else:
                                owner = shard.store.bound_entity(record.history_id)
                            note_opinion(existing, record, owner=owner)
                        else:
                            tally.stale += 1
                        stored = True
                    else:
                        rejected["malformed"] = rejected.get("malformed", 0) + 1
                        continue
                except Exception:
                    rejected["store-error"] = rejected.get("store-error", 0) + 1
                    continue
                if stored:
                    if journal is not None:
                        token_id = (
                            envelope.token.token_id
                            if require_tokens and envelope.token is not None
                            else None
                        )
                        if kind == "interaction":
                            journal.log_interaction(
                                record, delivery.arrival_time, nonce, token_id
                            )
                        else:
                            journal.log_opinion(record, nonce, token_id)
                    if nonce_bucket is not None:
                        nonce_bucket.add(nonce)
                    if kind == "interaction":
                        tally.accepted_interactions += 1
                        lag(delivery.arrival_time - record.event_time)
                    else:
                        tally.accepted_opinions += 1
                else:
                    rejected["unstored"] = rejected.get("unstored", 0) + 1
    finally:
        tally.flush(server, telemetry)
    if journal is not None:
        journal.sync_to_disk()
    return tally.accepted
