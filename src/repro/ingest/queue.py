"""Admission control in front of intake: a bounded queue that sheds.

The paper's repository must absorb opinion streams from millions of
users, and offered load is burstier than any single server's drain rate —
so the intake path needs an explicit buffer with an explicit policy for
the moment it fills.  :class:`BoundedIntakeQueue` is that buffer:

* **Bounded.**  ``capacity`` envelopes, FIFO.  Depth never exceeds the
  bound, so memory under overload is a constant, not a function of the
  attack.
* **Deterministic load-shedding.**  An envelope offered to a full queue
  is shed immediately — newest-arrival-drop, decided purely by the queue
  depth at offer time, never by randomness or timing.  Two runs offered
  the same sequence with the same drain pacing shed exactly the same
  envelopes.
* **Shed-before-journal.**  A shed envelope never reaches the server, so
  it can never be journaled, acked, or counted as accepted — the
  exactly-one-of {acked-and-journaled, shed-with-counter} invariant holds
  by construction (``tests/ingest/test_backpressure.py`` proves it end to
  end).  The fire-and-forget anonymous channel means the sender learns
  nothing either way; bounded client retransmission is what recovers shed
  records, exactly as it recovers outage losses.

Counters (``rsp.ingest.*``, all label values inside the closed vocabulary
of :mod:`repro.telemetry.labels`):

* ``rsp.ingest.admitted`` — envelopes accepted into the queue;
* ``rsp.ingest.shed`` ``{reason=capacity}`` — envelopes dropped at the
  full queue;
* ``rsp.ingest.drain`` — histogram of envelopes handed to the server per
  drain call (AGGREGATE: a pure function of offered load and drain
  pacing);
* ``rsp.ingest.queue_depth`` — gauge of the depth after each
  offer/drain (DEPLOYMENT scope: an operational quantity of one concrete
  deployment, excluded from the invariant digest).
"""

from __future__ import annotations

from collections import deque

from repro.telemetry import NULL, Telemetry
from repro.telemetry.catalog import INGEST_DRAIN_BUCKETS
from repro.telemetry.registry import DEPLOYMENT


class BoundedIntakeQueue:
    """FIFO intake buffer with capacity-triggered deterministic shedding."""

    def __init__(self, capacity: int, telemetry: Telemetry = NULL) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = int(capacity)
        self.telemetry = telemetry
        self._entries: deque = deque()
        #: Envelopes accepted into the queue since construction.
        self.admitted = 0
        #: Envelopes shed at the full queue since construction.
        self.shed = 0
        #: Deepest the queue has ever been.
        self.high_watermark = 0

    @property
    def depth(self) -> int:
        return len(self._entries)

    def offer(self, delivery) -> bool:
        """Admit one envelope, or shed it if the queue is full."""
        return self.offer_all([delivery]) == 1

    def offer_all(self, deliveries) -> int:
        """Admit a burst in order; shed whatever the bound refuses.

        Returns the number admitted.  Admission is prefix-greedy: the
        first ``capacity - depth`` envelopes get in, the rest are shed —
        the deterministic newest-arrival-drop policy.
        """
        entries = self._entries
        room = self.capacity - len(entries)
        admitted = 0
        shed = 0
        for delivery in deliveries:
            if admitted < room:
                entries.append(delivery)
                admitted += 1
            else:
                shed += 1
        self.admitted += admitted
        self.shed += shed
        depth = len(entries)
        if depth > self.high_watermark:
            self.high_watermark = depth
        telemetry = self.telemetry
        if admitted:
            telemetry.inc("rsp.ingest.admitted", admitted)
        if shed:
            telemetry.inc("rsp.ingest.shed", shed, reason="capacity")
        telemetry.set_gauge("rsp.ingest.queue_depth", depth, scope=DEPLOYMENT)
        return admitted

    def drain(self, max_batch: int | None = None) -> list:
        """Pop up to ``max_batch`` envelopes (all, when ``None``) in FIFO order."""
        entries = self._entries
        take = len(entries) if max_batch is None else min(max_batch, len(entries))
        batch = [entries.popleft() for _ in range(take)]
        telemetry = self.telemetry
        if batch:
            telemetry.observe(
                "rsp.ingest.drain", len(batch), buckets=INGEST_DRAIN_BUCKETS
            )
            # An empty drain leaves the depth exactly where the last write
            # put it; re-setting the gauge would only churn DEPLOYMENT
            # gauge versions in idle soak loops.
            telemetry.set_gauge(
                "rsp.ingest.queue_depth", len(entries), scope=DEPLOYMENT
            )
        return batch
