"""The fault-plan interpreter: deterministic decisions at harness hook points.

Production components expose a passive ``fault_hook`` attribute and call a
narrow, duck-typed method on it when one is installed:

* :class:`repro.privacy.anonymity.AnonymityNetwork` calls
  :meth:`FaultInjector.network_fates` per submission — the hook answers
  with the list of effective submit times (empty = the message is lost,
  one = normal or delayed, two = the network re-delivered a copy);
* :class:`repro.privacy.tokens.TokenIssuer` calls
  :meth:`FaultInjector.issuer_down` before signing;
* :class:`repro.service.server.RSPServer` calls
  :meth:`FaultInjector.server_down` before processing a delivery.

All randomness flows through :func:`repro.util.rng.make_rng` with the
plan's seed, so the same plan replayed against the same workload makes the
same decisions in the same order.
"""

from __future__ import annotations

from repro.faults.plan import ClientCrash, FaultPlan, FaultReport, PrimaryCrash
from repro.telemetry import NULL, Telemetry
from repro.util.rng import make_rng


class FaultInjector:
    """Interprets one :class:`FaultPlan`; keeps counters of what it did."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = make_rng(plan.seed, "faults/injector")
        self.messages_dropped = 0
        self.messages_delayed = 0
        self.messages_duplicated = 0
        self.envelopes_lost_to_outage = 0
        self.issuance_refusals = 0
        self.crashes_triggered = 0
        self.shipments_deferred = 0
        self.primary_crashes_triggered = 0
        self.surges_applied = 0
        #: Aggregate-only sink; counts injected events by kind.
        self.telemetry: Telemetry = NULL

    # ------------------------------------------------------------- network

    def network_fates(self, submit_time: float) -> list[float]:
        """Effective submit times for one network submission.

        ``[]`` means the message is lost; one entry is normal (possibly
        delayed) delivery; additional entries are network-level duplicates.
        """
        for drop in self.plan.drops:
            if drop.window.contains(submit_time):
                if float(self._rng.random()) < drop.rate:
                    self.messages_dropped += 1
                    self.telemetry.inc("faults.injected", kind="drop")
                    return []
        extra = 0.0
        for delay in self.plan.delays:
            if delay.window.contains(submit_time) and delay.max_extra > 0:
                extra += float(self._rng.uniform(0.0, delay.max_extra))
        if extra > 0:
            self.messages_delayed += 1
            self.telemetry.inc("faults.injected", kind="delay")
        fates = [submit_time + extra]
        for dup in self.plan.duplicates:
            if dup.window.contains(submit_time):
                if float(self._rng.random()) < dup.rate:
                    offset = (
                        float(self._rng.uniform(0.0, dup.max_offset))
                        if dup.max_offset > 0
                        else 0.0
                    )
                    fates.append(submit_time + extra + offset)
                    self.messages_duplicated += 1
                    self.telemetry.inc("faults.injected", kind="duplicate")
        return fates

    # ------------------------------------------------------------- outages

    def server_down(self, now: float) -> bool:
        """Is the upload endpoint down at ``now``?  (Counts each loss.)"""
        for outage in self.plan.server_outages:
            if outage.window.contains(now):
                self.envelopes_lost_to_outage += 1
                self.telemetry.inc("faults.injected", kind="server-outage")
                return True
        return False

    def server_down_at(self, now: float) -> bool:
        """Side-effect-free outage probe (for schedulers, not per-envelope)."""
        return any(o.window.contains(now) for o in self.plan.server_outages)

    def issuer_down(self, now: float) -> bool:
        """Is the token issuer refusing issuance at ``now``?"""
        for outage in self.plan.issuer_outages:
            if outage.window.contains(now):
                self.issuance_refusals += 1
                self.telemetry.inc("faults.injected", kind="issuer-outage")
                return True
        return False

    def surge_factor(self, now: float) -> float:
        """Offered-load multiplier at ``now`` (1.0 outside any surge).

        Overlapping surges compound multiplicatively.  Counts each tick a
        surge actually scaled.
        """
        factor = 1.0
        for surge in self.plan.surges:
            if surge.window.contains(now):
                factor *= surge.multiplier
        if factor != 1.0:
            self.surges_applied += 1
            self.telemetry.inc("faults.injected", kind="surge")
        return factor

    def replica_down(self, now: float) -> bool:
        """Is the log-shipping channel down at ``now``?  Counts deferrals."""
        for outage in self.plan.replica_outages:
            if outage.window.contains(now):
                self.shipments_deferred += 1
                self.telemetry.inc("faults.injected", kind="replica-outage")
                return True
        return False

    # ----------------------------------------------------- crashes & clocks

    def crashes_in(self, start: float, end: float) -> list[ClientCrash]:
        """Crash points scheduled in the half-open interval ``[start, end)``."""
        return [c for c in self.plan.crashes if start <= c.time < end]

    def note_crash(self) -> None:
        self.crashes_triggered += 1
        self.telemetry.inc("faults.injected", kind="crash")

    def primary_crashes_in(self, start: float, end: float) -> list[PrimaryCrash]:
        """Primary-crash points scheduled in ``[start, end)``."""
        return [c for c in self.plan.primary_crashes if start <= c.time < end]

    def note_primary_crash(self) -> None:
        self.primary_crashes_triggered += 1
        self.telemetry.inc("faults.injected", kind="primary-crash")

    def skew_for(self, device_id: str) -> float:
        """Total clock offset applying to one device."""
        return sum(s.offset for s in self.plan.skews if s.applies_to(device_id))

    # -------------------------------------------------------------- report

    def report(self) -> FaultReport:
        return FaultReport(
            messages_dropped=self.messages_dropped,
            messages_delayed=self.messages_delayed,
            messages_duplicated=self.messages_duplicated,
            envelopes_lost_to_outage=self.envelopes_lost_to_outage,
            issuance_refusals=self.issuance_refusals,
            crashes_triggered=self.crashes_triggered,
            shipments_deferred=self.shipments_deferred,
            primary_crashes_triggered=self.primary_crashes_triggered,
            surges_applied=self.surges_applied,
        )
