"""``repro.faults`` — deterministic fault injection for the upload pipeline.

The paper's anonymity design makes the upload path fire-and-forget *by
construction* (an acknowledgement would link an upload to its device), so
every real failure — message loss, server outage, issuer downtime, client
crash — silently erases opinions unless the pipeline is built to survive
it.  This package scripts those failures deterministically so the survival
machinery (nonce dedup, bounded retransmission, durable client
checkpoints, issuance backoff) can be tested as a grid of reproducible
scenarios instead of flaky chaos.

Only harness code (this package, :mod:`repro.orchestration`, the CLI, and
tests) may import it; the ``faults-only-in-harness`` lint rule keeps
injection out of production modules.  See ``docs/RELIABILITY.md``.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ClientCrash,
    ClockSkew,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultPlan,
    FaultReport,
    IngestSurge,
    IssuerOutage,
    PrimaryCrash,
    ReplicaOutage,
    ServerOutage,
    WalCrash,
    Window,
    lossy_plan,
    outage_plan,
    overload_plan,
)

__all__ = [
    "ClientCrash",
    "ClockSkew",
    "DelayFault",
    "DropFault",
    "DuplicateFault",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "IngestSurge",
    "IssuerOutage",
    "PrimaryCrash",
    "ReplicaOutage",
    "ServerOutage",
    "WalCrash",
    "Window",
    "lossy_plan",
    "outage_plan",
    "overload_plan",
]
