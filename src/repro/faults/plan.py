"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a pure-data script of everything that goes wrong
during a simulated deployment: network loss/delay/duplication windows,
server and token-issuer outages, client crash points, and per-device
clock skew.  Plans are frozen dataclasses with an explicit ``seed``, so a
plan *is* its reproduction recipe — two runs of the same plan against the
same world produce byte-identical outcomes (the determinism-guard test
pins this down).

Plans never act on their own.  The :class:`repro.faults.injector.FaultInjector`
interprets a plan at the harness's hook points; production modules
(:mod:`repro.privacy.anonymity`, :mod:`repro.privacy.tokens`,
:mod:`repro.service.server`) only ever see an opaque ``fault_hook`` object
and never import this package — ``repro lint`` enforces that with the
``faults-only-in-harness`` rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Window:
    """A half-open simulated-time interval ``[start, end)``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("window end must be after start")

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class DropFault:
    """Messages submitted during ``window`` are lost with probability ``rate``."""

    window: Window
    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("drop rate must lie in [0, 1]")


@dataclass(frozen=True)
class DelayFault:
    """Messages submitted during ``window`` gain up to ``max_extra`` latency."""

    window: Window
    max_extra: float

    def __post_init__(self) -> None:
        if self.max_extra < 0:
            raise ValueError("extra delay must be non-negative")


@dataclass(frozen=True)
class DuplicateFault:
    """The network re-delivers a copy with probability ``rate``.

    The copy is submitted ``<= max_offset`` later — the classic retransmitting
    middlebox / at-least-once queue failure that makes idempotent intake
    mandatory.
    """

    window: Window
    rate: float
    max_offset: float = 3600.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("duplicate rate must lie in [0, 1]")
        if self.max_offset < 0:
            raise ValueError("offset must be non-negative")


@dataclass(frozen=True)
class ServerOutage:
    """The upload endpoint is down: envelopes arriving in ``window`` are lost.

    The channel is fire-and-forget (no ack — an ack would link the upload
    to the device), so the sender never learns about the loss; only bounded
    retransmission recovers these records.
    """

    window: Window


@dataclass(frozen=True)
class IssuerOutage:
    """The token issuer refuses issuance during ``window``.

    Clients see :class:`repro.privacy.tokens.IssuerUnavailable` and retry
    with backoff; envelopes beyond the wallet balance stay queued.
    """

    window: Window


@dataclass(frozen=True)
class ClientCrash:
    """A device dies at ``time`` and restarts from its durable checkpoint.

    ``device_ids`` of ``None`` crashes every client.  Anything not covered
    by :meth:`repro.client.app.RSPClient.checkpoint` — in-memory working
    state — is lost and must be rederivable.
    """

    time: float
    device_ids: frozenset[str] | None = None

    def affects(self, device_id: str) -> bool:
        return self.device_ids is None or device_id in self.device_ids


@dataclass(frozen=True)
class ReplicaOutage:
    """The primary→replica log-shipping channel is down during ``window``.

    Shipments attempted inside the window are deferred whole (log
    shipping is all-or-nothing per batch); replication lag grows until
    the first shipment after the window drains the backlog.  Bounded
    staleness, never loss.
    """

    window: Window


@dataclass(frozen=True)
class PrimaryCrash:
    """The primary RSP process dies at ``time``; the replica takes over.

    ``torn_bytes`` of garbage land on the primary's WAL tail, modelling
    a frame whose write the crash cut short.  The epoch driver promotes
    the replica at the first epoch boundary at or after ``time``, points
    clients at it, and lets the existing retransmission machinery cover
    whatever was in flight.
    """

    time: float
    torn_bytes: int = 0

    def __post_init__(self) -> None:
        if self.torn_bytes < 0:
            raise ValueError("torn_bytes must be non-negative")


@dataclass(frozen=True)
class WalCrash:
    """A crash after exactly ``at_offset`` bytes of WAL were persisted.

    Interpreted by the crash-matrix harness (``tests/durability``): the
    durable directory is truncated to this byte offset and recovery must
    reproduce the uninterrupted run.  Not scheduled by the epoch driver —
    the driver's crash kind is :class:`PrimaryCrash`.
    """

    at_offset: int

    def __post_init__(self) -> None:
        if self.at_offset < 0:
            raise ValueError("at_offset must be non-negative")


@dataclass(frozen=True)
class IngestSurge:
    """Offered load multiplies by ``multiplier`` during ``window``.

    Models a flash crowd / retry storm hitting the intake front end: the
    load generator asks the injector for :meth:`~repro.faults.injector.FaultInjector.surge_factor`
    each tick and scales its arrivals.  Overlapping surges compound.
    The bounded intake queue (:mod:`repro.ingest.queue`) is what turns a
    surge into deterministic load-shedding instead of unbounded memory.
    """

    window: Window
    multiplier: float

    def __post_init__(self) -> None:
        if self.multiplier < 1.0:
            raise ValueError("surge multiplier must be >= 1")


@dataclass(frozen=True)
class ClockSkew:
    """A device's local clock runs ``offset`` seconds from true time.

    ``device_id`` of ``None`` skews every device.  Skew shifts upload
    scheduling and quota windows — exactly the drift a real fleet shows.
    """

    offset: float
    device_id: str | None = None

    def applies_to(self, device_id: str) -> bool:
        return self.device_id is None or self.device_id == device_id


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic script of failures for a whole deployment run."""

    seed: int = 0
    drops: tuple[DropFault, ...] = ()
    delays: tuple[DelayFault, ...] = ()
    duplicates: tuple[DuplicateFault, ...] = ()
    server_outages: tuple[ServerOutage, ...] = ()
    issuer_outages: tuple[IssuerOutage, ...] = ()
    crashes: tuple[ClientCrash, ...] = ()
    skews: tuple[ClockSkew, ...] = ()
    replica_outages: tuple[ReplicaOutage, ...] = ()
    primary_crashes: tuple[PrimaryCrash, ...] = ()
    wal_crashes: tuple[WalCrash, ...] = ()
    surges: tuple[IngestSurge, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (
            self.drops
            or self.delays
            or self.duplicates
            or self.server_outages
            or self.issuer_outages
            or self.crashes
            or self.skews
            or self.replica_outages
            or self.primary_crashes
            or self.wal_crashes
            or self.surges
        )

    def describe(self) -> str:
        """A one-line human summary for CLI / report headers."""
        parts: list[str] = [f"seed={self.seed}"]
        if self.drops:
            parts.append(f"{len(self.drops)} drop window(s)")
        if self.delays:
            parts.append(f"{len(self.delays)} delay window(s)")
        if self.duplicates:
            parts.append(f"{len(self.duplicates)} duplication window(s)")
        if self.server_outages:
            parts.append(f"{len(self.server_outages)} server outage(s)")
        if self.issuer_outages:
            parts.append(f"{len(self.issuer_outages)} issuer outage(s)")
        if self.crashes:
            parts.append(f"{len(self.crashes)} client crash(es)")
        if self.skews:
            parts.append(f"{len(self.skews)} clock skew(s)")
        if self.replica_outages:
            parts.append(f"{len(self.replica_outages)} replica outage(s)")
        if self.primary_crashes:
            parts.append(f"{len(self.primary_crashes)} primary crash(es)")
        if self.wal_crashes:
            parts.append(f"{len(self.wal_crashes)} WAL crash offset(s)")
        if self.surges:
            parts.append(f"{len(self.surges)} ingest surge(s)")
        return "FaultPlan(" + ", ".join(parts) + ")"


# ------------------------------------------------------- plan constructors


def lossy_plan(rate: float, horizon: float, seed: int = 0) -> FaultPlan:
    """Uniform message loss at ``rate`` over the whole horizon."""
    return FaultPlan(seed=seed, drops=(DropFault(Window(0.0, horizon), rate),))


def outage_plan(
    server_window: Window | None = None,
    issuer_window: Window | None = None,
    seed: int = 0,
) -> FaultPlan:
    """Server and/or issuer downtime windows, nothing else."""
    return FaultPlan(
        seed=seed,
        server_outages=(ServerOutage(server_window),) if server_window else (),
        issuer_outages=(IssuerOutage(issuer_window),) if issuer_window else (),
    )


def overload_plan(window: Window, multiplier: float = 4.0, seed: int = 0) -> FaultPlan:
    """A flash crowd: offered load times ``multiplier`` inside ``window``."""
    return FaultPlan(seed=seed, surges=(IngestSurge(window, multiplier),))


@dataclass(frozen=True)
class FaultReport:
    """What an injector actually did — surfaced in epoch reports and tests."""

    messages_dropped: int = 0
    messages_delayed: int = 0
    messages_duplicated: int = 0
    envelopes_lost_to_outage: int = 0
    issuance_refusals: int = 0
    crashes_triggered: int = 0
    shipments_deferred: int = 0
    primary_crashes_triggered: int = 0
    surges_applied: int = 0
    details: tuple[str, ...] = field(default=())
