"""Findings baseline: accepted debt, keyed by stable fingerprints.

The dogfooding contract: a full analyzer pass over ``src/repro`` must be
*clean* — every finding either fixed, suppressed inline with
``# repro: allow[checker-id]``, or recorded here with a one-line
justification.  Fingerprints are line-independent (checker, file,
function, salient detail), so moving code does not churn the baseline.

Staleness is an error, not a shrug: a baseline entry whose fingerprint
no longer matches any produced finding fails the run until the entry is
deleted (``--update-baseline`` does it).  Dead waivers are how real debt
hides.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.checkers import Finding

BASELINE_VERSION = 1
_TODO = "TODO: justify this waiver"


@dataclass
class Baseline:
    path: Path | None = None
    #: fingerprint -> entry dict (checker_id, path, function, justification)
    entries: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path | str | None) -> "Baseline":
        if path is None:
            return cls()
        path = Path(path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            return cls(path=path)
        if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
            raise ValueError(f"unsupported baseline format in {path}")
        entries = {
            entry["fingerprint"]: entry
            for entry in raw.get("findings", [])
            if isinstance(entry, dict) and "fingerprint" in entry
        }
        return cls(path=path, entries=entries)

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[dict]]:
        """Partition into (new, baselined, stale baseline entries)."""
        new: list[Finding] = []
        baselined: list[Finding] = []
        matched: set[str] = set()
        for finding in findings:
            if finding.fingerprint in self.entries:
                matched.add(finding.fingerprint)
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [
            self.entries[fingerprint]
            for fingerprint in sorted(self.entries)
            if fingerprint not in matched
        ]
        return new, baselined, stale

    def updated_with(self, findings: list[Finding]) -> dict:
        """Document accepting exactly the given findings, keeping the
        justification of every entry that survives."""
        records = []
        seen: set[str] = set()
        for finding in sorted(
            findings, key=lambda f: (f.path, f.function, f.checker_id, f.fingerprint)
        ):
            if finding.fingerprint in seen:
                continue
            seen.add(finding.fingerprint)
            previous = self.entries.get(finding.fingerprint, {})
            records.append(
                {
                    "fingerprint": finding.fingerprint,
                    "checker_id": finding.checker_id,
                    "path": finding.path,
                    "function": finding.function,
                    "message": finding.message,
                    "justification": previous.get("justification", _TODO),
                }
            )
        return {"version": BASELINE_VERSION, "findings": records}

    def write(self, document: dict) -> None:
        assert self.path is not None
        self.path.write_text(
            json.dumps(document, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )
