"""Whole-program static analysis for the opinion-repository codebase.

Where :mod:`repro.lint` checks one file at a time, this package builds a
project-wide symbol table and call graph, propagates taint and mutation
summaries across call edges, and runs four interprocedural checkers:

* ``interproc-privacy-taint`` — identity values reaching a publishing
  position through any call chain;
* ``pool-shared-mutation`` — worker-reachable code mutating parent-owned
  module state;
* ``merge-purity`` — side effects inside the commutative merge registry;
* ``determinism-reachability`` — entropy/clock/unordered iteration
  reachable from digest and report entry points.

See ``docs/STATIC_ANALYSIS.md`` for the architecture and the
baseline/suppression workflow.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.checkers import (
    CheckContext,
    Checker,
    DeterminismReachabilityChecker,
    Finding,
    InterprocPrivacyTaintChecker,
    MergePurityChecker,
    PoolSharedMutationChecker,
    default_checkers,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.dataflow import MutationSummaries, ReturnSummaries, TaintPropagator
from repro.analysis.engine import AnalysisResult, WholeProgramAnalyzer
from repro.analysis.facts import ModuleFacts, extract
from repro.analysis.project import ProjectIndex, ResolvedCall
from repro.analysis.reporters import render_json, render_sarif, render_text

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "Baseline",
    "CheckContext",
    "Checker",
    "DeterminismReachabilityChecker",
    "Finding",
    "InterprocPrivacyTaintChecker",
    "MergePurityChecker",
    "ModuleFacts",
    "MutationSummaries",
    "PoolSharedMutationChecker",
    "ProjectIndex",
    "ResolvedCall",
    "ReturnSummaries",
    "TaintPropagator",
    "WholeProgramAnalyzer",
    "default_checkers",
    "extract",
    "render_json",
    "render_sarif",
    "render_text",
]
