"""Interprocedural dataflow over the per-file fact atoms.

Three engines, all operating on :class:`~repro.analysis.project.ProjectIndex`:

* :class:`ReturnSummaries` — bottom-up fixed point answering "which of a
  function's inputs may flow into its return value".  A summary is a set
  of parameter indices plus a set of constant atoms (identity sources,
  project globals, function references) that escape through the return.
* :class:`MutationSummaries` — bottom-up fixed point answering "which
  parameters / project globals may a function mutate, directly or through
  any callee".  Argument atoms are bound to callee parameters at each
  call site, so a helper mutating *its* first argument taints whatever
  the caller passed there.
* :class:`TaintPropagator` — top-down worklist that pushes identity
  taint through call edges.  Each work item is a function plus a map of
  tainted parameters to the source names that tainted them, along with
  the witness call chain; sink facts whose atoms evaluate tainted are
  reported through a callback.

External and unknown callees are conservative everywhere: taint in →
taint out, and an unresolved call's return carries every argument atom.
Sanitizer calls were already cut at extraction time (they produce no
atoms), so blessing a value with ``stable_digest``/``blind`` stops
propagation exactly like it does in the per-file lint rules.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.analysis.facts import Atom, AtomSet, CallSite, FunctionFacts
from repro.analysis.project import ProjectIndex, ResolvedCall

_EMPTY: AtomSet = frozenset()

#: Cap on distinct tainted-parameter contexts explored per function —
#: a safety valve, not a tuning knob; the repo stays far below it.
_MAX_CONTEXTS_PER_FUNCTION = 64

#: External callables returning a *fresh* (shallow-copied) object.  In
#: object-identity mode (mutation analysis) their return aliases nothing:
#: ``out = list(xs); out.append(...)`` does not mutate ``xs``.  In value
#: mode (taint) they still forward their inputs — ``list(user_ids)`` is
#: as identifying as ``user_ids``.
_FRESH_EXTERNALS = frozenset(
    f"builtins.{name}"
    for name in (
        "list", "dict", "set", "tuple", "frozenset", "sorted", "reversed",
        "enumerate", "zip", "map", "filter", "sum", "min", "max", "len",
        "abs", "round", "str", "repr", "bytes", "bytearray", "range",
    )
)
#: Receiver methods returning a fresh object, same reasoning.
_FRESH_METHODS = frozenset({"copy"})

#: Container methods whose return aliases the receiver's *contents* (or
#: the default argument), never the lookup key: ``d.setdefault(k, [])``
#: returns a member of ``d`` or the fresh default — mutating it does not
#: mutate ``k``.
_RECEIVER_ALIASING_METHODS = frozenset({"get", "setdefault", "pop"})


def bind_site_inputs(
    index: ProjectIndex, target: FunctionFacts, resolved: ResolvedCall
) -> dict[int, AtomSet]:
    """Map a call site's argument atoms onto the target's parameters.

    Methods called through a receiver bind the receiver to parameter 0;
    constructors skip ``self`` (the instance is fresh).  ``*args`` /
    ``**kwargs`` spill binds to every parameter — the conservative read.
    """
    site = resolved.site
    params = target.params
    bound: dict[int, set[Atom]] = {}

    def add(idx: int, atoms: AtomSet) -> None:
        if atoms and 0 <= idx < len(params):
            bound.setdefault(idx, set()).update(atoms)

    offset = 0
    if target.is_method:
        if site.recv is not None:
            add(0, site.recv)
            offset = 1
        elif resolved.constructor is not None:
            offset = 1
    for position, atoms in enumerate(site.args):
        add(position + offset, atoms)
    name_to_index = {name: i for i, name in enumerate(params)}
    for name, atoms in site.kwargs.items():
        if name in name_to_index:
            add(name_to_index[name], atoms)
    if site.spill:
        for idx in range(len(params)):
            add(idx, site.spill)
    return {idx: frozenset(atoms) for idx, atoms in bound.items()}


def site_input_atoms(site: CallSite) -> AtomSet:
    """Union of everything flowing into a call, receiver included."""
    merged: set[Atom] = set(site.spill)
    if site.recv:
        merged |= site.recv
    for atoms in site.args:
        merged |= atoms
    for atoms in site.kwargs.values():
        merged |= atoms
    return frozenset(merged)


# ------------------------------------------------------- return summaries


@dataclass
class ReturnSummary:
    params: frozenset[int] = frozenset()
    atoms: AtomSet = _EMPTY  # source / global / func atoms

    def merged_with(self, params: frozenset[int], atoms: AtomSet) -> "ReturnSummary":
        return ReturnSummary(self.params | params, self.atoms | atoms)


class ReturnSummaries:
    """qualname → which inputs may flow to the return value."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.summaries: dict[str, ReturnSummary] = {
            qualname: ReturnSummary() for qualname in index.functions
        }
        self._solve()

    def _solve(self) -> None:
        for _ in range(32):
            changed = False
            for qualname, facts in self.index.functions.items():
                expanded = self.expand(qualname, facts.returns)
                params = frozenset(a[1] for a in expanded if a[0] == "param")
                atoms = frozenset(a for a in expanded if a[0] != "param")
                current = self.summaries[qualname]
                if not (params <= current.params and atoms <= current.atoms):
                    self.summaries[qualname] = current.merged_with(params, atoms)
                    changed = True
            if not changed:
                return

    def expand(
        self, qualname: str, atoms: AtomSet, object_mode: bool = False
    ) -> AtomSet:
        """Eliminate ``("call", s)`` atoms using current summaries.

        ``object_mode=True`` asks about object *identity* rather than
        value content: fresh-constructor returns (``list(xs)``,
        ``xs.copy()``, project-class instantiation) alias nothing.
        """
        out: set[Atom] = set()
        resolved_by_site = {
            r.site.site_id: r for r in self.index.resolved_calls(qualname)
        }
        pending = deque(atoms)
        seen_sites: set[int] = set()
        while pending:
            atom = pending.popleft()
            if atom[0] != "call":
                out.add(atom)
                continue
            if atom[1] in seen_sites:
                continue
            seen_sites.add(atom[1])
            resolved = resolved_by_site.get(atom[1])
            if resolved is None:
                continue
            pending.extend(self.call_return_atoms(qualname, resolved, object_mode))
        return frozenset(out)

    def call_return_atoms(
        self, caller: str, resolved: ResolvedCall, object_mode: bool = False
    ) -> AtomSet:
        """Atoms a call's return value may carry, in the caller's frame."""
        site = resolved.site
        out: set[Atom] = set()
        if resolved.constructor is not None:
            if object_mode:
                return _EMPTY  # a brand-new instance aliases nothing
            # Wrapping semantics: the instance carries its ctor inputs.
            return site_input_atoms(site)
        if object_mode and not resolved.targets:
            if resolved.external in _FRESH_EXTERNALS:
                return _EMPTY
            method = site.callee.get("method")
            if method in _FRESH_METHODS:
                return _EMPTY
            if method in _RECEIVER_ALIASING_METHODS:
                aliased: set[Atom] = set(site.recv or ())
                for atoms in site.args[1:]:  # skip the lookup key
                    aliased |= atoms
                for atoms in site.kwargs.values():
                    aliased |= atoms
                aliased |= site.spill
                return frozenset(aliased)
        matched = False
        for target in resolved.targets:
            facts = self.index.functions.get(target)
            summary = self.summaries.get(target)
            if facts is None or summary is None:
                continue
            matched = True
            out |= summary.atoms
            bound = bind_site_inputs(self.index, facts, resolved)
            for param_index in summary.params:
                out |= bound.get(param_index, _EMPTY)
        if resolved.external is not None or resolved.unknown or not matched:
            out |= site_input_atoms(site)
        return frozenset(out)


# ----------------------------------------------------- mutation summaries


@dataclass
class MutationSummary:
    #: param index → (line, witness callee-or-detail)
    params: dict[int, tuple[int, str]] = field(default_factory=dict)
    #: dotted global → (line, witness callee-or-detail)
    globals: dict[str, tuple[int, str]] = field(default_factory=dict)


class MutationSummaries:
    """qualname → which parameters / project globals it may mutate."""

    def __init__(self, index: ProjectIndex, returns: ReturnSummaries) -> None:
        self.index = index
        self.returns = returns
        self.summaries: dict[str, MutationSummary] = {
            qualname: MutationSummary() for qualname in index.functions
        }
        self._solve()

    def _solve(self) -> None:
        for _ in range(32):
            changed = False
            for qualname, facts in self.index.functions.items():
                changed |= self._update(qualname, facts)
            if not changed:
                return

    def _update(self, qualname: str, facts: FunctionFacts) -> bool:
        summary = self.summaries[qualname]
        changed = False

        def note_param(idx: int, line: int, via: str) -> None:
            nonlocal changed
            if idx not in summary.params:
                summary.params[idx] = (line, via)
                changed = True

        def note_global(dotted: str, line: int, via: str) -> None:
            nonlocal changed
            if dotted not in summary.globals:
                summary.globals[dotted] = (line, via)
                changed = True

        for mutation in facts.mutations:
            expanded = self.returns.expand(qualname, mutation.atoms, object_mode=True)
            detail = f"{mutation.kind}:{mutation.detail}"
            for atom in expanded:
                if atom[0] == "param":
                    note_param(atom[1], mutation.line, detail)
                elif atom[0] == "global" and self.index.config.in_project(atom[1]):
                    note_global(atom[1], mutation.line, detail)
        for resolved in self.index.resolved_calls(qualname):
            line = resolved.site.line
            for target in resolved.targets:
                callee_facts = self.index.functions.get(target)
                callee_summary = self.summaries.get(target)
                if callee_facts is None or callee_summary is None:
                    continue
                # Snapshot: on a recursive call the callee summary *is*
                # this function's summary, which note_* mutates.
                for dotted in list(callee_summary.globals):
                    note_global(dotted, line, target)
                if not callee_summary.params:
                    continue
                bound = bind_site_inputs(self.index, callee_facts, resolved)
                for param_index in list(callee_summary.params):
                    for atom in self.returns.expand(
                        qualname, bound.get(param_index, _EMPTY), object_mode=True
                    ):
                        if atom[0] == "param":
                            note_param(atom[1], line, target)
                        elif atom[0] == "global" and self.index.config.in_project(
                            atom[1]
                        ):
                            note_global(atom[1], line, target)
        return changed


# -------------------------------------------------------- taint worklist


@dataclass(frozen=True)
class TaintContext:
    """One propagation work item: a function entered with these params
    tainted by these source names, along this witness chain."""

    qualname: str
    tainted: tuple[tuple[int, frozenset[str]], ...]  # sorted (param, sources)
    chain: tuple[str, ...]

    def sources_for(self, param_index: int) -> frozenset[str]:
        for index, sources in self.tainted:
            if index == param_index:
                return sources
        return frozenset()


class TaintPropagator:
    """Push identity taint top-down through the call graph.

    ``on_hit(facts, sink, sources, chain)`` fires for every sink fact
    whose atoms evaluate tainted in some context.  Contexts are
    deduplicated on (function, tainted-param map); chains record the
    first witness path that produced each context.
    """

    def __init__(self, index: ProjectIndex, returns: ReturnSummaries) -> None:
        self.index = index
        self.returns = returns

    def run(
        self,
        on_hit: Callable[[FunctionFacts, object, frozenset[str], tuple[str, ...]], None],
        roots: Iterable[str] | None = None,
    ) -> None:
        queue: deque[TaintContext] = deque()
        seen: set[tuple[str, tuple]] = set()
        per_function: dict[str, int] = {}
        for qualname in sorted(
            self.index.functions if roots is None else roots
        ):
            if qualname in self.index.functions:
                queue.append(TaintContext(qualname, (), (qualname,)))
        while queue:
            context = queue.popleft()
            key = (context.qualname, context.tainted)
            if key in seen:
                continue
            seen.add(key)
            count = per_function.get(context.qualname, 0)
            if count >= _MAX_CONTEXTS_PER_FUNCTION:
                continue
            per_function[context.qualname] = count + 1
            self._visit(context, queue, on_hit)

    # ------------------------------------------------------------ visit

    def _visit(
        self,
        context: TaintContext,
        queue: deque,
        on_hit: Callable,
    ) -> None:
        facts = self.index.functions[context.qualname]
        for sink in facts.sinks:
            sources = self._tainted_sources(context, sink.atoms)
            if sources:
                on_hit(facts, sink, sources, context.chain)
        for resolved in self.index.resolved_calls(context.qualname):
            for target in resolved.targets:
                callee = self.index.functions.get(target)
                if callee is None:
                    continue
                bound = bind_site_inputs(self.index, callee, resolved)
                tainted: list[tuple[int, frozenset[str]]] = []
                for param_index, atoms in sorted(bound.items()):
                    sources = self._tainted_sources(context, atoms)
                    if sources:
                        tainted.append((param_index, sources))
                if tainted:
                    queue.append(
                        TaintContext(
                            qualname=target,
                            tainted=tuple(tainted),
                            chain=context.chain + (target,),
                        )
                    )

    def _tainted_sources(self, context: TaintContext, atoms: AtomSet) -> frozenset[str]:
        """Source names that make ``atoms`` tainted in ``context``."""
        sources: set[str] = set()
        for atom in self.returns.expand(context.qualname, atoms):
            if atom[0] == "source":
                sources.add(atom[1])
            elif atom[0] == "param":
                sources |= context.sources_for(atom[1])
        return frozenset(sources)
