"""The four whole-program checkers.

==============================  =================================================
checker id                      what it proves the absence of
==============================  =================================================
``interproc-privacy-taint``     identity-tainted values reaching a sink
                                (upload constructor, telemetry label,
                                service-side log, export/digest payload)
                                through *any* call chain
``pool-shared-mutation``        functions reachable from a worker entry
                                point mutating parent-owned module state
                                (fork shares it copy-on-write; writes are
                                silently lost or racy)
``merge-purity``                merge-registry functions mutating their
                                inputs, writing module state, or reading
                                mutable globals — each breaks commutative
                                replay
``determinism-reachability``    wall clock, unseeded RNG, or unordered-set
                                iteration transitively reachable from a
                                digest/export/report entry point
==============================  =================================================

Findings carry a witness call chain and a line-independent fingerprint
(checker, file, function, salient detail — never the line number), which
is what the baseline keys on: moving code around does not churn the
baseline, changing behaviour does.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.analysis.config import AnalysisConfig
from repro.analysis.dataflow import MutationSummaries, ReturnSummaries, TaintPropagator
from repro.analysis.facts import FunctionFacts, SinkFact
from repro.analysis.project import ProjectIndex


@dataclass(frozen=True)
class Finding:
    checker_id: str
    path: str
    line: int
    col: int
    function: str  # qualname the finding is attributed to
    message: str
    chain: tuple[str, ...] = ()
    #: short detail string the fingerprint is built from
    detail: str = ""

    @property
    def fingerprint(self) -> str:
        payload = "|".join([self.checker_id, self.path, self.function, self.detail])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "checker_id": self.checker_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "function": self.function,
            "message": self.message,
            "chain": list(self.chain),
            "detail": self.detail,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        return cls(
            checker_id=raw["checker_id"],
            path=raw["path"],
            line=raw["line"],
            col=raw["col"],
            function=raw["function"],
            message=raw["message"],
            chain=tuple(raw.get("chain", ())),
            detail=raw.get("detail", ""),
        )


@dataclass
class CheckContext:
    """Everything a checker may consult, computed once per run."""

    config: AnalysisConfig
    index: ProjectIndex
    returns: ReturnSummaries
    mutations: MutationSummaries


class Checker:
    checker_id = ""
    description = ""

    @property
    def rule_id(self) -> str:
        """Alias so the lint CLI's selection helper applies unchanged."""
        return self.checker_id

    def run(self, context: CheckContext) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(chain)


_SINK_KIND_TEXT = {
    "sink": "upload payload",
    "telemetry-label": "telemetry label",
    "log": "log statement",
    "export": "export/digest payload",
}


class InterprocPrivacyTaintChecker(Checker):
    """Identity taint crossing call edges into a publishing position."""

    checker_id = "interproc-privacy-taint"
    description = (
        "identity-bearing values must not reach uploads, telemetry labels, "
        "service logs, or export digests through any call chain"
    )

    def run(self, context: CheckContext) -> list[Finding]:
        findings: dict[tuple, Finding] = {}
        service_packages = context.config.lint.service_packages

        def on_hit(
            facts: FunctionFacts,
            sink: SinkFact,
            sources: frozenset[str],
            chain: tuple[str, ...],
        ) -> None:
            if sink.kind == "log" and not facts.module.startswith(service_packages):
                # Client-side prints are the device talking to its owner.
                return
            key = (facts.path, sink.line, sink.col, sink.kind, sources)
            if key in findings:  # first (BFS-shortest) chain wins
                return
            names = ", ".join(f"`{name}`" for name in sorted(sources))
            where = _SINK_KIND_TEXT.get(sink.kind, sink.kind)
            label = f" (label `{sink.label}`)" if sink.kind == "telemetry-label" else ""
            message = (
                f"identity {names} reaches {where} `{sink.name}`{label} "
                f"in `{facts.qualname}` via {_chain_text(chain)}"
            )
            findings[key] = Finding(
                checker_id=self.checker_id,
                path=facts.path,
                line=sink.line,
                col=sink.col,
                function=facts.qualname,
                message=message,
                chain=chain,
                detail=f"{sink.kind}:{sink.name}:{sink.label}:{','.join(sorted(sources))}",
            )

        TaintPropagator(context.index, context.returns).run(on_hit)
        return list(findings.values())


class PoolSharedMutationChecker(Checker):
    """Worker-reachable code mutating state the parent process owns."""

    checker_id = "pool-shared-mutation"
    description = (
        "functions reachable from a process-pool entry point must not "
        "mutate parent-owned module globals (fork shares them COW; the "
        "write is lost or racy)"
    )

    def run(self, context: CheckContext) -> list[Finding]:
        index = context.index
        entries = index.worker_entries()
        if not entries:
            return []
        reached = index.reachable(entries)
        findings: list[Finding] = []
        for qualname, chain in sorted(reached.items()):
            summary = context.mutations.summaries.get(qualname)
            facts = index.functions.get(qualname)
            if summary is None or facts is None:
                continue
            for dotted, (line, via) in sorted(summary.globals.items()):
                witness = f" (through `{via}`)" if via in index.functions else ""
                findings.append(
                    Finding(
                        checker_id=self.checker_id,
                        path=facts.path,
                        line=line,
                        col=0,
                        function=qualname,
                        message=(
                            f"`{qualname}` is reachable from worker entry "
                            f"`{chain[0]}` and mutates parent-owned "
                            f"`{dotted}`{witness}; worker chain: "
                            f"{_chain_text(chain)}"
                        ),
                        chain=chain,
                        detail=f"{dotted}:{via}",
                    )
                )
        return findings


class MergePurityChecker(Checker):
    """The commutative merge registry must be side-effect-free."""

    checker_id = "merge-purity"
    description = (
        "merge-registry functions must not mutate their inputs, write "
        "module state, or read mutable globals — replay and shard-order "
        "independence depend on it"
    )

    def run(self, context: CheckContext) -> list[Finding]:
        index = context.index
        findings: list[Finding] = []
        for qualname in sorted(index.functions):
            facts = index.functions[qualname]
            if not self._in_merge_registry(context.config, qualname, facts):
                continue
            summary = context.mutations.summaries[qualname]
            for param_index, (line, via) in sorted(summary.params.items()):
                param = (
                    facts.params[param_index]
                    if param_index < len(facts.params)
                    else f"#{param_index}"
                )
                findings.append(
                    Finding(
                        checker_id=self.checker_id,
                        path=facts.path,
                        line=line,
                        col=0,
                        function=qualname,
                        message=(
                            f"merge function `{qualname}` may mutate its "
                            f"input `{param}` ({via})"
                        ),
                        chain=(qualname,),
                        detail=f"param:{param}:{via}",
                    )
                )
            for dotted, (line, via) in sorted(summary.globals.items()):
                findings.append(
                    Finding(
                        checker_id=self.checker_id,
                        path=facts.path,
                        line=line,
                        col=0,
                        function=qualname,
                        message=(
                            f"merge function `{qualname}` may write module "
                            f"state `{dotted}` ({via})"
                        ),
                        chain=(qualname,),
                        detail=f"global:{dotted}:{via}",
                    )
                )
            findings.extend(self._mutable_reads(context, qualname))
        return findings

    @staticmethod
    def _in_merge_registry(
        config: AnalysisConfig, qualname: str, facts: FunctionFacts
    ) -> bool:
        if qualname.endswith(".<module>"):
            return False  # registry construction itself runs at import
        return any(
            facts.module == module or facts.module.startswith(module + ".")
            for module in config.merge_modules
        )

    def _mutable_reads(self, context: CheckContext, root: str) -> list[Finding]:
        """Mutable-global reads anywhere in the merge function's cone."""
        index = context.index
        findings: list[Finding] = []
        for qualname, chain in sorted(index.reachable([root]).items()):
            facts = index.functions[qualname]
            for dotted, line, col in facts.global_reads:
                info = index.globals.get(dotted)
                if not info or not (info.get("mutable") or info.get("rebound")):
                    continue
                at = "" if qualname == root else f" (in `{qualname}`)"
                findings.append(
                    Finding(
                        checker_id=self.checker_id,
                        path=facts.path,
                        line=line,
                        col=col,
                        function=root,
                        message=(
                            f"merge function `{root}` may read mutable "
                            f"global `{dotted}`{at}; chain: {_chain_text(chain)}"
                        ),
                        chain=chain,
                        detail=f"read:{dotted}:{qualname}",
                    )
                )
        return findings


class DeterminismReachabilityChecker(Checker):
    """No entropy or iteration-order dependence below report entries."""

    checker_id = "determinism-reachability"
    description = (
        "wall clock, unseeded RNG, and unordered-set iteration must not "
        "be reachable from digest/export/report entry points"
    )

    def run(self, context: CheckContext) -> list[Finding]:
        index = context.index
        config = context.config
        roots = sorted(
            qualname
            for qualname in index.functions
            if qualname.rsplit(".", 1)[-1] in config.report_entry_names
            and "<locals>" not in qualname
        )
        if not roots:
            return []
        reached = index.reachable(roots)
        allowed = config.allowed_nondet_modules
        findings: list[Finding] = []
        seen: set[tuple] = set()
        for qualname, chain in sorted(reached.items()):
            facts = index.functions[qualname]
            if facts.module in allowed:
                continue  # the sanctioned entropy/clock plumbing itself
            for resolved in index.resolved_calls(qualname):
                external = resolved.external
                if external is None or not self._is_nondet(config, external):
                    continue
                key = (qualname, external)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        checker_id=self.checker_id,
                        path=facts.path,
                        line=resolved.site.line,
                        col=resolved.site.col,
                        function=qualname,
                        message=(
                            f"nondeterministic `{external}` is reachable "
                            f"from report entry `{chain[0]}`; chain: "
                            f"{_chain_text(chain)}"
                        ),
                        chain=chain,
                        detail=f"call:{external}",
                    )
                )
            for name, line, col in facts.unordered:
                key = (qualname, "iter", name, line)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        checker_id=self.checker_id,
                        path=facts.path,
                        line=line,
                        col=col,
                        function=qualname,
                        message=(
                            f"iteration over unordered set `{name}` in "
                            f"`{qualname}` is reachable from report entry "
                            f"`{chain[0]}`; chain: {_chain_text(chain)}"
                        ),
                        chain=chain,
                        detail=f"iter:{name}",
                    )
                )
        return findings

    @staticmethod
    def _is_nondet(config: AnalysisConfig, dotted: str) -> bool:
        if dotted in config.nondet_calls:
            return True
        return any(dotted.startswith(prefix) for prefix in config.nondet_prefixes)


def default_checkers() -> list[Checker]:
    return [
        InterprocPrivacyTaintChecker(),
        PoolSharedMutationChecker(),
        MergePurityChecker(),
        DeterminismReachabilityChecker(),
    ]
