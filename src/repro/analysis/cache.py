"""File-digest-keyed incremental cache for per-file facts.

Extraction (parse + local dataflow) dominates a cold analysis run; the
whole-program phases (index, summaries, checkers) are cheap by
comparison.  Facts are *local* — they mention other modules only through
symbolic callee references that :class:`~repro.analysis.project.ProjectIndex`
resolves at load time — so a file's cached facts stay valid as long as
the file's bytes and the analyzer config are unchanged, no matter what
happened elsewhere in the tree.

Cache layout (one JSON document)::

    {"version": 1,
     "config": "<AnalysisConfig.fingerprint()>",
     "files": {"<path>": {"digest": "<sha256>", "facts": {...}}},
     "program": {"key": "<sha256 over every file digest>",
                 "findings": [...], "suppressed": [...]}}

Two levels.  The ``files`` map reuses per-file facts as long as the
file's bytes are unchanged — a warm run with *some* edits re-extracts
only the edited files and re-runs the whole-program phases on the mixed
facts.  The ``program`` entry short-circuits further: when *no* file
changed, the checker output is a pure function of (config, file bytes),
so the previous findings are replayed without building the index or the
summaries at all.  A version or config mismatch drops the whole cache; a
stale per-file digest drops just that entry.  Corrupt cache files are
treated as absent — the cache is an accelerator, never a correctness
input.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import AnalysisConfig
from repro.analysis.facts import ModuleFacts, extract
from repro.lint.engine import Violation, parse_module

CACHE_VERSION = 1
DEFAULT_CACHE_PATH = ".repro-analysis-cache.json"


def file_digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


@dataclass
class FactLoader:
    """Loads facts for a file list, consulting and refreshing the cache."""

    config: AnalysisConfig
    cache_path: Path | None = None
    hits: int = 0
    misses: int = 0
    _entries: dict[str, dict] = field(default_factory=dict)
    _program: dict | None = None

    def __post_init__(self) -> None:
        if self.cache_path is None:
            return
        try:
            raw = json.loads(Path(self.cache_path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            isinstance(raw, dict)
            and raw.get("version") == CACHE_VERSION
            and raw.get("config") == self.config.fingerprint()
            and isinstance(raw.get("files"), dict)
        ):
            self._entries = raw["files"]
            if isinstance(raw.get("program"), dict):
                self._program = raw["program"]

    def cached_program(self, key: str) -> dict | None:
        """Replayable checker output for an unchanged file set, if any."""
        if self._program is not None and self._program.get("key") == key:
            return self._program
        return None

    def store_program(self, key: str, payload: dict) -> None:
        self._program = {"key": key, **payload}

    def load(self, path: Path, digest: str | None = None) -> ModuleFacts | Violation:
        key = str(path)
        try:
            if digest is None:
                digest = file_digest(path)
        except OSError as exc:
            return Violation(
                rule_id="parse-error",
                path=key,
                line=1,
                col=0,
                message=f"could not read file: {exc.__class__.__name__}: {exc}",
            )
        cached = self._entries.get(key)
        if cached is not None and cached.get("digest") == digest:
            try:
                facts = ModuleFacts.from_dict(cached["facts"])
            except (KeyError, TypeError, ValueError):
                pass  # schema drift: fall through to re-extraction
            else:
                self.hits += 1
                return facts
        parsed = parse_module(path)
        if isinstance(parsed, Violation):
            self._entries.pop(key, None)
            return parsed
        facts = extract(parsed, self.config, digest)
        self._entries[key] = {"digest": digest, "facts": facts.to_dict()}
        self.misses += 1
        return facts

    def save(self) -> None:
        if self.cache_path is None:
            return
        document = {
            "version": CACHE_VERSION,
            "config": self.config.fingerprint(),
            "files": {key: self._entries[key] for key in sorted(self._entries)},
        }
        if self._program is not None:
            document["program"] = self._program
        try:
            Path(self.cache_path).write_text(
                json.dumps(document, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # read-only checkout: run uncached rather than fail
