"""Whole-program index: symbol table, call graph, and reachability.

:class:`ProjectIndex` stitches the per-file :class:`ModuleFacts` into one
program view.  Callee references recorded at extraction time are symbolic
(``dotted`` / ``self`` / ``method`` / ``local`` / ``builtin`` /
``unknown``); resolution happens here, against the full symbol table, so
a cached fact file stays valid even when *other* files change:

* ``dotted`` chases import aliases (re-exports) to a project function,
  class (constructor), or an external dotted name;
* ``self`` walks the receiver's MRO (class, then bases, breadth-first);
* ``method`` falls back to *every* project method of that name — the
  conservative answer for dynamic dispatch — plus an ``unknown`` edge
  when no project method matches;
* ``local`` targets nested functions/lambdas by qualname;
* function references passed into an unresolved call become edges too
  (the callee may invoke them).

Reachability queries return witness call chains, which the checkers put
verbatim into findings so a human can replay the path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.facts import CallSite, ClassFacts, FunctionFacts, ModuleFacts

#: Pseudo-target for calls the index cannot bound: the callee could be
#: anything, so checkers must treat the edge conservatively.
UNKNOWN = "<unknown>"


@dataclass
class ResolvedCall:
    """One call site with its possible targets spelled out."""

    site: CallSite
    targets: tuple[str, ...] = ()  # project function qualnames
    external: str | None = None  # dotted name outside the project
    constructor: str | None = None  # class qualname when instantiating
    unknown: bool = False  # conservatively unbounded callee

    @property
    def label(self) -> str:
        if self.constructor:
            return self.constructor
        if self.targets:
            return "|".join(self.targets)
        if self.external:
            return self.external
        return UNKNOWN


@dataclass
class ProjectIndex:
    config: AnalysisConfig
    modules: dict[str, ModuleFacts] = field(default_factory=dict)
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    classes: dict[str, ClassFacts] = field(default_factory=dict)
    #: method name -> sorted qualnames of every project method so named
    method_index: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: dotted module-global name -> {"mutable": bool, "rebound": bool}
    globals: dict[str, dict] = field(default_factory=dict)
    _resolved: dict[str, list[ResolvedCall]] = field(default_factory=dict)
    _successors: dict[str, list[tuple[str, int]]] = field(default_factory=dict)

    @classmethod
    def build(cls, config: AnalysisConfig, facts: Iterable[ModuleFacts]) -> "ProjectIndex":
        index = cls(config=config)
        for module_facts in facts:
            index.modules[module_facts.module] = module_facts
            index.functions.update(module_facts.functions)
            index.classes.update(module_facts.classes)
            for name, info in module_facts.module_globals.items():
                index.globals[f"{module_facts.module}.{name}"] = info
        methods: dict[str, set[str]] = {}
        for cls_facts in index.classes.values():
            for name, qualname in cls_facts.methods.items():
                methods.setdefault(name, set()).add(qualname)
        index.method_index = {
            name: tuple(sorted(qualnames)) for name, qualnames in methods.items()
        }
        return index

    # ------------------------------------------------------------ lookup

    def canonical(self, dotted: str) -> str:
        """Chase import aliases: ``repro.scale.merge_counts`` (a package
        re-export) resolves to ``repro.scale.merge.merge_counts``."""
        for _ in range(8):
            if dotted in self.functions or dotted in self.classes:
                return dotted
            module, _, name = dotted.rpartition(".")
            module_facts = self.modules.get(module)
            if module_facts is None or name not in module_facts.imports:
                return dotted
            dotted = module_facts.imports[name]
        return dotted

    def suppressed(self, qualname_or_path: str, checker_id: str, line: int) -> bool:
        facts = self.owner_module(qualname_or_path)
        return facts is not None and facts.suppressed(checker_id, line)

    def owner_module(self, qualname: str) -> ModuleFacts | None:
        """The module whose file defines ``qualname``."""
        function = self.functions.get(qualname)
        if function is not None:
            return self.modules.get(function.module)
        parts = qualname.split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in self.modules:
                return self.modules[candidate]
            parts.pop()
        return None

    def mro_method(self, cls_qualname: str, method: str) -> str | None:
        """Resolve ``self.method()`` through the class, then its bases."""
        queue = deque([cls_qualname])
        seen = set()
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            cls_facts = self.classes.get(current)
            if cls_facts is None:
                continue
            if method in cls_facts.methods:
                return cls_facts.methods[method]
            queue.extend(self.canonical(base) for base in cls_facts.bases)
        return None

    # -------------------------------------------------------- resolution

    def resolve(self, caller: FunctionFacts, site: CallSite) -> ResolvedCall:
        callee = site.callee
        kind = callee["kind"]
        if kind == "local":
            targets = tuple(t for t in callee["targets"] if t in self.functions)
            return ResolvedCall(site, targets=targets, unknown=not targets)
        if kind == "dotted":
            return self._resolve_dotted(site, callee["target"])
        if kind == "self":
            target = self.mro_method(self.canonical(callee["cls"]), callee["method"])
            if target is not None:
                return ResolvedCall(site, targets=(target,))
            return self._resolve_method(site, callee["method"])
        if kind == "method":
            return self._resolve_method(site, callee["method"])
        if kind == "builtin":
            return ResolvedCall(site, external=f"builtins.{callee['name']}")
        return ResolvedCall(site, unknown=True)

    def _resolve_dotted(self, site: CallSite, dotted: str) -> ResolvedCall:
        dotted = self.canonical(dotted)
        if dotted in self.functions:
            return ResolvedCall(site, targets=(dotted,))
        if dotted in self.classes:
            init = self.mro_method(dotted, "__init__")
            return ResolvedCall(
                site,
                targets=(init,) if init else (),
                constructor=dotted,
            )
        if self.config.in_project(dotted):
            # A project name the index has no body for (attribute on an
            # object held in a module global, dynamic member, …).
            return ResolvedCall(site, unknown=True)
        return ResolvedCall(site, external=dotted)

    def _resolve_method(self, site: CallSite, method: str) -> ResolvedCall:
        # A receiver whose atoms are empty is a plain local (fresh list,
        # literal, sanitized value) — it cannot be a project object, so
        # name-matching every project method would only produce noise.
        if site.recv is not None and not site.recv:
            return ResolvedCall(site, unknown=True)
        targets = self.method_index.get(method, ())
        # Dynamic dispatch: keep every candidate *and* an unknown edge
        # (the receiver may be an external object).
        return ResolvedCall(site, targets=targets, unknown=True)

    def resolved_calls(self, qualname: str) -> list[ResolvedCall]:
        cached = self._resolved.get(qualname)
        if cached is None:
            facts = self.functions[qualname]
            cached = [self.resolve(facts, site) for site in facts.calls]
            self._resolved[qualname] = cached
        return cached

    # ------------------------------------------------------- call graph

    def successors(self, qualname: str) -> list[tuple[str, int]]:
        """(callee qualname | UNKNOWN, call line) edges out of a function.

        Besides direct targets, a function *reference* passed to an
        unresolved or external callee yields an edge — the callee may
        invoke it (``pool.map(worker, …)``, ``sorted(key=fn)``).
        """
        cached = self._successors.get(qualname)
        if cached is not None:
            return cached
        edges: list[tuple[str, int]] = []
        for resolved in self.resolved_calls(qualname):
            line = resolved.site.line
            for target in resolved.targets:
                edges.append((target, line))
            if resolved.unknown:
                edges.append((UNKNOWN, line))
            if resolved.targets and not resolved.unknown and not resolved.external:
                continue
            for atoms in self._site_atom_sets(resolved.site):
                for target in self.func_targets(atoms):
                    edges.append((target, line))
        deduped = sorted(set(edges))
        self._successors[qualname] = deduped
        return deduped

    @staticmethod
    def _site_atom_sets(site: CallSite) -> Iterable:
        yield from site.args
        yield from site.kwargs.values()
        yield site.spill

    def func_targets(self, atoms: Iterable) -> Iterator[str]:
        """Project functions an atom set may refer to.  Besides ``func``
        atoms, a ``global`` atom naming a project function *is* a
        function reference (``parallel.judge_shard`` read as a module
        attribute)."""
        for atom in atoms:
            if atom[0] == "func" and atom[1] in self.functions:
                yield atom[1]
            elif atom[0] == "global":
                canonical = self.canonical(atom[1])
                if canonical in self.functions:
                    yield canonical

    def reachable(
        self,
        roots: Iterable[str],
        stop: Callable[[str], bool] | None = None,
    ) -> dict[str, tuple[str, ...]]:
        """BFS over call edges.  Returns ``{qualname: witness chain}``
        where the chain starts at a root and ends at the function.

        ``stop`` prunes traversal *below* matching functions (they are
        still reported as reached)."""
        chains: dict[str, tuple[str, ...]] = {}
        queue: deque[str] = deque()
        for root in roots:
            if root in self.functions and root not in chains:
                chains[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.popleft()
            if stop is not None and stop(current) and len(chains[current]) > 1:
                continue
            for target, _line in self.successors(current):
                if target == UNKNOWN or target in chains:
                    continue
                if target not in self.functions:
                    continue
                chains[target] = chains[current] + (target,)
                queue.append(target)
        return chains

    # ---------------------------------------------------- worker entries

    def worker_entries(self) -> dict[str, tuple[str, ...]]:
        """Functions submitted to a process pool, with witness chains.

        A call site whose callee is a ``pool_submit_methods`` method and
        whose arguments carry ``("func", q)`` atoms marks ``q`` as a
        worker entry point; ``extra_worker_entries`` adds more."""
        entries: dict[str, tuple[str, ...]] = {}
        for qualname, facts in self.functions.items():
            for site in facts.calls:
                method = site.callee.get("method")
                if site.callee["kind"] not in ("method", "self", "dotted"):
                    continue
                if site.callee["kind"] == "dotted":
                    method = site.callee["target"].rsplit(".", 1)[-1]
                if method not in self.config.pool_submit_methods:
                    continue
                for atoms in self._site_atom_sets(site):
                    for target in self.func_targets(atoms):
                        entries.setdefault(target, (qualname, target))
        for extra in self.config.extra_worker_entries:
            canonical = self.canonical(extra)
            if canonical in self.functions:
                entries.setdefault(canonical, (canonical,))
        return entries
