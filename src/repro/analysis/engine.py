"""Run orchestration for the whole-program analyzer.

Pipeline::

    files ──(FactLoader: cache or parse+extract)──▶ ModuleFacts*
          ──(ProjectIndex.build)────────────────▶ symbols + call graph
          ──(ReturnSummaries / MutationSummaries)▶ interproc summaries
          ──(checkers)───────────────────────────▶ raw findings
          ──(inline suppressions, baseline)──────▶ AnalysisResult

Only the first stage is per-file and cacheable; everything after runs on
the in-memory facts and is fast enough to repeat on every invocation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.cache import FactLoader, file_digest
from repro.analysis.checkers import CheckContext, Checker, Finding, default_checkers
from repro.analysis.config import AnalysisConfig
from repro.analysis.dataflow import MutationSummaries, ReturnSummaries
from repro.analysis.facts import ModuleFacts
from repro.analysis.project import ProjectIndex
from repro.lint.engine import Violation, iter_python_files


@dataclass
class AnalysisResult:
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)
    parse_errors: list[Violation] = field(default_factory=list)
    n_files: int = 0
    n_cached: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale_baseline and not self.parse_errors

    def all_produced(self) -> list[Finding]:
        """Every finding the checkers emitted, however it was disposed."""
        merged = self.findings + self.suppressed + self.baselined
        merged.sort(key=lambda f: (f.path, f.line, f.col, f.checker_id, f.message))
        return merged


@dataclass
class WholeProgramAnalyzer:
    """Front door: load facts, build the program view, run the checkers."""

    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    checkers: Sequence[Checker] | None = None
    cache_path: Path | str | None = None

    def run(
        self, paths: Sequence[Path | str], baseline: Baseline | None = None
    ) -> AnalysisResult:
        result = AnalysisResult()
        loader = FactLoader(
            self.config,
            cache_path=None if self.cache_path is None else Path(self.cache_path),
        )
        files = [Path(path) for path in iter_python_files(paths)]
        result.n_files = len(files)

        # Program-level short circuit: checker output is a pure function
        # of (config, file bytes), so an unchanged file set replays the
        # cached findings without building the index or the summaries.
        # The baseline is applied fresh — it can change independently.
        digests: dict[Path, str] = {}
        program_key: str | None = None
        for path in files:
            try:
                digests[path] = file_digest(path)
            except OSError:
                break
        else:
            active = self.checkers if self.checkers is not None else default_checkers()
            program_key = hashlib.sha256(
                "\n".join(
                    [",".join(sorted(c.checker_id for c in active))]
                    + [f"{path}\0{digests[path]}" for path in files]
                ).encode("utf-8")
            ).hexdigest()
            replay = loader.cached_program(program_key)
            if replay is not None:
                result.n_cached = len(files)
                result.suppressed = [
                    Finding.from_dict(raw) for raw in replay.get("suppressed", [])
                ]
                unsuppressed = [
                    Finding.from_dict(raw) for raw in replay.get("findings", [])
                ]
                return self._finish(result, unsuppressed, baseline)

        facts: list[ModuleFacts] = []
        for path in files:
            loaded = loader.load(path, digest=digests.get(path))
            if isinstance(loaded, Violation):
                result.parse_errors.append(loaded)
            else:
                facts.append(loaded)
        result.n_cached = loader.hits

        context = self.build_context(facts)
        produced: list[Finding] = []
        seen: set[tuple] = set()
        for checker in self.checkers if self.checkers is not None else default_checkers():
            for finding in checker.run(context):
                key = (
                    finding.checker_id,
                    finding.path,
                    finding.line,
                    finding.col,
                    finding.message,
                )
                if key not in seen:
                    seen.add(key)
                    produced.append(finding)

        modules_by_path = {facts.path: facts for facts in context.index.modules.values()}
        unsuppressed: list[Finding] = []
        for finding in produced:
            module = modules_by_path.get(finding.path)
            if module is not None and module.suppressed(finding.checker_id, finding.line):
                result.suppressed.append(finding)
            else:
                unsuppressed.append(finding)

        if program_key is not None and not result.parse_errors:
            loader.store_program(
                program_key,
                {
                    "findings": [f.to_dict() for f in unsuppressed],
                    "suppressed": [f.to_dict() for f in result.suppressed],
                },
            )
        loader.save()
        return self._finish(result, unsuppressed, baseline)

    def _finish(
        self,
        result: AnalysisResult,
        unsuppressed: list[Finding],
        baseline: Baseline | None,
    ) -> AnalysisResult:
        baseline = baseline or Baseline()
        result.findings, result.baselined, result.stale_baseline = baseline.split(
            unsuppressed
        )
        order = lambda f: (f.path, f.line, f.col, f.checker_id, f.message)  # noqa: E731
        result.findings.sort(key=order)
        result.suppressed.sort(key=order)
        result.baselined.sort(key=order)
        result.parse_errors.sort(key=lambda v: (v.path, v.line, v.col))
        return result

    def build_context(self, facts: Sequence[ModuleFacts]) -> CheckContext:
        index = ProjectIndex.build(self.config, facts)
        returns = ReturnSummaries(index)
        mutations = MutationSummaries(index, returns)
        return CheckContext(
            config=self.config, index=index, returns=returns, mutations=mutations
        )
