"""Command-line front end: ``python -m repro.analysis`` and ``repro analyze``.

Exit codes mirror ``repro.lint``: 0 = clean, 1 = findings (including
stale baseline entries and unparseable files), 2 = usage errors.
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.checkers import default_checkers
from repro.analysis.engine import WholeProgramAnalyzer
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.lint.cli import SelectionError, resolve_selection

DEFAULT_PATHS = ("src/repro",)


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the analyzer options (shared with ``repro analyze``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated checker ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated checker ids to skip",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON of accepted findings (stale entries fail the run)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline to accept exactly the current findings",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="incremental fact cache file (omit to analyze cold)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings waived inline or via the baseline",
    )
    parser.add_argument(
        "--show-chains",
        action="store_true",
        help="print the witness call chain under each finding (text format)",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="print every checker id and what it proves, then exit",
    )


def list_checkers_text() -> str:
    lines = []
    for checker in default_checkers():
        lines.append(f"{checker.checker_id}: {checker.description}")
    return "\n".join(lines)


def run_analyze(args: argparse.Namespace) -> int:
    """Execute a parsed analyze invocation; returns the process exit code."""
    if args.list_checkers:
        print(list_checkers_text())
        return 0
    try:
        checkers = resolve_selection(default_checkers(), args.select, args.ignore)
    except SelectionError as exc:
        print(f"error: {exc}")
        return 2
    if args.update_baseline and args.baseline is None:
        print("error: --update-baseline requires --baseline")
        return 2
    try:
        baseline = Baseline.load(args.baseline)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    analyzer = WholeProgramAnalyzer(checkers=checkers, cache_path=args.cache)
    result = analyzer.run(args.paths, baseline=baseline)
    if args.update_baseline:
        document = baseline.updated_with(result.findings + result.baselined)
        if baseline.path is None:
            baseline.path = Path(args.baseline)
        baseline.write(document)
        print(
            f"baseline updated: {len(document['findings'])} accepted finding(s) "
            f"written to {baseline.path}"
        )
        return 0
    if args.format == "json":
        print(render_json(result, show_suppressed=args.show_suppressed))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(
            render_text(
                result,
                show_suppressed=args.show_suppressed,
                show_chains=args.show_chains,
            )
        )
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "whole-program analyzer: call graph, interprocedural privacy "
            "taint, pool-mutation/merge-purity/determinism checkers "
            "(docs/STATIC_ANALYSIS.md)"
        ),
    )
    add_analyze_arguments(parser)
    return run_analyze(parser.parse_args(argv))
