"""Render an :class:`AnalysisResult` as text, JSON, or SARIF 2.1.0.

The text form is for humans at a terminal; JSON is for scripts and the
test-suite; SARIF is the interchange format code hosts ingest for
annotation (one ``run``, one rule per checker, fingerprints under the
``reproAnalysis/v1`` key so re-uploads dedupe).
"""

from __future__ import annotations

import json

from repro.analysis.checkers import Finding, default_checkers
from repro.analysis.engine import AnalysisResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _finding_line(finding: Finding, tag: str = "") -> str:
    return (
        f"{finding.path}:{finding.line}:{finding.col}: "
        f"{finding.checker_id} {finding.message}{tag}"
    )


def render_text(
    result: AnalysisResult,
    show_suppressed: bool = False,
    show_chains: bool = False,
) -> str:
    lines: list[str] = []
    for violation in result.parse_errors:
        lines.append(violation.render())
    for finding in result.findings:
        lines.append(_finding_line(finding))
        if show_chains and len(finding.chain) > 1:
            lines.append(f"    chain: {' -> '.join(finding.chain)}")
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry {entry['fingerprint']} "
            f"({entry.get('checker_id', '?')} in {entry.get('path', '?')}): "
            "finding no longer produced; remove it or run --update-baseline"
        )
    if show_suppressed:
        for finding in result.suppressed:
            lines.append(_finding_line(finding, tag=" (suppressed)"))
        for finding in result.baselined:
            lines.append(_finding_line(finding, tag=" (baselined)"))
    counts = (
        f"{result.n_files} file(s) analyzed, {result.n_cached} from cache; "
        f"{len(result.baselined)} baselined, {len(result.suppressed)} suppressed"
    )
    if result.ok:
        lines.append(f"OK: {counts}")
    else:
        problems = (
            len(result.findings) + len(result.stale_baseline) + len(result.parse_errors)
        )
        lines.append(f"FAIL: {problems} problem(s); {counts}")
    return "\n".join(lines)


def render_json(result: AnalysisResult, show_suppressed: bool = False) -> str:
    document = {
        "ok": result.ok,
        "files_analyzed": result.n_files,
        "files_from_cache": result.n_cached,
        "finding_count": len(result.findings),
        "findings": [finding.to_dict() for finding in result.findings],
        "baselined_count": len(result.baselined),
        "suppressed_count": len(result.suppressed),
        "stale_baseline": list(result.stale_baseline),
        "parse_errors": [violation.to_dict() for violation in result.parse_errors],
    }
    if show_suppressed:
        document["suppressed"] = [f.to_dict() for f in result.suppressed]
        document["baselined"] = [f.to_dict() for f in result.baselined]
    return json.dumps(document, indent=2, sort_keys=False)


def render_sarif(result: AnalysisResult) -> str:
    rules = [
        {
            "id": checker.checker_id,
            "shortDescription": {"text": checker.description},
        }
        for checker in default_checkers()
    ]
    results = []
    for finding in result.findings:
        results.append(
            {
                "ruleId": finding.checker_id,
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": finding.line,
                                "startColumn": max(finding.col, 0) + 1,
                            },
                        }
                    }
                ],
                "fingerprints": {"reproAnalysis/v1": finding.fingerprint},
            }
        )
    for violation in result.parse_errors:
        results.append(
            {
                "ruleId": violation.rule_id,
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": violation.path},
                            "region": {"startLine": violation.line, "startColumn": 1},
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)
