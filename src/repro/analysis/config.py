"""Configuration for the whole-program analyzer.

:class:`AnalysisConfig` layers on :class:`repro.lint.engine.LintConfig`
(identity names, sanitizers, sink constructors, telemetry vocabulary are
shared — the two analyzers must agree on what "identity-bearing" means)
and adds the whole-program knobs: which packages form the project, which
module holds the commutative merge registry, how worker entry points are
discovered, and which call targets are nondeterministic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.lint.engine import LintConfig


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs for the interprocedural checkers."""

    lint: LintConfig = field(default_factory=LintConfig)

    #: Dotted package roots considered *project* code.  Symbols outside
    #: these roots are external: their calls are resolved by name only
    #: and their returns are treated conservatively (taint in → taint out).
    project_packages: tuple[str, ...] = ("repro",)

    #: Modules whose top-level functions form the commutative merge
    #: registry — everything here must be side-effect-free on its inputs
    #: and read no mutable module state (``merge-purity``).
    merge_modules: tuple[str, ...] = ("repro.scale.merge",)

    #: Method names that submit a function to a process pool.  Any
    #: function reference passed as the first argument of such a call
    #: becomes a worker entry point for ``pool-shared-mutation``.
    pool_submit_methods: frozenset[str] = frozenset({"map", "submit"})

    #: Worker entry points named explicitly (dotted function qualnames),
    #: in addition to the ones discovered from pool submissions.
    extra_worker_entries: tuple[str, ...] = ()

    #: Method names that mutate their receiver in place.
    mutator_methods: frozenset[str] = frozenset(
        {
            "add",
            "append",
            "appendleft",
            "clear",
            "discard",
            "extend",
            "insert",
            "pop",
            "popitem",
            "popleft",
            "remove",
            "reverse",
            "setdefault",
            "sort",
            "update",
            "write",
            "writelines",
        }
    )

    #: Qualname suffixes that mark digest/export/report entry points for
    #: ``determinism-reachability`` (matched against the last segment).
    report_entry_names: frozenset[str] = frozenset(
        {
            "digest",
            "export",
            "export_json",
            "export_text",
            "run_maintenance",
        }
    )

    #: External callables whose output depends on wall clock or process
    #: entropy.  Exact dotted names …
    nondet_calls: frozenset[str] = frozenset(
        {
            "os.urandom",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.time",
            "time.time_ns",
            "uuid.uuid1",
            "uuid.uuid4",
            "datetime.datetime.now",
            "datetime.datetime.today",
            "datetime.datetime.utcnow",
            "datetime.date.today",
        }
    )
    #: … and whole dotted prefixes (every function under them).
    nondet_prefixes: tuple[str, ...] = ("random.", "numpy.random.", "secrets.")

    #: Function names whose *arguments* are export/digest payloads — an
    #: identity-bearing value passed to one is republished (sink kind
    #: ``export`` for ``interproc-privacy-taint``).
    export_sink_names: frozenset[str] = frozenset(
        {"digest", "export", "export_json", "export_text"}
    )

    #: Logging-style callables treated as privacy sinks inside the
    #: service packages (``self.lint.service_packages``): ``print`` plus
    #: the stdlib logger methods.
    log_methods: frozenset[str] = frozenset(
        {"print", "debug", "info", "warning", "error", "critical", "exception", "log"}
    )

    @property
    def allowed_nondet_modules(self) -> frozenset[str]:
        """Modules exempt from nondeterminism findings: the sanctioned
        entropy/time plumbing itself."""
        return self.lint.rng_modules | self.lint.clock_modules

    def in_project(self, dotted: str) -> bool:
        return any(
            dotted == root or dotted.startswith(root + ".")
            for root in self.project_packages
        )

    def fingerprint(self) -> str:
        """Digest of every knob — keys the fact cache, so a config change
        invalidates cached per-file facts."""
        payload = repr(
            (
                sorted(self.lint.identity_names),
                sorted(self.lint.sanitizers),
                sorted(self.lint.sink_names),
                sorted(self.lint.telemetry_receivers),
                sorted(self.lint.telemetry_methods),
                sorted(self.lint.telemetry_value_params),
                self.lint.service_packages,
                self.project_packages,
                self.merge_modules,
                sorted(self.pool_submit_methods),
                self.extra_worker_entries,
                sorted(self.mutator_methods),
                sorted(self.report_entry_names),
                sorted(self.nondet_calls),
                self.nondet_prefixes,
                sorted(self.export_sink_names),
                sorted(self.log_methods),
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
