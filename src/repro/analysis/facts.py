"""Per-file fact extraction for the whole-program analyzer.

One parsed module compiles into a :class:`ModuleFacts` value: every
function/method/lambda becomes a :class:`FunctionFacts` carrying its call
sites, privacy sinks, state mutations, nondeterminism uses, and a local
dataflow summary expressed over *atoms*.  An atom names where a value may
come from::

    ("source", name)   an identity-bearing name/attribute read
    ("param", i)       the function's i-th parameter (0 = self for methods)
    ("global", dotted) a project module-level name (or module attribute)
    ("call", site_id)  the return value of call site ``site_id``
    ("func", qualname) a reference to a known function/lambda

Atom sets are computed with a small may-analysis over local assignments
(iterated to a fixed point, so loop-carried flows converge), and they are
*local*: ``("call", s)`` atoms defer to the interprocedural engine
(:mod:`repro.analysis.dataflow`), which expands them through callee
summaries.  Everything here is JSON-serializable, which is what lets the
incremental cache (:mod:`repro.analysis.cache`) skip parsing and
extraction entirely for unchanged files.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.config import AnalysisConfig
from repro.lint.engine import ParsedModule

Atom = tuple
AtomSet = frozenset

_EMPTY: AtomSet = frozenset()

#: Call targets treated as returning a value independent of their inputs
#: (beyond the configured sanitizers): constructors of fresh immutables.
_PURE_BUILTINS = frozenset({"len", "range", "enumerate", "id", "bool", "int", "float"})


def atoms_to_json(atoms: AtomSet) -> list:
    return sorted([list(atom) for atom in atoms])


def atoms_from_json(raw: Iterable) -> AtomSet:
    return frozenset(tuple(atom) for atom in raw)


@dataclass
class CallSite:
    """One call expression: who may be called, with which value atoms."""

    site_id: int
    line: int
    col: int
    callee: dict
    recv: AtomSet | None
    args: tuple[AtomSet, ...]
    kwargs: dict[str, AtomSet]
    spill: AtomSet  # *args/**kwargs contributions, bound to every param

    def to_dict(self) -> dict:
        return {
            "i": self.site_id,
            "l": self.line,
            "c": self.col,
            "f": self.callee,
            "r": None if self.recv is None else atoms_to_json(self.recv),
            "a": [atoms_to_json(a) for a in self.args],
            "k": {k: atoms_to_json(v) for k, v in sorted(self.kwargs.items())},
            "s": atoms_to_json(self.spill),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "CallSite":
        return cls(
            site_id=raw["i"],
            line=raw["l"],
            col=raw["c"],
            callee=raw["f"],
            recv=None if raw["r"] is None else atoms_from_json(raw["r"]),
            args=tuple(atoms_from_json(a) for a in raw["a"]),
            kwargs={k: atoms_from_json(v) for k, v in raw["k"].items()},
            spill=atoms_from_json(raw["s"]),
        )


@dataclass
class SinkFact:
    """A value position that publishes: sink ctor arg, telemetry label,
    service-side log, or export/digest payload."""

    kind: str  # "sink" | "telemetry-label" | "log" | "export"
    name: str  # constructor / method name
    label: str | None  # keyword name for telemetry labels
    line: int
    col: int
    atoms: AtomSet

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "label": self.label,
            "l": self.line,
            "c": self.col,
            "atoms": atoms_to_json(self.atoms),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "SinkFact":
        return cls(
            kind=raw["kind"],
            name=raw["name"],
            label=raw["label"],
            line=raw["l"],
            col=raw["c"],
            atoms=atoms_from_json(raw["atoms"]),
        )


@dataclass
class MutationFact:
    """An in-place write whose *target object* is described by atoms."""

    kind: str  # "attr-store" | "index-store" | "mutate-call" | "global-write" | "delete"
    detail: str  # attribute / method / global name
    line: int
    col: int
    atoms: AtomSet

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "l": self.line,
            "c": self.col,
            "atoms": atoms_to_json(self.atoms),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "MutationFact":
        return cls(
            kind=raw["kind"],
            detail=raw["detail"],
            line=raw["l"],
            col=raw["c"],
            atoms=atoms_from_json(raw["atoms"]),
        )


@dataclass
class FunctionFacts:
    """Everything the whole-program phases need to know about one function."""

    qualname: str
    module: str
    path: str
    line: int
    params: tuple[str, ...]
    is_method: bool = False
    cls: str | None = None
    decorators: tuple[str, ...] = ()
    calls: list[CallSite] = field(default_factory=list)
    sinks: list[SinkFact] = field(default_factory=list)
    mutations: list[MutationFact] = field(default_factory=list)
    #: function-local unordered iterations: (name, line, col)
    unordered: list[tuple[str, int, int]] = field(default_factory=list)
    #: reads of project module-level names: (dotted, line, col)
    global_reads: list[tuple[str, int, int]] = field(default_factory=list)
    returns: AtomSet = _EMPTY
    global_decls: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "q": self.qualname,
            "m": self.module,
            "p": self.path,
            "l": self.line,
            "params": list(self.params),
            "method": self.is_method,
            "cls": self.cls,
            "dec": list(self.decorators),
            "calls": [c.to_dict() for c in self.calls],
            "sinks": [s.to_dict() for s in self.sinks],
            "muts": [m.to_dict() for m in self.mutations],
            "unordered": [list(u) for u in self.unordered],
            "greads": [list(g) for g in self.global_reads],
            "ret": atoms_to_json(self.returns),
            "gdecls": list(self.global_decls),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FunctionFacts":
        return cls(
            qualname=raw["q"],
            module=raw["m"],
            path=raw["p"],
            line=raw["l"],
            params=tuple(raw["params"]),
            is_method=raw["method"],
            cls=raw["cls"],
            decorators=tuple(raw["dec"]),
            calls=[CallSite.from_dict(c) for c in raw["calls"]],
            sinks=[SinkFact.from_dict(s) for s in raw["sinks"]],
            mutations=[MutationFact.from_dict(m) for m in raw["muts"]],
            unordered=[tuple(u) for u in raw["unordered"]],
            global_reads=[tuple(g) for g in raw["greads"]],
            returns=atoms_from_json(raw["ret"]),
            global_decls=tuple(raw["gdecls"]),
        )


@dataclass
class ClassFacts:
    qualname: str
    line: int
    bases: tuple[str, ...] = ()  # dotted where resolvable
    methods: dict[str, str] = field(default_factory=dict)  # name -> qualname

    def to_dict(self) -> dict:
        return {
            "q": self.qualname,
            "l": self.line,
            "bases": list(self.bases),
            "methods": dict(sorted(self.methods.items())),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ClassFacts":
        return cls(
            qualname=raw["q"],
            line=raw["l"],
            bases=tuple(raw["bases"]),
            methods=dict(raw["methods"]),
        )


@dataclass
class ModuleFacts:
    path: str
    module: str
    digest: str
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    classes: dict[str, ClassFacts] = field(default_factory=dict)
    #: module-level name -> {"mutable": bool, "rebound": bool}
    module_globals: dict[str, dict] = field(default_factory=dict)
    #: import alias -> dotted target (lets the index chase re-exports)
    imports: dict[str, str] = field(default_factory=dict)
    line_suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    file_suppressions: frozenset[str] = _EMPTY

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "digest": self.digest,
            "functions": {q: f.to_dict() for q, f in sorted(self.functions.items())},
            "classes": {q: c.to_dict() for q, c in sorted(self.classes.items())},
            "globals": {n: g for n, g in sorted(self.module_globals.items())},
            "imports": dict(sorted(self.imports.items())),
            "line_supp": {str(k): sorted(v) for k, v in self.line_suppressions.items()},
            "file_supp": sorted(self.file_suppressions),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ModuleFacts":
        return cls(
            path=raw["path"],
            module=raw["module"],
            digest=raw["digest"],
            functions={
                q: FunctionFacts.from_dict(f) for q, f in raw["functions"].items()
            },
            classes={q: ClassFacts.from_dict(c) for q, c in raw["classes"].items()},
            module_globals=dict(raw["globals"]),
            imports=dict(raw["imports"]),
            line_suppressions={
                int(k): frozenset(v) for k, v in raw["line_supp"].items()
            },
            file_suppressions=frozenset(raw["file_supp"]),
        )

    def suppressed(self, checker_id: str, line: int) -> bool:
        return checker_id in self.file_suppressions or checker_id in (
            self.line_suppressions.get(line) or frozenset()
        )


# --------------------------------------------------------------- walking


def _walk_own(nodes: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Walk ``nodes`` without descending into nested scope bodies.

    Nested function/class *bodies* belong to their own scopes, but their
    decorators and default-argument expressions evaluate in the enclosing
    scope — those subtrees are walked here.
    """
    stack = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield node
            stack.extend(node.decorator_list)
            if not isinstance(node, ast.ClassDef):
                stack.extend(node.args.defaults)
                stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        if isinstance(node, ast.Lambda):
            yield node
            stack.extend(node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _last_segment(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class _Scope:
    """Per-function extraction state."""

    def __init__(
        self,
        qualname: str,
        params: tuple[str, ...],
        is_method: bool,
        cls: str | None,
        parent: "_Scope | None",
    ) -> None:
        self.qualname = qualname
        self.params = {name: index for index, name in enumerate(params)}
        self.is_method = is_method
        self.cls = cls
        self.parent = parent
        self.env: dict[str, set[Atom]] = {}
        self.set_locals: set[str] = set()
        self.global_decls: set[str] = set()
        self.funcrefs: dict[str, str] = {}
        self.site_ids: dict[int, int] = {}
        self.lambda_names: dict[int, str] = {}

    def lookup_funcref(self, name: str) -> str | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.funcrefs:
                return scope.funcrefs[name]
            scope = scope.parent
        return None


class Extractor:
    """Compiles one :class:`ParsedModule` into :class:`ModuleFacts`."""

    def __init__(self, parsed: ParsedModule, config: AnalysisConfig) -> None:
        self.parsed = parsed
        self.config = config
        self.module = parsed.module
        self.imports: dict[str, str] = {}
        self.module_defs: dict[str, str] = {}  # name -> qualname (def/class)
        self.module_classes: set[str] = set()
        self.facts = ModuleFacts(
            path=parsed.path,
            module=parsed.module,
            digest="",
            line_suppressions=dict(parsed.line_suppressions),
            file_suppressions=parsed.file_suppressions,
        )

    # -------------------------------------------------------------- entry

    def run(self, digest: str) -> ModuleFacts:
        self.facts.digest = digest
        tree = self.parsed.tree
        self._collect_imports(tree.body)
        self._collect_module_names(tree.body)
        self.facts.imports = dict(self.imports)
        # Module body is a pseudo-function: module-level calls, sinks, and
        # decorator applications live there.
        module_scope = self._function(
            qualname=f"{self.module}.<module>",
            node_line=1,
            params=(),
            body=tree.body,
            is_method=False,
            cls=None,
            parent=None,
            decorators=(),
        )
        self._mark_rebound_globals()
        del module_scope
        return self.facts

    # ------------------------------------------------- module-level names

    def _collect_imports(self, body: list[ast.stmt]) -> None:
        """Alias → dotted target, including conditional/guarded imports."""
        stack = list(body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[name] = target
            elif isinstance(stmt, ast.ImportFrom):
                base = self._resolve_from(stmt)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    self.imports[name] = f"{base}.{alias.name}" if base else alias.name
            elif isinstance(stmt, (ast.If, ast.Try)):
                stack.extend(getattr(stmt, "body", []))
                stack.extend(getattr(stmt, "orelse", []))
                for handler in getattr(stmt, "handlers", []):
                    stack.extend(handler.body)
                stack.extend(getattr(stmt, "finalbody", []))

    def _resolve_from(self, stmt: ast.ImportFrom) -> str:
        if stmt.level == 0:
            return stmt.module or ""
        # Relative import: strip `level` trailing segments off the package.
        parts = self.module.split(".")
        package = parts[: len(parts) - stmt.level]
        if stmt.module:
            package = package + stmt.module.split(".")
        return ".".join(package)

    def _collect_module_names(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_defs[stmt.name] = f"{self.module}.{stmt.name}"
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{self.module}.{stmt.name}"
                self.module_defs[stmt.name] = qualname
                self.module_classes.add(qualname)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    for name_node in self._target_names(target):
                        info = self.facts.module_globals.setdefault(
                            name_node.id, {"mutable": False, "rebound": False}
                        )
                        value = getattr(stmt, "value", None)
                        if value is not None and self._is_mutable_value(value):
                            info["mutable"] = True

    @staticmethod
    def _target_names(target: ast.expr) -> Iterator[ast.Name]:
        if isinstance(target, ast.Name):
            yield target
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from Extractor._target_names(element)
        elif isinstance(target, ast.Starred):
            yield from Extractor._target_names(target.value)

    @staticmethod
    def _is_mutable_value(value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(value, ast.Call):
            callee = _last_segment(value.func)
            return callee not in {"frozenset", "tuple", "namedtuple", "TypeVar"}
        return False

    def _mark_rebound_globals(self) -> None:
        for facts in self.facts.functions.values():
            for name in facts.global_decls:
                info = self.facts.module_globals.setdefault(
                    name, {"mutable": False, "rebound": False}
                )
                info["rebound"] = True

    # ----------------------------------------------------------- function

    def _function(
        self,
        qualname: str,
        node_line: int,
        params: tuple[str, ...],
        body: list[ast.stmt],
        is_method: bool,
        cls: str | None,
        parent: "_Scope | None",
        decorators: tuple[str, ...],
    ) -> _Scope:
        scope = _Scope(qualname, params, is_method, cls, parent)
        facts = FunctionFacts(
            qualname=qualname,
            module=self.module,
            path=self.facts.path,
            line=node_line,
            params=params,
            is_method=is_method,
            cls=cls,
            decorators=decorators,
        )
        self.facts.functions[qualname] = facts
        own = list(_walk_own(body))
        # Nested scopes first: their names become funcref atoms here.
        for node in own:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_q = self._nested_qualname(scope, node.name)
                scope.funcrefs[node.name] = child_q
                self._def_function(node, child_q, is_method=False, cls=None, parent=scope)
            elif isinstance(node, ast.ClassDef):
                self._class(node, scope)
            elif isinstance(node, ast.Lambda):
                child_q = (
                    f"{self._scope_base(scope)}.<lambda L{node.lineno}C{node.col_offset}>"
                )
                scope.lambda_names[id(node)] = child_q
                self._lambda(node, child_q, scope)
        # Deterministic call-site ids, in source order.
        for index, node in enumerate(
            sorted(
                (n for n in own if isinstance(n, ast.Call)),
                key=lambda n: (n.lineno, n.col_offset),
            )
        ):
            scope.site_ids[id(node)] = index
        self._env_fixpoint(scope, body)
        self._collect(scope, facts, body, own)
        return scope

    def _scope_base(self, scope: _Scope) -> str:
        if scope.qualname.endswith(".<module>"):
            return self.module
        return scope.qualname

    def _nested_qualname(self, scope: _Scope, name: str) -> str:
        if scope.qualname.endswith(".<module>"):
            return f"{self.module}.{name}"
        return f"{scope.qualname}.<locals>.{name}"

    def _def_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        is_method: bool,
        cls: str | None,
        parent: "_Scope | None",
    ) -> None:
        args = node.args
        names = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        decorators = tuple(
            d for d in (self._decorator_name(expr) for expr in node.decorator_list) if d
        )
        if is_method and ("staticmethod" in decorators or "classmethod" in decorators):
            is_method = False
        self._function(
            qualname=qualname,
            node_line=node.lineno,
            params=tuple(names),
            body=node.body,
            is_method=is_method,
            cls=cls,
            parent=parent,
            decorators=decorators,
        )

    def _decorator_name(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Call):
            expr = expr.func
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            dotted = self._dotted(None, expr)
            return dotted or expr.attr
        return None

    def _lambda(self, node: ast.Lambda, qualname: str, parent: _Scope) -> None:
        args = node.args
        names = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        self._function(
            qualname=qualname,
            node_line=node.lineno,
            params=tuple(names),
            body=[ast.Return(value=node.body, lineno=node.lineno, col_offset=node.col_offset)],
            is_method=False,
            cls=None,
            parent=parent,
            decorators=(),
        )

    def _class(self, node: ast.ClassDef, scope: _Scope) -> None:
        if scope.qualname.endswith(".<module>"):
            qualname = f"{self.module}.{node.name}"
        else:
            qualname = f"{scope.qualname}.<locals>.{node.name}"
        bases = []
        for base in node.bases:
            dotted = self._dotted(None, base)
            if dotted:
                bases.append(dotted)
            elif isinstance(base, ast.Name):
                bases.append(self.module_defs.get(base.id, base.id))
        cls_facts = ClassFacts(qualname=qualname, line=node.lineno, bases=tuple(bases))
        self.facts.classes[qualname] = cls_facts
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_q = f"{qualname}.{stmt.name}"
                cls_facts.methods[stmt.name] = method_q
                self._def_function(
                    stmt, method_q, is_method=True, cls=qualname, parent=scope
                )
            elif isinstance(stmt, ast.ClassDef):
                self._class_nested(stmt, qualname, scope)

    def _class_nested(self, node: ast.ClassDef, outer: str, scope: _Scope) -> None:
        qualname = f"{outer}.{node.name}"
        cls_facts = ClassFacts(qualname=qualname, line=node.lineno)
        self.facts.classes[qualname] = cls_facts
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_q = f"{qualname}.{stmt.name}"
                cls_facts.methods[stmt.name] = method_q
                self._def_function(
                    stmt, method_q, is_method=True, cls=qualname, parent=scope
                )

    # ------------------------------------------------------ env fixpoint

    def _env_fixpoint(self, scope: _Scope, body: list[ast.stmt]) -> None:
        for _ in range(8):
            self._changed = False
            self._env_stmts(scope, body)
            if not self._changed:
                break

    def _bind(self, scope: _Scope, name: str, atoms: AtomSet) -> None:
        current = scope.env.setdefault(name, set())
        before = len(current)
        current.update(atoms)
        if len(current) != before:
            self._changed = True

    def _bind_target(self, scope: _Scope, target: ast.expr, atoms: AtomSet) -> None:
        if isinstance(target, ast.Name):
            self._bind(scope, target.id, atoms)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(scope, element, atoms)
        elif isinstance(target, ast.Starred):
            self._bind_target(scope, target.value, atoms)
        # Attribute/Subscript targets are mutations, collected later.

    def _bind_unpacked(
        self, scope: _Scope, target: ast.expr, value: ast.expr, loop: bool = False
    ) -> None:
        """Bind an assignment/loop target, positionally when the value is
        a literal tuple (or a literal sequence of same-arity tuples, the
        ``for name, thing in (("a", x), ("b", y))`` idiom) — otherwise
        every target name gets the union, the conservative fallback.

        ``loop=True`` means ``value`` is the thing *iterated*, so only
        the rows-of-tuples shape may bind positionally."""
        if isinstance(target, ast.Tuple) and not any(
            isinstance(element, ast.Starred) for element in target.elts
        ):
            width = len(target.elts)
            columns: list[list[ast.expr]] | None = None
            if not loop and isinstance(value, ast.Tuple) and len(value.elts) == width:
                columns = [[element] for element in value.elts]
            elif loop and isinstance(value, (ast.Tuple, ast.List)) and value.elts:
                rows = value.elts
                if all(
                    isinstance(row, ast.Tuple) and len(row.elts) == width
                    for row in rows
                ):
                    columns = [[row.elts[j] for row in rows] for j in range(width)]
            if columns is not None:
                for element, column in zip(target.elts, columns):
                    merged: set[Atom] = set()
                    for expr in column:
                        merged |= self._atoms(scope, expr)
                    self._bind_target(scope, element, frozenset(merged))
                return
        self._bind_target(scope, target, self._atoms(scope, value))

    def _env_stmts(self, scope: _Scope, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._bind_unpacked(scope, target, stmt.value)
                self._note_set_valued(scope, stmt.targets, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                atoms = self._atoms(scope, stmt.value)
                self._bind_target(scope, stmt.target, atoms)
                self._note_set_valued(scope, [stmt.target], stmt.value)
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    self._bind(scope, stmt.target.id, self._atoms(scope, stmt.value))
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._bind_unpacked(scope, stmt.target, stmt.iter, loop=True)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._bind_target(
                            scope,
                            item.optional_vars,
                            self._atoms(scope, item.context_expr),
                        )
            elif isinstance(stmt, ast.Global):
                if not scope.global_decls.issuperset(stmt.names):
                    scope.global_decls.update(stmt.names)
                    self._changed = True
            elif isinstance(stmt, (ast.Expr, ast.Return)):
                if stmt.value is not None:
                    self._atoms(scope, stmt.value)  # walrus bindings
            # Recurse into compound statements.
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if inner:
                    self._env_stmts(scope, inner)
            for handler in getattr(stmt, "handlers", []) or []:
                if handler.name:
                    self._bind(scope, handler.name, _EMPTY)
                self._env_stmts(scope, handler.body)

    def _note_set_valued(
        self, scope: _Scope, targets: list[ast.expr], value: ast.expr
    ) -> None:
        if not self._is_set_valued(scope, value):
            return
        for target in targets:
            for name_node in self._target_names(target):
                if name_node.id not in scope.set_locals:
                    scope.set_locals.add(name_node.id)
                    self._changed = True

    def _is_set_valued(self, scope: _Scope, value: ast.expr) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call) and _last_segment(value.func) == "set":
            return True
        if isinstance(value, ast.Name) and value.id in scope.set_locals:
            return True
        if isinstance(value, ast.BinOp) and isinstance(value.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return self._is_set_valued(scope, value.left) or self._is_set_valued(
                scope, value.right
            )
        return False

    # ------------------------------------------------------------- atoms

    def _atoms(self, scope: _Scope, node: ast.expr, overlay: dict | None = None) -> AtomSet:
        config = self.config
        if isinstance(node, ast.Name):
            return self._name_atoms(scope, node, overlay)
        if isinstance(node, ast.Attribute):
            result: set[Atom] = set()
            if node.attr in config.lint.identity_names:
                result.add(("source", node.attr))
            dotted = self._dotted(scope, node)
            if dotted is not None:
                if config.in_project(dotted):
                    result.add(("global", dotted))
                return frozenset(result)
            result |= self._atoms(scope, node.value, overlay)
            return frozenset(result)
        if isinstance(node, ast.Call):
            callee = _last_segment(node.func)
            if callee in config.lint.sanitizers:
                return _EMPTY
            site = scope.site_ids.get(id(node))
            if site is None:  # a call inside a nested scope's subtree
                return _EMPTY
            return frozenset({("call", site)})
        if isinstance(node, ast.Lambda):
            qualname = scope.lambda_names.get(id(node))
            return frozenset({("func", qualname)}) if qualname else _EMPTY
        if isinstance(node, ast.NamedExpr):
            atoms = self._atoms(scope, node.value, overlay)
            if isinstance(node.target, ast.Name):
                self._bind(scope, node.target.id, atoms)
            return atoms
        if isinstance(node, ast.Subscript):
            # ``d[k]`` is a member of ``d``; the key's atoms say nothing
            # about what comes out (and polluting the result with them
            # breaks object-identity reasoning for mutations).
            return self._atoms(scope, node.value, overlay)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            local = dict(overlay or {})
            for generator in node.generators:
                iter_atoms = self._atoms(scope, generator.iter, local)
                for name_node in self._target_names(generator.target):
                    local[name_node.id] = iter_atoms
                    # Also register in env so later bare reads of the
                    # target (e.g. the global-read sweep) see a local,
                    # not a phantom module global.
                    self._bind(scope, name_node.id, iter_atoms)
            parts: set[Atom] = set()
            if isinstance(node, ast.DictComp):
                parts |= self._atoms(scope, node.key, local)
                parts |= self._atoms(scope, node.value, local)
            else:
                parts |= self._atoms(scope, node.elt, local)
            for generator in node.generators:
                for condition in generator.ifs:
                    parts |= self._atoms(scope, condition, local)
            return frozenset(parts)
        # Generic union over child expressions (covers BinOp, BoolOp,
        # IfExp, JoinedStr, Subscript, Starred, Tuple, Dict, Compare, …).
        parts = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                parts |= self._atoms(scope, child, overlay)
        return frozenset(parts)

    def _name_atoms(
        self, scope: _Scope, node: ast.Name, overlay: dict | None
    ) -> AtomSet:
        name = node.id
        config = self.config
        result: set[Atom] = set()
        if name in config.lint.identity_names:
            result.add(("source", name))
        if overlay and name in overlay:
            result |= overlay[name]
            return frozenset(result)
        bound = False
        if name in scope.params:
            result.add(("param", scope.params[name]))
            bound = True
        if name in scope.env:
            result |= scope.env[name]
            bound = True
        if bound:
            return frozenset(result)
        funcref = scope.lookup_funcref(name)
        if funcref is not None:
            result.add(("func", funcref))
            return frozenset(result)
        if name in self.module_defs:
            result.add(("func", self.module_defs[name]))
            return frozenset(result)
        if name in self.imports:
            dotted = self.imports[name]
            if config.in_project(dotted):
                result.add(("global", dotted))
            return frozenset(result)
        if name in self.facts.module_globals or not hasattr(builtins, name):
            result.add(("global", f"{self.module}.{name}"))
        return frozenset(result)

    def _dotted(self, scope: _Scope | None, node: ast.expr) -> str | None:
        """Dotted path of an import-rooted attribute chain, else None."""
        if isinstance(node, ast.Attribute):
            base = self._dotted(scope, node.value)
            return None if base is None else f"{base}.{node.attr}"
        if isinstance(node, ast.Name):
            name = node.id
            if scope is not None and (name in scope.params or name in scope.env):
                return None
            if name in self.imports:
                return self.imports[name]
            if name in self.module_defs:
                return self.module_defs[name]
            return None
        return None

    # ----------------------------------------------------------- collect

    def _collect(
        self,
        scope: _Scope,
        facts: FunctionFacts,
        body: list[ast.stmt],
        own: list[ast.AST],
    ) -> None:
        config = self.config
        returns: set[Atom] = set()
        global_reads: set[tuple[str, int, int]] = set()

        for node in own:
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) and getattr(
                node, "value", None
            ) is not None:
                returns |= self._atoms(scope, node.value)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._mutation_target(scope, facts, target)
            elif isinstance(node, ast.AnnAssign):
                self._mutation_target(scope, facts, node.target)
            elif isinstance(node, ast.AugAssign):
                self._mutation_target(scope, facts, node.target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        self._store_mutation(scope, facts, target, kind="delete")
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_unordered(scope, facts, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                if not self._order_insensitive(node, own):
                    for generator in node.generators:
                        self._check_unordered(scope, facts, generator.iter)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                for atom in self._name_atoms(scope, node, None):
                    if atom[0] == "global" and config.in_project(atom[1]):
                        global_reads.add((atom[1], node.lineno, node.col_offset))

        # Call sites (and the sinks they imply), in source order.
        calls = sorted(
            (n for n in own if isinstance(n, ast.Call)),
            key=lambda n: (n.lineno, n.col_offset),
        )
        for node in calls:
            site = self._call_site(scope, node)
            facts.calls.append(site)
            self._sinks_for(scope, facts, node, site)
            callee = site.callee
            method = callee.get("method") or (callee.get("target", "").rsplit(".", 1)[-1])
            if (
                callee["kind"] in ("method", "self")
                and callee["method"] in config.mutator_methods
                and site.recv
            ):
                facts.mutations.append(
                    MutationFact(
                        kind="mutate-call",
                        detail=callee["method"],
                        line=node.lineno,
                        col=node.col_offset,
                        atoms=site.recv,
                    )
                )
            del method

        for name in sorted(scope.global_decls):
            facts.mutations.append(
                MutationFact(
                    kind="global-write",
                    detail=f"{self.module}.{name}",
                    line=facts.line,
                    col=0,
                    atoms=frozenset({("global", f"{self.module}.{name}")}),
                )
            )
        facts.returns = frozenset(returns)
        facts.global_decls = tuple(sorted(scope.global_decls))
        facts.global_reads = sorted(global_reads)
        facts.mutations.sort(key=lambda m: (m.line, m.col, m.kind, m.detail))
        facts.sinks.sort(key=lambda s: (s.line, s.col, s.kind, s.name))
        del body

    def _mutation_target(
        self, scope: _Scope, facts: FunctionFacts, target: ast.expr
    ) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self._store_mutation(
                scope,
                facts,
                target,
                kind="attr-store" if isinstance(target, ast.Attribute) else "index-store",
            )
        elif isinstance(target, ast.Name) and target.id in scope.global_decls:
            dotted = f"{self.module}.{target.id}"
            facts.mutations.append(
                MutationFact(
                    kind="global-write",
                    detail=dotted,
                    line=target.lineno,
                    col=target.col_offset,
                    atoms=frozenset({("global", dotted)}),
                )
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mutation_target(scope, facts, element)

    def _store_mutation(
        self, scope: _Scope, facts: FunctionFacts, target: ast.expr, kind: str
    ) -> None:
        base = target.value  # type: ignore[attr-defined]
        detail = target.attr if isinstance(target, ast.Attribute) else "[]"
        atoms = self._atoms(scope, base)
        facts.mutations.append(
            MutationFact(
                kind=kind,
                detail=detail,
                line=target.lineno,
                col=target.col_offset,
                atoms=atoms,
            )
        )

    #: Consumers for which element order cannot escape: flowing a set
    #: iteration into one of these is deterministic by construction.
    _ORDER_INSENSITIVE_CALLS = frozenset(
        {"sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len"}
    )

    def _order_insensitive(self, node: ast.AST, own: list[ast.AST]) -> bool:
        """True when a comprehension's iteration order cannot be observed:
        it *is* (or feeds, through nested comprehensions only) a set/dict
        display or an order-insensitive reduction like ``sorted``."""
        if isinstance(node, (ast.SetComp, ast.DictComp)):
            return True
        parents: dict[int, ast.AST] = {}
        for candidate in own:
            for child in ast.iter_child_nodes(candidate):
                parents.setdefault(id(child), candidate)
        current = node
        while True:
            parent = parents.get(id(current))
            if parent is None:
                return False
            if isinstance(parent, (ast.SetComp, ast.DictComp)):
                return True
            if isinstance(parent, ast.Call) and current in parent.args:
                return _last_segment(parent.func) in self._ORDER_INSENSITIVE_CALLS
            if isinstance(
                parent, (ast.GeneratorExp, ast.ListComp, ast.comprehension)
            ):
                current = parent
                continue
            return False

    def _check_unordered(
        self, scope: _Scope, facts: FunctionFacts, iterable: ast.expr
    ) -> None:
        if self._is_set_valued(scope, iterable):
            name = (
                iterable.id
                if isinstance(iterable, ast.Name)
                else iterable.__class__.__name__
            )
            facts.unordered.append((name, iterable.lineno, iterable.col_offset))

    # -------------------------------------------------------- call sites

    def _call_site(self, scope: _Scope, node: ast.Call) -> CallSite:
        callee = self._callee_ref(scope, node.func)
        recv: AtomSet | None = None
        if callee["kind"] in ("method", "self") and isinstance(node.func, ast.Attribute):
            recv = self._atoms(scope, node.func.value)
        args: list[AtomSet] = []
        spill: set[Atom] = set()
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                spill |= self._atoms(scope, arg.value)
            else:
                args.append(self._atoms(scope, arg))
        kwargs: dict[str, AtomSet] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                spill |= self._atoms(scope, keyword.value)
            else:
                kwargs[keyword.arg] = self._atoms(scope, keyword.value)
        return CallSite(
            site_id=scope.site_ids[id(node)],
            line=node.lineno,
            col=node.col_offset,
            callee=callee,
            recv=recv,
            args=tuple(args),
            kwargs=kwargs,
            spill=frozenset(spill),
        )

    def _callee_ref(self, scope: _Scope, func: ast.expr) -> dict:
        if isinstance(func, ast.Name):
            name = func.id
            env_targets = sorted(
                atom[1]
                for atom in scope.env.get(name, ())
                if atom[0] == "func"
            )
            if env_targets:
                return {"kind": "local", "targets": env_targets}
            funcref = scope.lookup_funcref(name)
            if funcref is not None:
                return {"kind": "local", "targets": [funcref]}
            if name in self.module_defs:
                return {"kind": "dotted", "target": self.module_defs[name]}
            if name in self.imports:
                return {"kind": "dotted", "target": self.imports[name]}
            if hasattr(builtins, name):
                return {"kind": "builtin", "name": name}
            return {"kind": "unknown", "name": name}
        if isinstance(func, ast.Attribute):
            dotted = self._dotted(scope, func)
            if dotted is not None:
                return {"kind": "dotted", "target": dotted}
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and scope.is_method
                and scope.cls is not None
            ):
                return {"kind": "self", "cls": scope.cls, "method": func.attr}
            return {"kind": "method", "method": func.attr}
        return {"kind": "unknown", "name": func.__class__.__name__}

    # -------------------------------------------------------------- sinks

    def _sinks_for(
        self, scope: _Scope, facts: FunctionFacts, node: ast.Call, site: CallSite
    ) -> None:
        config = self.config
        callee_name = _last_segment(node.func)
        if callee_name in config.lint.sink_names:
            for label, atoms in self._site_values(site):
                if atoms:
                    facts.sinks.append(
                        SinkFact(
                            kind="sink",
                            name=callee_name,
                            label=label,
                            line=node.lineno,
                            col=node.col_offset,
                            atoms=atoms,
                        )
                    )
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in config.lint.telemetry_methods
            and _last_segment(node.func.value) in config.lint.telemetry_receivers
        ):
            for label, atoms in site.kwargs.items():
                if label in config.lint.telemetry_value_params or not atoms:
                    continue
                facts.sinks.append(
                    SinkFact(
                        kind="telemetry-label",
                        name=node.func.attr,
                        label=label,
                        line=node.lineno,
                        col=node.col_offset,
                        atoms=atoms,
                    )
                )
            return
        if callee_name in config.log_methods and (
            callee_name == "print" or isinstance(node.func, ast.Attribute)
        ):
            for label, atoms in self._site_values(site):
                if atoms:
                    facts.sinks.append(
                        SinkFact(
                            kind="log",
                            name=callee_name,
                            label=label,
                            line=node.lineno,
                            col=node.col_offset,
                            atoms=atoms,
                        )
                    )
            return
        if callee_name in config.export_sink_names:
            for label, atoms in self._site_values(site):
                if atoms:
                    facts.sinks.append(
                        SinkFact(
                            kind="export",
                            name=callee_name,
                            label=label,
                            line=node.lineno,
                            col=node.col_offset,
                            atoms=atoms,
                        )
                    )

    @staticmethod
    def _site_values(site: CallSite) -> Iterator[tuple[str | None, AtomSet]]:
        for index, atoms in enumerate(site.args):
            yield (str(index), atoms)
        for label, atoms in sorted(site.kwargs.items()):
            yield (label, atoms)
        if site.spill:
            yield ("*", site.spill)


def extract(parsed: ParsedModule, config: AnalysisConfig, digest: str) -> ModuleFacts:
    """Compile one parsed module into its serializable fact set."""
    return Extractor(parsed, config).run(digest)
