"""Regenerate the paper's Section 2 measurement study.

Crawls the three synthetic review services (calibrated to the paper's
published statistics), plus the Google Play / YouTube engagement models,
and prints Table 1 and all three panels of Figure 1 as ASCII.

    python examples/measurement_study.py
"""

from __future__ import annotations

from repro.measurement import (
    all_service_specs,
    crawl_service,
    example_query,
    figure1a,
    figure1b,
    figure1c,
    google_play_spec,
    measure_engagement,
    table1,
    youtube_spec,
)

SEED = 2016


def main() -> None:
    print("Crawling Yelp, Angie's List, and Healthgrades "
          "(50 most-populous zipcodes x per-service categories)...\n")
    crawls = [crawl_service(spec, seed=SEED) for spec in all_service_specs()]

    print(table1(crawls).render())

    fig_a = figure1a(crawls)
    print("\nFigure 1(a): distribution across entities of number of reviews")
    print(fig_a.render())
    paper_medians = {"Yelp": 25, "Angie's List": 8, "Healthgrades": 5}
    for service, paper_median in paper_medians.items():
        print(f"  median reviews on {service}: {fig_a.median(service):.0f}"
              f"  (paper: {paper_median})")

    fig_b = figure1b(crawls)
    print("\nFigure 1(b): entities with >= 50 reviews per query")
    print(fig_b.render())
    for service in ("Yelp", "Angie's List", "Healthgrades"):
        print(f"  median well-reviewed results on {service}: {fig_b.median(service):.0f}")

    yelp, healthgrades = crawls[0], crawls[2]
    philly = example_query(yelp, "19120", "chinese")
    corona = example_query(healthgrades, "11368", "dentist")
    print("\nThe paper's named example queries:")
    print(f"  Chinese near 19120 (Philadelphia): {philly.n_entities} results, "
          f"{philly.n_well_reviewed} with >= 50 reviews (paper: 127 / 4)")
    print(f"  Dentists near 11368 (New York):    {corona.n_entities} results, "
          f"{corona.n_well_reviewed} with >= 50 reviews (paper: 248 / 13)")

    print("\nMeasuring explicit vs implicit engagement (1000 apps, 1000 videos)...")
    engagement = [
        measure_engagement(google_play_spec(), seed=SEED),
        measure_engagement(youtube_spec(), seed=SEED),
    ]
    fig_c = figure1c(engagement)
    print("\nFigure 1(c): explicit vs implicit interaction")
    print(fig_c.render())
    for dataset in engagement:
        print(f"  {dataset.service}: median {dataset.implicit_label} "
              f"{dataset.median_implicit():,.0f} vs median {dataset.explicit_label} "
              f"{dataset.median_explicit():,.0f} -> gap {dataset.median_gap():.0f}x "
              f"(paper: more than an order of magnitude)")


if __name__ == "__main__":
    main()
