"""Fraud red team: the Section 4.3 attacker zoo vs the typical-user detector.

Builds an honest store from a simulated population, merges it into
typical-user profiles, then stages every attack the paper describes and
prints the detection matrix with each attack's cost.

    python examples/fraud_redteam.py
"""

from __future__ import annotations

from repro.fraud.attackers import (
    CallSpamAttacker,
    EmployeeAttacker,
    MimicAttacker,
    SybilAttacker,
)
from repro.fraud.detector import FraudDetector
from repro.fraud.profiles import build_profiles
from repro.privacy.anonymity import batching_network
from repro.privacy.history_store import HistoryStore
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.uploads import UploadScheduler, hardened_config
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.resolution import EntityResolver
from repro.sensing.sensors import generate_trace
from repro.util.clock import DAY
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.entities import EntityKind
from repro.world.population import TownConfig, build_town

SEED = 11


def judge(detector, uploads):
    store = HistoryStore()
    for upload in uploads:
        store.append(upload, arrival_time=upload.event_time)
    [history] = store.all_histories()
    return detector.judge(history)


def main() -> None:
    print("Building the honest baseline: 90 users, 8 months of activity...")
    town = build_town(TownConfig(n_users=90), seed=SEED)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=240), seed=SEED
    ).run()
    horizon = 240 * DAY

    resolver = EntityResolver(town.entities)
    network = batching_network(seed=SEED)
    store = HistoryStore()
    for index, user in enumerate(town.users):
        trace = generate_trace(user.user_id, town, result, horizon,
                               duty_cycled_policy(), seed=SEED)
        UploadScheduler(
            DeviceIdentity.create(user.user_id, seed=index), hardened_config(), seed=index
        ).submit_all(resolver.resolve(trace), network)
    for delivery in network.deliveries_until(horizon + 3 * DAY):
        store.append(delivery.payload, arrival_time=delivery.arrival_time)

    kinds = {entity.entity_id: entity.kind.label for entity in town.entities}
    profiles = build_profiles(store, kinds)
    detector = FraudDetector(profiles, kinds)
    _, rejected = detector.filter_store(store)
    print(f"Merged {store.n_histories} anonymous histories into "
          f"{len(profiles)} typical-user profiles "
          f"(honest false-positive rate: {len(rejected)/store.n_histories:.1%}).\n")

    restaurant = town.entities_of_kind(EntityKind.RESTAURANT)[0].entity_id
    plumber = town.entities_of_kind(EntityKind.PLUMBER)[0].entity_id
    dentist = town.entities_of_kind(EntityKind.DENTIST)[0].entity_id

    print("-- Red team " + "-" * 56)

    spam = CallSpamAttacker().generate(DeviceIdentity.create("spam", seed=1), plumber, 10 * DAY)
    verdict = judge(detector, spam.uploads)
    print(f"\ncall spammer ({spam.cost.n_interactions} hang-up calls to a plumber "
          f"in {spam.cost.wall_clock_days:.1f} days, "
          f"{spam.cost.active_effort/60:.0f} min of effort):")
    print(f"  -> {'DETECTED: ' + ', '.join(f.value for f in verdict.flags) if verdict.suspicious else 'evaded'}")

    employee = EmployeeAttacker(n_days=60).generate(
        DeviceIdentity.create("emp", seed=2), restaurant, 5 * DAY
    )
    verdict = judge(detector, employee.uploads)
    print(f"\nrestaurant employee (8h daily presence for {employee.cost.n_interactions} days):")
    print(f"  -> {'DETECTED: ' + ', '.join(f.value for f in verdict.flags) if verdict.suspicious else 'evaded'}")

    sybils = SybilAttacker(n_devices=15).generate_all(restaurant, 0.0, seed=3)
    judged = sum(1 for s in sybils if judge(detector, s.uploads).judged)
    print(f"\nsybil swarm (15 devices x 2 plausible visits):")
    print(f"  -> {judged} of 15 histories even judgeable; each is a 2-interaction "
          f"history with negligible influence, and every device burned "
          f"registration + daily token quota")

    mimic = MimicAttacker().generate(
        DeviceIdentity.create("mimic", seed=4), dentist, 0.0, profiles["dentist"]
    )
    verdict = judge(detector, mimic.uploads)
    print(f"\nprofile mimic (statistically faithful dentist patient):")
    print(f"  -> {'detected' if verdict.suspicious else 'EVADED'} — but it cost "
          f"{mimic.cost.wall_clock_days:.0f} days of calendar time and "
          f"{mimic.cost.active_effort/3600:.1f} hours physically in the chair "
          f"to fake ONE endorsement")

    print("\nConclusion: cheap attacks are detected; undetectable attacks cost "
          "as much as being a real customer — the paper's economic defense.")


if __name__ == "__main__":
    main()
