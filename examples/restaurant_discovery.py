"""The dentist scenario of Figure 3, run as a product feature.

Builds the paper's three-dentist situation (A: few repeat patients;
B: earned loyalty, patients travel; C: captive local clientele), pushes
everything through the real pipeline — device traces, stay-point
extraction, entity resolution, anonymous uploads — and prints the
comparative visualizations a user searching for a dentist would see.

    python examples/restaurant_discovery.py
"""

from __future__ import annotations

from repro.core.visualization import compare_entities
from repro.privacy.anonymity import batching_network
from repro.privacy.history_store import HistoryStore
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.uploads import UploadScheduler, hardened_config
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.resolution import EntityResolver
from repro.sensing.sensors import generate_trace
from repro.util.clock import DAY
from repro.world.scenarios import (
    DENTIST_A,
    DENTIST_B,
    DENTIST_C,
    Figure3Config,
    figure3_town,
)


def main() -> None:
    config = Figure3Config()
    print("Simulating two years of dental care in a three-dentist town...")
    scenario = figure3_town(config)
    result = scenario.simulate(config.seed)
    horizon = config.duration_days * DAY

    print("Sensing, resolving, and anonymously uploading every user's activity...")
    resolver = EntityResolver(scenario.town.entities)
    network = batching_network(seed=config.seed)
    store = HistoryStore()
    for index, user in enumerate(scenario.town.users):
        trace = generate_trace(
            user.user_id, scenario.town, result, horizon,
            duty_cycled_policy(), seed=config.seed,
        )
        interactions = resolver.resolve(trace)
        identity = DeviceIdentity.create(user.user_id, seed=index)
        UploadScheduler(identity, hardened_config(), seed=index).submit_all(
            interactions, network
        )
    for delivery in network.deliveries_until(horizon + 3 * DAY):
        store.append(delivery.payload, arrival_time=delivery.arrival_time)
    print(f"The RSP now holds {store.n_histories} anonymous histories "
          f"({store.n_records} interaction records).\n")

    viz = compare_entities(
        {d: store.histories_for_entity(d) for d in (DENTIST_A, DENTIST_B, DENTIST_C)}
    )
    print(viz.render())

    print("\nWhat the visualizations reveal (the paper's Figure 3 reading):")
    for dentist, story in (
        (DENTIST_A, "almost no repeat patients — people try it once and leave"),
        (DENTIST_B, "repeat patients who travel far: effort is endorsement"),
        (DENTIST_C, "repeat patients who live next door: convenience, not loyalty"),
    ):
        histogram = viz.histograms[dentist]
        series = viz.distance_series[dentist]
        print(f"  {dentist}: repeat fraction {histogram.repeat_fraction:.2f}, "
              f"distance-visits correlation {series.correlation:+.2f} -> {story}")


if __name__ == "__main__":
    main()
