"""Privacy audit: run the de-anonymization attacks against the upload path.

Plays the adversarial RSP of Section 4.2 against four client
configurations (channel reuse x upload timing) and against the
record-identifier scheme, reporting which designs leak and which hold.

    python examples/privacy_audit.py
"""

from __future__ import annotations

from repro.privacy.anonymity import batching_network, immediate_network
from repro.privacy.attacks import (
    corruption_attack,
    expected_guesses_for_collision,
    linkage_attack,
    timing_attack,
)
from repro.privacy.history_store import HistoryStore
from repro.privacy.identifiers import DeviceIdentity
from repro.privacy.uploads import UploadConfig, UploadScheduler
from repro.sensing.policy import duty_cycled_policy
from repro.sensing.resolution import EntityResolver
from repro.sensing.sensors import generate_trace
from repro.util.clock import DAY, HOUR
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

SEED = 7


def run_configuration(town, result, horizon, upload_config, batching):
    resolver = EntityResolver(town.entities)
    network = (
        batching_network(6 * HOUR, seed=SEED) if batching else immediate_network(seed=SEED)
    )
    true_owner, activity = {}, {}
    for index, user in enumerate(town.users):
        trace = generate_trace(user.user_id, town, result, horizon,
                               duty_cycled_policy(), seed=SEED)
        interactions = resolver.resolve(trace)
        identity = DeviceIdentity.create(user.user_id, seed=index)
        UploadScheduler(identity, upload_config, seed=index).submit_all(
            interactions, network
        )
        for interaction in interactions:
            true_owner[identity.history_id(interaction.entity_id)] = user.user_id
        activity[user.user_id] = [i.time + i.duration for i in interactions]
    deliveries = network.deliveries_until(horizon + 3 * DAY)
    return (
        linkage_attack(deliveries, true_owner),
        timing_attack(deliveries, activity, true_owner),
    )


def main() -> None:
    print("Simulating 60 users for 90 days...")
    town = build_town(TownConfig(n_users=60), seed=SEED)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=90), seed=SEED
    ).run()
    horizon = 90 * DAY

    configurations = [
        ("NAIVE:    stable channel, immediate uploads",
         UploadConfig(max_upload_delay=0.0, time_granularity=1.0, reuse_channel_tag=True),
         False),
        ("HARDENED: fresh channels, batched async uploads (the paper's design)",
         UploadConfig(max_upload_delay=24 * HOUR, time_granularity=DAY,
                      reuse_channel_tag=False),
         True),
    ]

    print("\n-- Attacks on the upload path " + "-" * 40)
    for name, config, batching in configurations:
        linkage, timing = run_configuration(town, result, horizon, config, batching)
        print(f"\n{name}")
        print(f"  linkage attack:  {linkage.recall:.0%} of same-user history pairs linked")
        print(f"  timing attack:   {timing.accuracy:.0%} of histories attributed "
              f"(chance: {timing.random_baseline:.1%})")

    print("\n-- Attack on the record-identifier scheme " + "-" * 28)
    store = HistoryStore()
    victim = DeviceIdentity.create("victim", seed=99)
    from repro.privacy.history_store import InteractionUpload
    for index in range(200):
        store.append(
            InteractionUpload(
                history_id=DeviceIdentity.create(f"user-{index}", seed=index).history_id("dentist-1"),
                entity_id="dentist-1", interaction_type="visit",
                event_time=float(index), duration=3600.0, travel_km=1.0,
            ),
            arrival_time=float(index),
        )
    report = corruption_attack(store, "dentist-1", attempts=10_000, seed=1)
    print(f"  identifier guessing: {report.attempts:,} attempts, "
          f"{report.collisions} existing histories polluted")
    print(f"  analytic success probability: {report.analytic_success_probability:.1e}")
    print(f"  expected guesses for one collision: "
          f"{expected_guesses_for_collision(store.n_histories):.1e}")

    print("\nConclusion: the naive design leaks everything; the paper's design "
          "reduces both attacks to chance, and identifier guessing is hopeless.")


if __name__ == "__main__":
    main()
