"""A deployed RSP over time: epochs, corrections, personalization.

Runs the service the way it would actually operate — monthly client syncs
over half a year — then shows the user-facing features of Section 5:
the transparency log with a correction, and on-device personalized
re-ranking of a server search.

    python examples/lifecycle.py
"""

from __future__ import annotations

from repro.core.discovery import Query
from repro.orchestration.epochs import run_epochs
from repro.orchestration.pipeline import PipelineConfig
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

SEED = 21


def main() -> None:
    print("Simulating 70 users for 180 days...")
    town = build_town(TownConfig(n_users=70), seed=SEED)
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=180), seed=SEED
    ).run()

    print("Operating the RSP in six monthly epochs:\n")
    outcome = run_epochs(
        town, result, PipelineConfig(horizon_days=180.0, seed=SEED), n_epochs=6
    )
    print(f"{'epoch':>5} {'new records':>12} {'histories':>10} "
          f"{'opinions':>9} {'fraud-rejected':>15}")
    for report in outcome.reports:
        print(f"{report.epoch:>5} {report.new_records:>12} {report.total_histories:>10} "
              f"{report.n_opinions:>9} {report.maintenance.n_rejected_histories:>15}")

    server = outcome.server

    # Pick an active client and walk through the Section 5 features.
    client = max(outcome.clients.values(), key=lambda c: c.transparency.n_entries)
    print(f"\nTransparency log of {client.identity.device_id} "
          f"({client.transparency.n_entries} inferences):")
    for entry in client.transparency.audit()[:5]:
        rating = entry.effective_rating
        shown = f"{rating:.1f}*" if rating is not None else "abstained"
        print(f"  {entry.entity_id:24s} {shown:10s} ({entry.evidence})")

    rated = [e for e in client.transparency.audit() if e.effective_rating is not None]
    if rated:
        target = rated[0].entity_id
        print(f"\nThe user disagrees with the inference for {target} and corrects it to 1.0:")
        client.transparency.correct(target, 1.0)
        print(f"  effective rating now: {client.transparency.entry(target).effective_rating}")

        entity = town.entity(target)
        response = server.search(
            Query(category=entity.category, near=entity.location, radius_km=12.0)
        )
        print(f"\nServer ranking for {entity.category!r} near the corrected entity:")
        print(response.render(limit=5))
        print("\nSame results personalized on the user's device "
              "(their correction and travel tolerance applied):")
        for rank, personalized in enumerate(client.personalize_response(response)[:5], start=1):
            print(f"{rank:2d}. {personalized.entity_id:24s} "
                  f"server score {personalized.base.score:.2f} "
                  f"{personalized.personal_adjustment:+.2f} personal")


if __name__ == "__main__":
    main()
