"""Quickstart: simulate a town, run the RSP end to end, search for dinner.

Runs the complete architecture of the paper's Figure 2 on a small synthetic
town — behaviour simulation, on-device sensing and inference, anonymous
uploads, server-side fraud filtering and aggregation — then issues a search
query and prints what a user of the re-architected service would see.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.discovery import Query
from repro.orchestration.pipeline import PipelineConfig, run_full_pipeline
from repro.world.behavior import BehaviorConfig, BehaviorSimulator
from repro.world.population import TownConfig, build_town

SEED = 42


def main() -> None:
    print("1. Building a synthetic town (80 users, restaurants, doctors, plumbers)...")
    town = build_town(TownConfig(n_users=80), seed=SEED)

    print("2. Simulating 120 days of physical life...")
    result = BehaviorSimulator(
        town.users, town.entities, BehaviorConfig(duration_days=120), seed=SEED
    ).run()
    print(f"   {len(result.events)} ground-truth interactions, "
          f"but only {len(result.reviews)} reviews were ever posted.")

    print("3. Running the RSP: sensing -> inference -> anonymous upload -> aggregation...")
    outcome = run_full_pipeline(
        town, result, PipelineConfig(horizon_days=120.0, seed=SEED)
    )
    server = outcome.server
    print(f"   explicit reviews:   {server.n_explicit_reviews}")
    print(f"   inferred opinions:  {server.n_opinions}")
    print(f"   anonymous histories: {server.history_store.n_histories}")
    print(f"   opinion gain:       {outcome.coverage_gain():.1f}x")
    print(f"   inference MAE:      {outcome.mean_absolute_error:.2f} stars")

    print("\n4. Searching for Thai food near the town center...")
    center = town.grid.zones[len(town.grid.zones) // 2].center
    response = server.search(Query(category="thai", near=center, radius_km=10.0))
    print(response.render())

    if response.visualization is not None:
        print("\n5. Comparative visualizations for the top results:")
        print(response.visualization.render())


if __name__ == "__main__":
    main()
