# Developer entry points.  `make check` is the full gate CI runs.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check lint ruff test bench chaos

check:
	bash scripts/check.sh

lint:
	$(PYTHON) -m repro.lint src/repro

ruff:
	ruff check .

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Fault-matrix suite: the upload pipeline under scripted drops, outages,
# crashes, and skew (tests/faults), plus the containment lint rule.
chaos:
	$(PYTHON) -m repro.lint src/repro --select faults-only-in-harness
	$(PYTHON) -m pytest tests/faults -q
