# Developer entry points.  `make check` is the full gate CI runs.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check lint ruff test bench chaos scale bench-shards telemetry bench-telemetry incremental bench-incremental analyze bench-analyze durable bench-durable ingest bench-ingest serve bench-serve reshard bench-reshard

check:
	bash scripts/check.sh

lint:
	$(PYTHON) -m repro.lint src/repro

ruff:
	ruff check .

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Fault-matrix suite: the upload pipeline under scripted drops, outages,
# crashes, and skew (tests/faults), plus the containment lint rule.
chaos:
	$(PYTHON) -m repro.lint src/repro --select faults-only-in-harness
	$(PYTHON) -m pytest tests/faults -q

# Scale suite: differential + property tests proving the sharded server
# equivalent to the monolith, then the line-coverage floor on repro.scale.
scale:
	$(PYTHON) -m pytest tests/scale -q
	$(PYTHON) scripts/coverage_gate.py --fail-under 85

# Sharded maintenance benchmark; emits BENCH_3.json at the repo root.
bench-shards:
	$(PYTHON) -m pytest benchmarks/test_bench_shards.py --benchmark-only -q -s

# Telemetry suite: merge-algebra properties, golden export pins, counter
# consistency under chaos, the label-privacy lint rule, and the
# line-coverage floor on repro.telemetry.
telemetry:
	$(PYTHON) -m repro.lint src/repro --select priv-telemetry-label
	$(PYTHON) -m pytest tests/telemetry -q
	$(PYTHON) scripts/coverage_gate.py --target telemetry --fail-under 85

# Instrumentation overhead benchmark; emits BENCH_4.json at the repo root.
bench-telemetry:
	$(PYTHON) -m pytest benchmarks/test_bench_telemetry.py --benchmark-only -q -s

# Incremental-maintenance suite: incremental vs full-recompute byte
# identity across the deployment matrix, the dirty-iteration lint rule,
# and the line-coverage floor on repro.service (dirty-tracking code).
incremental:
	$(PYTHON) -m repro.lint src/repro --select det-dirty-iteration
	$(PYTHON) -m pytest tests/scale/test_incremental.py tests/service -q
	$(PYTHON) scripts/coverage_gate.py --target service --fail-under 85

# Dirty-delta maintenance benchmark; emits BENCH_5.json at the repo root.
bench-incremental:
	$(PYTHON) -m pytest benchmarks/test_bench_incremental.py --benchmark-only -q -s

# Whole-program analysis suite: the analyzer over src/repro against the
# committed findings baseline (stale or new findings fail), the
# fixture-driven checker/call-graph/dataflow tests, and the line-coverage
# floor on repro.analysis.
analyze:
	$(PYTHON) -m repro.analysis src/repro --baseline analysis_baseline.json
	$(PYTHON) -m pytest tests/analysis -q
	$(PYTHON) scripts/coverage_gate.py --target analysis --fail-under 85

# Cold vs warm analyzer benchmark; emits BENCH_6.json at the repo root.
bench-analyze:
	$(PYTHON) -m pytest benchmarks/test_bench_analysis.py --benchmark-only -q -s

# Durability suite (the CI crash-matrix job): WAL format + torn-write
# properties, the crash-at-every-frame-boundary differential, recovery
# idempotency, replication/failover, the replica-outage chaos plans, the
# fsync-before-ack lint rule, and the line-coverage floor on
# repro.durability.
durable:
	$(PYTHON) -m repro.lint src/repro --select durability-fsync-before-ack
	$(PYTHON) -m pytest tests/durability tests/faults/test_replica_outages.py -q
	$(PYTHON) scripts/coverage_gate.py --target durability --fail-under 85

# Durable intake overhead + cold-replay benchmark; emits BENCH_7.json at
# the repo root.
bench-durable:
	$(PYTHON) -m pytest benchmarks/test_bench_durability.py --benchmark-only -q -s

# Intake-path suite (the CI ingest job): batched-vs-per-record byte
# identity across the deployment matrix, backpressure/shed invariants,
# the load generator, the soak smoke (including an overload window), the
# batch-routing regression, and the line-coverage floor on repro.ingest.
ingest:
	$(PYTHON) -m pytest tests/ingest tests/scale/test_batch_routing.py -q
	$(PYTHON) scripts/coverage_gate.py --target ingest --fail-under 85

# Batched-vs-per-record intake throughput + soak benchmark; emits
# BENCH_8.json at the repo root.
bench-ingest:
	$(PYTHON) -m pytest benchmarks/test_bench_ingest.py --benchmark-only -q -s

# Read-path suite (the CI serve job): index coverage-exactness, ranking
# total-order/monotonicity pins, cache-coherence property schedules, the
# serving differential matrix, the deterministic-read-path lint rule, and
# the line-coverage floor on repro.serve.
serve:
	$(PYTHON) -m repro.lint src/repro --select det-read-path
	$(PYTHON) -m pytest tests/serve -q
	$(PYTHON) scripts/coverage_gate.py --target serve --fail-under 85

# Cached vs uncached read QPS benchmark; emits BENCH_9.json at the repo
# root (gates: hit rate >= 90%, cached >= 5x uncached at <= 10% dirty).
bench-serve:
	$(PYTHON) -m pytest benchmarks/test_bench_serve.py --benchmark-only -q -s

# Resharding suite (the CI reshard job): routing-table property tests,
# migration invariants, the any-schedule differential matrix, the
# crash-at-every-migration-step recovery matrix, the router regression
# pins, the dirty-iteration lint rule over repro.reshard, and the
# line-coverage floor on repro.reshard.
reshard:
	$(PYTHON) -m repro.lint src/repro --select det-dirty-iteration
	$(PYTHON) -m pytest tests/reshard tests/scale/test_router_properties.py -q
	$(PYTHON) scripts/coverage_gate.py --target reshard --fail-under 85

# Live-split locality + post-split throughput benchmark; emits
# BENCH_10.json at the repo root (gates: each split moves <= 1/n_shards
# of the catalog; grown deployment within 10% of native throughput).
bench-reshard:
	$(PYTHON) -m pytest benchmarks/test_bench_reshard.py --benchmark-only -q -s
