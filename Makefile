# Developer entry points.  `make check` is the full gate CI runs.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check lint ruff test bench

check:
	bash scripts/check.sh

lint:
	$(PYTHON) -m repro.lint src/repro

ruff:
	ruff check .

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
